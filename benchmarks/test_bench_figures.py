"""Benchmarks regenerating Figures 2–5 (§2, §3 and §5 of the paper)."""

from __future__ import annotations

from repro.experiments.figure2 import run_figure2
from repro.experiments.figure3 import run_figure3
from repro.experiments.figure4 import run_figure4
from repro.experiments.figure5 import run_figure5a, run_figure5b, run_figure5c

from .conftest import run_once


def test_bench_figure2(benchmark, bench_pipeline):
    """Fig. 2: sub-instance distributions of DPs vs. non-DPs."""
    result = run_once(benchmark, run_figure2, bench_pipeline, concept="animal")
    assert result.data["intentional_dps"]
    assert result.data["non_dps"]
    assert len(result.data["axis"]) >= 8


def test_bench_figure3(benchmark, bench_pipeline):
    """Fig. 3: feature distributions separate the three classes."""
    result = run_once(benchmark, run_figure3, bench_pipeline)
    data = result.data
    assert data["Non-DPs"]["f1"]["mean"] > data["Accidental DPs"]["f1"]["mean"]
    assert data["Non-DPs"]["f3"]["mean"] > data["Accidental DPs"]["f3"]["mean"]


def test_bench_figure4(benchmark, bench_pipeline):
    """Fig. 4: concept-pair similarity has the three paper bands."""
    result = run_once(benchmark, run_figure4, bench_pipeline)
    bands = result.data["bands"]
    assert bands["exclusive"] > bands["irrelevant"]
    assert bands["similar"] >= 4


def test_bench_figure5a(benchmark, bench_pipeline):
    """Fig. 5(a): pairs grow while precision collapses."""
    result = run_once(benchmark, run_figure5a, bench_pipeline)
    series = result.data["series"]
    assert series[0]["precision"] > 0.9
    assert series[-1]["precision"] < series[0]["precision"] - 0.2
    assert series[-1]["distinct_pairs"] > 1.5 * series[0]["distinct_pairs"]


def test_bench_figure5b(benchmark, bench_pipeline):
    """Fig. 5(b): seed precision rises with k while yield falls."""
    result = run_once(
        benchmark, run_figure5b, bench_pipeline, k_values=(0, 2, 4, 6, 8)
    )
    series = result.data["series"]
    assert series[0]["recall"] > series[-1]["recall"]
    assert series[-1]["precision"] > 0.9


def test_bench_figure5c(benchmark, bench_pipeline):
    """Fig. 5(c): detector accuracy stabilises over training iterations."""
    result = run_once(benchmark, run_figure5c, bench_pipeline, iterations=12)
    accuracy = result.data["accuracy"]
    assert accuracy
    assert accuracy[-1] >= accuracy[0] - 0.02
