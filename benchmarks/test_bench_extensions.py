"""Benchmarks for the extension experiments (ablations + threshold sweep)."""

from __future__ import annotations

from repro.experiments.ablations import (
    run_ablation_features,
    run_ablation_policy,
    run_ablation_rollback,
)
from repro.experiments.threshold_sweep import run_threshold_sweep

from .conftest import run_once


def test_bench_ablation_features(benchmark, bench_pipeline):
    """Feature ablation: some property must carry real signal."""
    result = run_once(benchmark, run_ablation_features, bench_pipeline)
    full = result.data["all features"]["f1"]
    drops = [
        full - row["f1"]
        for variant, row in result.data.items()
        if variant != "all features"
    ]
    assert max(drops) > 0.02


def test_bench_ablation_rollback(benchmark, bench_pipeline):
    """Rollback ablation: the cascade carries the recall."""
    result = run_once(benchmark, run_ablation_rollback, bench_pipeline)
    assert (
        result.data["full DP cleaning"]["r_error"]
        > result.data["drop-only (no rollback)"]["r_error"]
    )


def test_bench_ablation_policy(benchmark, bench_pipeline):
    """Policy ablation: nearest attachment is the drift engine."""
    result = run_once(benchmark, run_ablation_policy, bench_pipeline)
    assert (
        result.data["nearest"]["target_precision"]
        < result.data["max_evidence"]["target_precision"]
    )


def test_bench_threshold_sweep(benchmark, bench_pipeline):
    """Threshold sweep: no cut-off dominates the DP operating point."""
    result = run_once(benchmark, run_threshold_sweep, bench_pipeline)
    dp = result.data["dp_cleaning"]
    for row in result.data["curve"]:
        dominates = (
            row["r_error"] >= dp["r_error"]
            and row["p_error"] >= dp["p_error"]
            and row["r_corr"] >= dp["r_corr"]
        )
        assert not dominates
