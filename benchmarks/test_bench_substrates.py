"""Micro-benchmarks for the heavy substrates (not tied to one table).

These track the cost of the stages the tables are built from, so
regressions in the expensive kernels (corpus generation, extraction,
random walks, rollback) are visible independently of experiment wiring.
"""

from __future__ import annotations

import pytest

from repro.cleaning import DPCleaner
from repro.concepts import MutualExclusionIndex
from repro.config import CleaningConfig
from repro.corpus import CorpusGenerator
from repro.extraction import SemanticIterativeExtractor
from repro.kb import IsAPair, RollbackEngine
from repro.labeling import DPLabel
from repro.ranking import RandomWalkRanker

from .conftest import make_pipeline, run_once


@pytest.fixture(scope="module")
def extraction(bench_pipeline):
    return bench_pipeline.extract()


def test_bench_corpus_generation(benchmark, bench_pipeline):
    """Sentence generation throughput."""
    generator = CorpusGenerator(
        bench_pipeline.preset.world, bench_pipeline.config.corpus, seed=5
    )
    corpus = run_once(benchmark, generator.generate)
    assert len(corpus) >= bench_pipeline.config.corpus.num_sentences * 0.9


def test_bench_extraction(benchmark, bench_pipeline):
    """Full iterative extraction over the bench corpus."""
    corpus = bench_pipeline.corpus()
    extractor = SemanticIterativeExtractor(bench_pipeline.config.extraction)
    result = run_once(benchmark, extractor.run, corpus)
    assert result.total_pairs > 1000
    assert result.iterations >= 5


def test_bench_random_walk(benchmark, bench_pipeline, extraction):
    """Random-walk scoring across all analysed concepts."""
    concepts = bench_pipeline.analysis_concepts(extraction.kb)
    scores = run_once(
        benchmark, RandomWalkRanker().score_all, extraction.kb, concepts
    )
    assert len(scores) == len(concepts)


def test_bench_exclusion_index(benchmark, extraction):
    """Mutual-exclusion index construction."""
    index = run_once(benchmark, MutualExclusionIndex, extraction.kb)
    assert index.exclusive("animal", "food")


def test_bench_rollback_cascade(benchmark):
    """Cascading rollback of every accidental-looking DP in one sweep."""
    pipeline = make_pipeline()
    extraction = pipeline.extract()
    kb = extraction.kb
    detect = pipeline.detect_fn()
    labels = detect(kb)
    accidental = [
        (concept, instance)
        for concept, by_instance in labels.items()
        for instance, label in by_instance.items()
        if label is DPLabel.ACCIDENTAL
    ][:300]

    def rollback_all():
        engine = RollbackEngine(kb)
        from repro.kb import IsAPair

        total = 0
        for concept, instance in accidental:
            pair = IsAPair(concept, instance)
            if pair in kb:
                total += engine.rollback_pair(pair).num_pairs
        return total

    removed = run_once(benchmark, rollback_all)
    assert removed > 0


def test_bench_detect_refit(benchmark):
    """One warm detection refit after a rollback wave.

    This is the cleaning loop's per-round step: the cold fit primes the
    analysis cache (exclusion index, matrices, seeds, KPCA embedding),
    a rollback wave dirties a slice of the KB, and the timed call refits
    the detector incrementally on the mutated KB.
    """
    pipeline = make_pipeline()
    extraction = pipeline.extract()
    kb = extraction.kb
    detect = pipeline.detect_fn()
    labels = detect(kb)  # cold fit outside the timer
    accidental = [
        IsAPair(concept, instance)
        for concept, by_instance in labels.items()
        for instance, label in by_instance.items()
        if label is DPLabel.ACCIDENTAL
    ][:120]
    engine = RollbackEngine(kb)
    for pair in accidental:
        if pair in kb:
            engine.rollback_pair(pair)
    labels = run_once(benchmark, detect, kb)
    assert labels


def test_bench_dp_cleaning_round(benchmark):
    """One full DP cleaning run (fresh pipeline per measurement)."""
    pipeline = make_pipeline()
    extraction = pipeline.extract()
    cleaner = DPCleaner(
        pipeline.detect_fn(), CleaningConfig(max_cleaning_rounds=2)
    )
    result = run_once(
        benchmark, cleaner.clean, extraction.kb, extraction.corpus
    )
    assert result.num_removed > 100
