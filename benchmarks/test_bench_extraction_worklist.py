"""Deep-pool extraction benchmarks: worklist vs. naive full scan.

The scenario semi-naive resolution exists for: a long dependency chain
stretches the run over many iterations while a large pool of
never-resolving ambiguous sentences sits unresolved the whole time.  The
naive scan re-attempts the entire pool every iteration —
O(iterations × pool) ``resolve()`` calls — where the worklist attempts
each pool sentence once, then only on evidence-index wakes.

``test_bench_extraction_worklist_speedup`` pins the acceptance criterion:
the worklist path must beat the naive path by >= 1.5x in CPU time on this
corpus (it is typically far beyond that), with byte-identical results.
"""

from __future__ import annotations

import time

import pytest

from repro.config import ExtractionConfig
from repro.corpus.corpus import Corpus
from repro.corpus.sentence import Sentence
from repro.extraction import SemanticIterativeExtractor
from repro.kb.serialize import save_kb

from .conftest import run_once

CHAIN_LENGTH = 90
POOL_DISTRACTORS = 1500
MAX_ITERATIONS = 120


def _deep_pool_corpus() -> Corpus:
    """A chain that resolves one sentence per iteration over a deep pool.

    * one unambiguous seed puts ``x0`` under ``chain``;
    * chain sentence ``i`` carries ``(x_i, x_{i+1})`` and can only resolve
      once ``x_i`` became visible — i.e. in iteration ``i + 2``;
    * the distractors are ambiguous sentences over instances that never
      become visible anywhere, so they stay pending for the whole run.
    """
    sentences = [
        Sentence(sid=0, surface="seed", concepts=("chain",),
                 instances=("x0",))
    ]
    sid = 1
    for i in range(CHAIN_LENGTH):
        sentences.append(
            Sentence(
                sid=sid,
                surface=f"chain{i}",
                concepts=("chain", "decoy"),
                instances=(f"x{i}", f"x{i + 1}"),
            )
        )
        sid += 1
    for i in range(POOL_DISTRACTORS):
        sentences.append(
            Sentence(
                sid=sid,
                surface=f"noise{i}",
                concepts=(f"p{i % 7}", f"q{i % 5}"),
                instances=(f"n{i}", f"n{i + POOL_DISTRACTORS}"),
            )
        )
        sid += 1
    return Corpus(tuple(sentences))


def _config(delta_index: bool) -> ExtractionConfig:
    return ExtractionConfig(
        max_iterations=MAX_ITERATIONS, delta_index=delta_index
    )


@pytest.fixture(scope="module")
def deep_pool_corpus():
    return _deep_pool_corpus()


def _check(result) -> None:
    assert result.iterations >= CHAIN_LENGTH
    assert result.kb.has_instance("chain", f"x{CHAIN_LENGTH}")
    assert len(result.unresolved_sids) == POOL_DISTRACTORS


def test_bench_extraction_worklist_deep_pool(benchmark, deep_pool_corpus):
    """Delta-driven resolution over the deep-pool chain corpus."""
    def run():
        return SemanticIterativeExtractor(_config(True)).run(
            deep_pool_corpus
        )

    _check(run_once(benchmark, run))


def test_bench_extraction_naive_deep_pool(benchmark, deep_pool_corpus):
    """The naive full scan over the same corpus (the reference cost)."""
    def run():
        return SemanticIterativeExtractor(_config(False)).run(
            deep_pool_corpus
        )

    _check(run_once(benchmark, run))


def test_bench_extraction_worklist_speedup(
    benchmark, deep_pool_corpus, tmp_path
):
    """Acceptance pin: >= 1.5x CPU-time win, byte-identical results."""
    def run():
        start = time.process_time()
        delta = SemanticIterativeExtractor(_config(True)).run(
            deep_pool_corpus
        )
        delta_cpu = time.process_time() - start
        start = time.process_time()
        naive = SemanticIterativeExtractor(_config(False)).run(
            deep_pool_corpus
        )
        naive_cpu = time.process_time() - start
        return delta, naive, delta_cpu, naive_cpu

    delta, naive, delta_cpu, naive_cpu = run_once(benchmark, run)
    _check(delta)
    a, b = tmp_path / "delta.jsonl", tmp_path / "naive.jsonl"
    save_kb(delta.kb, a)
    save_kb(naive.kb, b)
    assert a.read_bytes() == b.read_bytes()
    assert list(delta.log) == list(naive.log)
    assert naive_cpu >= 1.5 * delta_cpu, (
        f"worklist {delta_cpu:.3f}s vs naive {naive_cpu:.3f}s CPU — "
        "expected >= 1.5x improvement"
    )
