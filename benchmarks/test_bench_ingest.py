"""Benchmarks for the streaming ingestion service.

Tracks the per-batch cost of the streaming path (incremental extraction +
drift telemetry), the overhead durability adds (journal fsyncs +
snapshots), and how fast a killed session comes back — cold resume from
checkpoint + journal replay versus re-ingesting from scratch.
"""

from __future__ import annotations

import pytest

from repro.service import IngestPolicy

from .conftest import make_pipeline, run_once

BATCH_SIZE = 500


@pytest.fixture(scope="module")
def bench_batches(bench_pipeline):
    return list(bench_pipeline.corpus().batches(BATCH_SIZE))


def _drain(session, batches):
    for batch in batches:
        session.ingest(batch)
    return session


def test_bench_ingest_session(benchmark, bench_batches):
    """Whole-corpus streaming ingest, cleaning disabled (pure extract)."""
    def run():
        session = make_pipeline().session(policy=IngestPolicy.never())
        return _drain(session, bench_batches)

    session = run_once(benchmark, run)
    assert session.batches_ingested == len(bench_batches)
    assert len(session.kb) > 1000


def test_bench_ingest_with_drift_cleaning(benchmark, bench_batches):
    """Streaming ingest with the drift trigger armed."""
    policy = IngestPolicy(
        staleness_threshold=None, drift_threshold=0.05, min_new_pairs=10
    )

    def run():
        session = make_pipeline().session(policy=policy)
        return _drain(session, bench_batches)

    session = run_once(benchmark, run)
    assert session.cleanings > 0
    assert len(session.kb.removed_pairs()) > 0


def test_bench_ingest_durable(benchmark, bench_batches, tmp_path):
    """Streaming ingest paying for journal fsyncs + per-batch snapshots."""
    def run():
        session = make_pipeline().session(
            policy=IngestPolicy.never(),
            checkpoint_dir=tmp_path / "ckpt",
            checkpoint_every=1,
        )
        return _drain(session, bench_batches)

    session = run_once(benchmark, run)
    assert session.batches_ingested == len(bench_batches)


def test_bench_session_resume(benchmark, bench_batches, tmp_path):
    """Cold resume from a snapshot + journal tail (no re-extraction cost
    for snapshotted batches; the journal tail replays the cheap path)."""
    ckpt = tmp_path / "resume-ckpt"
    cold = make_pipeline().session(
        policy=IngestPolicy.never(), checkpoint_dir=ckpt, checkpoint_every=2
    )
    _drain(cold, bench_batches)

    def run():
        return make_pipeline().session(
            policy=IngestPolicy.never(), checkpoint_dir=ckpt, resume=True
        )

    resumed = run_once(benchmark, run)
    assert resumed.batches_ingested == cold.batches_ingested
    assert len(resumed.kb) == len(cold.kb)
