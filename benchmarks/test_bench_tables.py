"""Benchmarks regenerating Tables 1–5 (§5 of the paper)."""

from __future__ import annotations

from repro.experiments.table1 import run_table1
from repro.experiments.table2 import run_table2
from repro.experiments.table3 import run_table3
from repro.experiments.table4 import run_table4
from repro.experiments.table5 import run_table5

from .conftest import run_once


def test_bench_table1(benchmark, bench_pipeline):
    """Table 1: ground-truth statistics of the 20 target concepts."""
    result = run_once(benchmark, run_table1, bench_pipeline)
    overall = result.data["concepts"]["Overall"]
    assert overall["instances"] > 2000
    assert 0.2 < overall["error_rate"] < 0.7
    assert overall["accidental_dps"] > overall["intentional_dps"]


def test_bench_table2(benchmark, bench_pipeline):
    """Table 2: ranking precision — Random Walk must lead at the top."""
    result = run_once(benchmark, run_table2, bench_pipeline, ks=(25, 100, 400))
    data = result.data
    assert data["Random Walk"]["p@25"] >= data["Frequency"]["p@25"]
    assert data["Random Walk"]["p@25"] >= data["PageRank"]["p@25"]


def test_bench_table3(benchmark, bench_pipeline):
    """Table 3: DP cleaning beats every baseline on error F1."""
    result = run_once(benchmark, run_table3, bench_pipeline)

    def error_f1(row):
        p, r = row["p_error"], row["r_error"]
        return 0.0 if p + r == 0 else 2 * p * r / (p + r)

    dp = error_f1(result.data["DP Cleaning"])
    for method in ("MEx", "TCh", "PRDual-Rank", "RW-Rank"):
        assert dp > error_f1(result.data[method]), method
    assert result.data["DP Cleaning"]["p_corr"] > 0.85
    assert result.data["DP Cleaning"]["r_corr"] > 0.9


def test_bench_table4(benchmark, bench_pipeline):
    """Table 4: multi-task detection tops the learned methods."""
    result = run_once(benchmark, run_table4, bench_pipeline)
    data = result.data
    assert (
        data["Semi-Supervised Multi-Task"]["f1"]
        >= data["Semi-Supervised"]["f1"]
    )
    assert (
        data["Semi-Supervised Multi-Task"]["f1"] > data["Supervised"]["f1"]
    )


def test_bench_table5(benchmark, bench_pipeline):
    """Table 5: per-concept cleaning with Eq. 21 sentence checks."""
    result = run_once(benchmark, run_table5, bench_pipeline)
    overall = result.data["Overall"]
    assert overall["p_error"] > 0.8
    assert overall["p_stc"] > 0.85
    assert len(result.data) == 21
