"""Shared fixtures for the benchmark harness.

Each benchmark regenerates one of the paper's tables or figures against a
bench-scale pipeline (world scale 1.0, 6 k sentences) and asserts the
paper's qualitative shape, so the suite doubles as a reproduction check.

Run with::

    pytest benchmarks/ --benchmark-only
"""

from __future__ import annotations

import pytest

from repro.experiments.pipeline import Pipeline, experiment_config
from repro.world import paper_world

BENCH_SEED = 11
BENCH_SCALE = 1.0
BENCH_SENTENCES = 6000


def make_pipeline() -> Pipeline:
    """A fresh bench-scale pipeline."""
    preset = paper_world(seed=BENCH_SEED, scale=BENCH_SCALE)
    config = experiment_config(
        num_sentences=BENCH_SENTENCES, seed=BENCH_SEED,
        profiles=preset.profiles,
    )
    return Pipeline(preset=preset, config=config)


@pytest.fixture(scope="session")
def bench_pipeline() -> Pipeline:
    """Session-shared pipeline (read-only users)."""
    return make_pipeline()


def run_once(benchmark, fn, *args, **kwargs):
    """Run an experiment exactly once under the benchmark timer."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1,
                              iterations=1)
