"""Instrumentation overhead: disabled tracing must cost <2% of any stage.

The disabled-path bound is computed analytically rather than by
subtracting two noisy end-to-end timings: we measure the per-call cost of
the no-op instrumentation primitives (``span``/``count``/``emit`` on an
untraced context), count how many instrumentation operations one
extraction actually performs (from a traced run of the same stage), and
assert ``n_ops × t_op < 2% × t_stage``.  That holds under machine noise
because ``t_op`` is nanoseconds while ``t_stage`` is seconds.

The enabled-tracing overhead is *recorded* (benchmark ``extra_info``) but
not asserted — it is expected to be small, not bounded.
"""

from __future__ import annotations

import time
import timeit

from repro.extraction import SemanticIterativeExtractor
from repro.runtime.context import RunContext
from repro.runtime.events import LogEvent

from .conftest import make_pipeline, run_once

#: an "op" below bundles one span open/close, two counter adds, one
#: attribute set and one event emit — strictly more work than any real
#: instrumentation point performs per call.
OPS_BUNDLE = 5


def _null_op_seconds() -> float:
    """Per-bundle cost of the disabled instrumentation primitives."""
    ctx = RunContext()  # no tracer, no subscribers
    event = LogEvent("bench")

    def bundle() -> None:
        with ctx.span("bench", stage="x") as span:
            span.set(n=1)
            span.add("counter", 2)
            span.add("counter")
            ctx.emit(event)

    iterations = 20_000
    return timeit.timeit(bundle, number=iterations) / iterations


def _traced_op_count(corpus, config) -> int:
    """Instrumentation ops one traced extraction performs (upper bound)."""
    ctx = RunContext()
    tracer = ctx.ensure_tracer()
    SemanticIterativeExtractor(config, context=ctx).run(corpus)
    spans = sum(1 for _ in tracer.spans())
    events = sum(len(span.events) for span in tracer.spans())
    counters = sum(len(span.counters) for span in tracer.spans())
    # Each span is one bundle; events/counters beyond the bundle's
    # allowance are counted again so the estimate stays conservative.
    return spans + events + counters


def test_bench_trace_overhead_disabled(benchmark):
    """Untraced instrumentation costs <2% of the extraction stage."""
    pipeline = make_pipeline()
    corpus = pipeline.corpus()
    config = pipeline.config.extraction

    def stage() -> float:
        extractor = SemanticIterativeExtractor(config)  # NULL_CONTEXT
        started = time.perf_counter()
        extractor.run(corpus)
        return time.perf_counter() - started

    stage_seconds = run_once(benchmark, stage)
    op_seconds = _null_op_seconds()
    op_count = _traced_op_count(corpus, config)
    overhead = op_count * op_seconds
    benchmark.extra_info["instrumentation_ops"] = op_count
    benchmark.extra_info["op_ns"] = round(op_seconds * 1e9, 1)
    benchmark.extra_info["overhead_fraction"] = overhead / stage_seconds
    assert overhead < 0.02 * stage_seconds, (
        f"{op_count} disabled instrumentation ops at "
        f"{op_seconds * 1e9:.0f}ns each = {overhead * 1e3:.1f}ms, over 2% "
        f"of the {stage_seconds * 1e3:.0f}ms extraction stage"
    )


def test_bench_trace_overhead_enabled(benchmark):
    """Record (not bound) the cost of running with a tracer attached."""
    pipeline = make_pipeline()
    corpus = pipeline.corpus()
    config = pipeline.config.extraction

    baseline_started = time.perf_counter()
    SemanticIterativeExtractor(config).run(corpus)
    baseline = time.perf_counter() - baseline_started

    def traced() -> None:
        ctx = RunContext()
        ctx.ensure_tracer()
        SemanticIterativeExtractor(config, context=ctx).run(corpus)

    run_once(benchmark, traced)
    traced_seconds = benchmark.stats["mean"]
    benchmark.extra_info["untraced_seconds"] = round(baseline, 4)
    benchmark.extra_info["enabled_overhead_ratio"] = round(
        traced_seconds / baseline, 4
    )
