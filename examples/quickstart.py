#!/usr/bin/env python
"""Quickstart: watch semantic drift happen, then clean it away.

Builds a small ground-truth world, generates a Hearst corpus, runs the
semantic iterative extractor (drift emerges), and then runs the paper's
DP-based cleaning.  Prints precision before and after.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import (
    CleaningConfig,
    ConceptProfile,
    CorpusConfig,
    DPCleaner,
    ExtractionConfig,
    GroundTruth,
    SemanticIterativeExtractor,
    cleaning_metrics,
    generate_corpus,
    toy_world,
)
from repro.experiments.pipeline import Pipeline, experiment_config
from repro.world import paper_world


def main() -> None:
    # ------------------------------------------------------------------
    # 1. A world and a corpus.
    # ------------------------------------------------------------------
    preset = toy_world(seed=7)
    world = preset.world
    print(f"world: {world}")
    print(f"polysemous bridges: {sorted(world.polysemous_instances())[:5]}")

    corpus = generate_corpus(
        world,
        CorpusConfig(
            num_sentences=1500,
            profiles=preset.profiles,
            default_profile=ConceptProfile(ambiguous_rate=0.5),
        ),
        seed=11,
    )
    print(f"corpus: {len(corpus)} sentences "
          f"({len(corpus.ambiguous())} ambiguous)")
    sample = corpus.ambiguous()[0]
    print(f"sample ambiguous sentence: {sample.surface!r}")

    # ------------------------------------------------------------------
    # 2. Iterative extraction — drift emerges.
    # ------------------------------------------------------------------
    result = SemanticIterativeExtractor(
        ExtractionConfig(stream_chunks=4)
    ).run(corpus)
    kb = result.kb
    truth = GroundTruth(world, kb)
    print(f"\nextraction: {len(kb)} pairs over {result.iterations} iterations")
    for concept in preset.target_concepts:
        summary = truth.concept_truth(concept)
        print(f"  {concept:<8} {summary.instances:>4} instances, "
              f"{summary.error_rate:.0%} errors, "
              f"{summary.intentional_dps} intentional / "
              f"{summary.accidental_dps} accidental DPs")

    # ------------------------------------------------------------------
    # 3. DP-based cleaning at paper scale needs the full pipeline (the
    #    detector wants many concepts to share knowledge across); for the
    #    quickstart we use a small paper world.
    # ------------------------------------------------------------------
    print("\nrunning the full pipeline on a small paper-like world ...")
    paper_preset = paper_world(seed=7, scale=0.8)
    pipeline = Pipeline(
        preset=paper_preset,
        config=experiment_config(
            num_sentences=5000, seed=7, profiles=paper_preset.profiles
        ),
    )
    extraction = pipeline.extract()
    paper_truth = GroundTruth(paper_preset.world, extraction.kb)
    before = {
        concept: extraction.kb.instances_of(concept)
        for concept in extraction.kb.concepts()
    }
    cleaner = DPCleaner(pipeline.detect_fn(), CleaningConfig())
    cleaner.clean(extraction.kb, extraction.corpus)
    after = {c: extraction.kb.instances_of(c) for c in before}
    metrics = cleaning_metrics(
        paper_truth, before, after, paper_preset.target_concepts
    )
    print(f"  errors removed with precision   p_error = {metrics.p_error:.3f}")
    print(f"  errors removed with recall      r_error = {metrics.r_error:.3f}")
    print(f"  remaining knowledge precision   p_corr  = {metrics.p_corr:.3f}")
    print(f"  correct knowledge preserved     r_corr  = {metrics.r_corr:.3f}")


if __name__ == "__main__":
    main()
