#!/usr/bin/env python
"""Stream a sharded corpus through a durable ingestion session.

The batch pipeline assumes the whole corpus exists up front.  This
example models the production situation the streaming service exists for:
documents arrive shard by shard over the life of a session, drift builds
up between cleaning passes, and the process can die at any moment.

It demonstrates, in order:

1. sharding a synthetic corpus (``Corpus.shards``) and feeding the shards
   to an :class:`~repro.service.IngestSession` in batches;
2. the two cleaning triggers — staleness and measured drift — firing as
   the KB accumulates semantic drift;
3. a simulated crash (the session object is dropped mid-stream, with the
   last journal record torn) and a resume that converges on the exact KB
   an uninterrupted session reaches.

Run:  python examples/streaming_ingest.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro.experiments.pipeline import Pipeline, experiment_config
from repro.kb import save_kb
from repro.service import CheckpointStore, IngestPolicy
from repro.world import paper_world

SEED = 7
SCALE = 0.8
SENTENCES = 4000
BATCH_SIZE = 400
POLICY = IngestPolicy(
    staleness_threshold=1200, drift_threshold=0.1, min_new_pairs=15
)


def make_pipeline() -> Pipeline:
    preset = paper_world(seed=SEED, scale=SCALE)
    return Pipeline(
        preset=preset,
        config=experiment_config(
            num_sentences=SENTENCES, seed=SEED, profiles=preset.profiles
        ),
    )


def kb_bytes(kb, directory: Path, name: str) -> bytes:
    path = directory / f"{name}.jsonl"
    save_kb(kb, path)
    return path.read_bytes()


def describe(report) -> str:
    line = (f"  batch {report.index}: +{report.sentences_new} sentences, "
            f"+{report.new_pairs} pairs, drift {report.drift.fraction:.3f}")
    if report.cleaning is not None:
        line += (f"  -> cleaned ({report.cleaning.reason}): "
                 f"-{report.cleaning.removed_pairs} pairs in "
                 f"{report.cleaning.rounds} round(s)")
    return line


def main() -> None:
    # Shard the corpus as a crawler would deliver it: a few shards, each
    # ingested in batches.
    corpus = make_pipeline().corpus()
    shards = list(corpus.shards(3))
    print(f"corpus: {len(corpus)} sentences in {len(shards)} shards")
    batches = [
        batch for shard in shards for batch in shard.batches(BATCH_SIZE)
    ]

    with tempfile.TemporaryDirectory() as tmp:
        tmp = Path(tmp)

        # The reference: one session, never interrupted.
        reference = make_pipeline().session(policy=POLICY)
        print("\nuninterrupted session:")
        for batch in batches:
            print(describe(reference.ingest(batch)))
        reference_bytes = kb_bytes(reference.kb, tmp, "reference")
        stats = reference.stats()
        print(f"  => {stats['pairs']} pairs, {stats['cleanings']} cleaning "
              f"passes, {stats['removed_pairs']} pairs removed")

        # The same stream, but the process dies after three batches —
        # mid-append, leaving a torn journal record behind.
        ckpt = tmp / "checkpoint"
        doomed = make_pipeline().session(
            policy=POLICY, checkpoint_dir=ckpt, checkpoint_every=2
        )
        print("\ndurable session (killed after batch 2):")
        for batch in batches[:3]:
            print(describe(doomed.ingest(batch)))
        del doomed  # the process is gone; only the directory survives
        with open(CheckpointStore(ckpt).journal.path, "a") as handle:
            handle.write('{"seq": 4, "type": "batch", "sent')  # torn write

        # Resume: snapshot + journal replay (the torn record is dropped),
        # then ingest the rest of the stream.
        resumed = make_pipeline().session(
            policy=POLICY, checkpoint_dir=ckpt, resume=True
        )
        print(f"\nresumed at batch {resumed.batches_ingested}:")
        for batch in batches[resumed.batches_ingested:]:
            print(describe(resumed.ingest(batch)))

        identical = kb_bytes(resumed.kb, tmp, "resumed") == reference_bytes
        print(f"\nresumed KB bit-identical to uninterrupted run: "
              f"{identical}")
        assert identical


if __name__ == "__main__":
    main()
