#!/usr/bin/env python
"""The paper's Fig. 1(b) walkthrough, with real words.

Reconstructs the introduction's *animal / food / chicken* scenario:

1. iteration 1 learns (chicken isA animal) from an unambiguous sentence;
2. that knowledge mis-resolves ``common food from animals such as pork,
   beef and chicken`` — pork and beef drift into *animal*;
3. Eq. 21 re-scores the sentence exactly as the paper's Example 1 and
   rolls the drift back, keeping chicken (an Intentional DP) in place.

Run:  python examples/motivating_example.py
"""

from __future__ import annotations

from repro import SemanticIterativeExtractor
from repro.cleaning import check_extraction
from repro.corpus import Corpus, Sentence
from repro.kb import IsAPair, RollbackEngine
from repro.ranking import RandomWalkRanker


def build_corpus() -> Corpus:
    """Hand-written sentences mirroring Fig. 1(b)."""
    rows = [
        # S1: "Animals such as dog, cat, pig and chicken ..."
        (("animal",), ("dog", "cat", "pig", "chicken")),
        (("animal",), ("dog", "cat", "horse", "rabbit")),
        (("animal",), ("elephant", "dolphin", "lion", "chicken")),
        # food knowledge — chicken is a food too (it is polysemous)
        (("food",), ("bread", "cheese", "rice", "chicken")),
        (("food",), ("pork", "beef", "rice", "noodle")),
        (("food",), ("pork", "beef", "milk", "meat")),
        (("food",), ("pork", "beef", "chicken", "meat")),
        # S4: "Animals from African countries, such as giraffe and lion"
        (("country", "animal"), ("giraffe", "lion")),
        # S3: "Common food from animals such as pork, beef, and chicken"
        (("animal", "food"), ("pork", "beef", "chicken")),
    ]
    sentences = [
        Sentence(sid=i, surface=" / ".join(c) + ": " + ", ".join(e),
                 concepts=c, instances=e)
        for i, (c, e) in enumerate(rows)
    ]
    return Corpus(tuple(sentences))


def main() -> None:
    corpus = build_corpus()
    result = SemanticIterativeExtractor().run(corpus)
    kb = result.kb

    print("after extraction:")
    print(f"  animal instances: {sorted(kb.instances_of('animal'))}")
    print(f"  food instances:   {sorted(kb.instances_of('food'))}")
    print("  -> pork and beef DRIFTED into animal via (chicken isA animal)")
    print(f"  giraffe resolved correctly: "
          f"{kb.has_instance('animal', 'giraffe')} (S4, knowledge fixed it)")

    subs = kb.sub_instance_counts("animal", "chicken")
    print(f"\nsub-instances of the DP chicken under animal: {sorted(subs)}")

    # Eq. 21 over the drifted sentence, with random-walk scores.
    scores = RandomWalkRanker().score_all(kb, ["animal", "food"])
    drifted = corpus[8]
    check = check_extraction(drifted, "animal", "chicken", scores)
    print("\nEq. 21 scores for S3:")
    for concept, value in check.scores:
        print(f"  Score(s, {concept!r}) = {value:.3f}")
    print(f"  extraction flagged as drifting: {check.is_drifting}")

    # Roll it back, paper-style.
    record = next(
        r for r in kb.records_triggered_by(IsAPair("animal", "chicken"))
        if r.sid == 8
    )
    rolled = RollbackEngine(kb).rollback_records([record.rid])
    print(f"\nrolled back {rolled.num_records} extraction, "
          f"removed pairs: {sorted(str(p) for p in rolled.pairs_removed)}")
    print(f"animal instances now: {sorted(kb.instances_of('animal'))}")
    print("chicken (the Intentional DP) is kept: "
          f"{kb.has_instance('animal', 'chicken')}")


if __name__ == "__main__":
    main()
