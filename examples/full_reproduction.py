#!/usr/bin/env python
"""Regenerate every table and figure of the paper in one run.

Equivalent to ``repro run all`` but demonstrates the library API.  At the
default scale this takes a few minutes; pass ``--fast`` for a small run.

Run:  python examples/full_reproduction.py [--fast]
"""

from __future__ import annotations

import sys
import time

from repro import experiment_config, experiment_names, paper_world, run_experiment
from repro.experiments import Pipeline


def main() -> int:
    fast = "--fast" in sys.argv[1:]
    scale = 1.0 if fast else 4.0
    sentences = 6000 if fast else 24_000
    print(f"scale={scale} sentences={sentences} "
          f"({'fast' if fast else 'paper-scale'} mode)\n")
    for name in experiment_names():
        preset = paper_world(scale=scale)
        pipeline = Pipeline(
            preset=preset,
            config=experiment_config(
                num_sentences=sentences, profiles=preset.profiles
            ),
        )
        started = time.time()
        result = run_experiment(name, pipeline=pipeline)
        print(f"== {result.title} ==")
        print(result.text)
        print(f"[{name}: {time.time() - started:.1f}s]\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())
