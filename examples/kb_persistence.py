#!/usr/bin/env python
"""Persist a knowledge base, reload it, checkpoint it, and audit one
instance.

Demonstrates the persistence layer (worlds and knowledge bases round-trip
through JSON with full provenance, schema-version stamped), the
service-grade :class:`~repro.service.CheckpointStore` (atomic snapshots +
redo journal — what ``repro ingest --checkpoint-dir`` builds on), and the
``diagnose`` API that explains everything the pipeline knows about one
(concept, instance).

Run:  python examples/kb_persistence.py
"""

from __future__ import annotations

import json
import tempfile
from pathlib import Path

from repro import CheckpointStore, DPLabel
from repro.experiments.pipeline import Pipeline, experiment_config
from repro.kb import load_kb, save_kb
from repro.world import load_world, paper_world, save_world


def main() -> None:
    preset = paper_world(seed=7, scale=0.8)
    pipeline = Pipeline(
        preset=preset,
        config=experiment_config(
            num_sentences=5000, seed=7, profiles=preset.profiles
        ),
    )
    artifacts = pipeline.run()
    kb = artifacts.kb

    with tempfile.TemporaryDirectory() as tmp:
        world_path = Path(tmp) / "world.json"
        kb_path = Path(tmp) / "kb.jsonl"

        save_world(artifacts.world, world_path)
        save_kb(kb, kb_path)
        print(f"saved world ({world_path.stat().st_size // 1024} KiB) and "
              f"KB ({kb_path.stat().st_size // 1024} KiB)")

        reloaded_world = load_world(world_path)
        reloaded_kb = load_kb(kb_path)
        assert set(reloaded_kb.pairs()) == set(kb.pairs())
        print(f"reloaded: {reloaded_world} / {reloaded_kb}")

        # The service-grade path: a checkpoint bundles the KB with the
        # corpus and arbitrary session metadata, publishes atomically
        # (crash-safe), and owns a redo journal for the batches since.
        store = CheckpointStore(Path(tmp) / "checkpoint")
        store.save_snapshot(
            seq=1,
            kb=kb,
            sentences=artifacts.corpus.sentences,
            meta={"note": "post-extraction snapshot"},
        )
        snapshot_kb, sentences, meta = store.load_snapshot()
        assert set(snapshot_kb.pairs()) == set(kb.pairs())
        print(f"checkpoint round-trip: {len(snapshot_kb)} pairs, "
              f"{len(sentences)} sentences, meta={meta['note']!r}")

    # Audit one detected Intentional DP end to end.
    detected = artifacts.detector.predict_all()
    candidate = next(
        (
            (concept, instance)
            for concept, labels in detected.items()
            for instance, label in labels.items()
            if label is DPLabel.INTENTIONAL
            and artifacts.truth.dp_label(concept, instance)
            is DPLabel.INTENTIONAL
        ),
        None,
    )
    if candidate is None:
        print("no confirmed Intentional DP detected in this small run")
        return
    concept, instance = candidate
    report = artifacts.diagnose(concept, instance)
    print(f"\ndiagnosis of the detected Intentional DP "
          f"({instance!r} isA {concept!r}):")
    print(json.dumps(report, indent=2, default=str))


if __name__ == "__main__":
    main()
