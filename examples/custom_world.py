#!/usr/bin/env python
"""Build a custom ground-truth world and study its drift channels.

Shows the :class:`~repro.world.WorldBuilder` API: domains, concepts,
polysemy bridges, alias concepts, and drift partnerships — then measures
how much drift each channel produces and how well the mutual-exclusion
index recovers the domain structure.

Run:  python examples/custom_world.py
"""

from __future__ import annotations

from repro import (
    ConceptProfile,
    CorpusConfig,
    ExtractionConfig,
    GroundTruth,
    SemanticIterativeExtractor,
    WorldBuilder,
    generate_corpus,
)
from repro.concepts import MutualExclusionIndex
from repro.nlp import EntityType


def build_world():
    builder = WorldBuilder(seed=42)
    builder.add_domain("languages", EntityType.MISC)
    builder.add_domain("countries", EntityType.LOCATION)
    builder.add_domain("frameworks", EntityType.MISC)
    # 'python'-style ambiguity: languages that are also framework names
    builder.add_concept("programming language", "languages", size=60,
                        popularity=3.0)
    builder.add_concept("country", "countries", size=50, popularity=2.0)
    builder.add_concept("web framework", "frameworks", size=45,
                        popularity=2.0)
    builder.add_alias("country", "nation", overlap=0.85)
    builder.add_subset("programming language", "scripting language",
                       fraction=0.4)
    # bridges: some framework names are also language names
    builder.add_bridges("web framework", "programming language", count=4)
    # drift channel: frameworks leak into 'programming language'
    builder.set_partners("programming language", ["web framework"])
    return builder.build()


def main() -> None:
    world = build_world()
    print(f"world: {world}")
    bridges = world.members("programming language") & world.members(
        "web framework"
    )
    print(f"polysemy bridges: {sorted(bridges)}")

    profiles = {
        "programming language": ConceptProfile(
            ambiguous_rate=0.6, drift_rate=0.7, bridge_rate=0.5
        ),
    }
    corpus = generate_corpus(
        world,
        CorpusConfig(num_sentences=2500, profiles=profiles),
        seed=1,
    )
    result = SemanticIterativeExtractor(
        ExtractionConfig(stream_chunks=5)
    ).run(corpus)
    kb = result.kb
    truth = GroundTruth(world, kb)

    print("\nper-concept extraction quality:")
    for concept in ("programming language", "web framework", "country"):
        summary = truth.concept_truth(concept)
        print(f"  {concept:<22} {summary.instances:>4} instances, "
              f"{summary.error_rate:.0%} errors")

    drifted = [
        instance
        for instance in kb.instances_of("programming language")
        if world.is_member("web framework", instance)
        and not world.is_member("programming language", instance)
    ]
    print(f"\nframeworks drifted into 'programming language': {len(drifted)}")
    reverse = [
        instance
        for instance in kb.instances_of("country")
        if world.is_member("programming language", instance)
    ]
    print(
        f"languages drifted into 'country': {len(reverse)} — an *emergent* "
        "channel:\n  a false fact seeds one language under country, and "
        "every later\n  'languages from countries such as …' sentence "
        "resolves the wrong way."
    )

    index = MutualExclusionIndex(kb)
    print("\nmutual-exclusion index recovered from extraction alone:")
    for a, b in (
        ("programming language", "country"),
        ("programming language", "web framework"),
        ("country", "nation"),
    ):
        relation = (
            "exclusive" if index.exclusive(a, b)
            else "similar" if index.highly_similar(a, b)
            else "related"
        )
        print(f"  {a!r} vs {b!r}: {relation} "
              f"(cosine {index.similarity.similarity(a, b):.4f})")


if __name__ == "__main__":
    main()
