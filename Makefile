# Developer entry points. `make bench` regenerates the benchmark evidence
# file committed at the repo root (BENCH_<date>.json).

PYTEST := PYTHONPATH=src python -m pytest
DATE   := $(shell date +%Y-%m-%d)

.PHONY: test lint bench bench-substrates bench-ingest bench-extraction bench-compare

test: lint
	$(PYTEST) -x -q

# Static checks: the package's import-direction rules (DESIGN.md §8).
lint:
	python scripts/check_layering.py

bench:
	$(PYTEST) benchmarks/ --benchmark-only \
		--benchmark-json=BENCH_$(DATE).json

# The substrate micro-benchmarks alone (ranking kernel, cleaning round,
# extraction) — the quick loop while optimising.
bench-substrates:
	$(PYTEST) benchmarks/test_bench_substrates.py --benchmark-only \
		--benchmark-json=BENCH_$(DATE).json

# The streaming-service benchmarks alone (per-batch ingest latency,
# durability overhead, cold resume).
bench-ingest:
	$(PYTEST) benchmarks/test_bench_ingest.py --benchmark-only \
		--benchmark-json=BENCH_$(DATE).json

# The deep-pool extraction benchmarks alone (worklist vs naive scan) —
# the quick loop while working on the resolution engine.
bench-extraction:
	$(PYTEST) benchmarks/test_bench_extraction_worklist.py --benchmark-only \
		--benchmark-json=BENCH_$(DATE).json

# Re-run the benchmarks and fail if anything regressed more than 1.5x
# against the latest committed BENCH_*.json.
bench-compare:
	PYTHONPATH=src python scripts/bench_compare.py
