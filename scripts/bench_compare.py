#!/usr/bin/env python
"""Compare a fresh benchmark run against the latest committed BENCH file.

Runs the benchmark suite into a temporary JSON, pairs each benchmark with
the same-named entry in the newest committed ``BENCH_*.json``, and fails
(exit 1) when any benchmark's minimum time regressed by more than the
threshold (default 1.5x).  New benchmarks with no committed counterpart
are reported but never fail the run.

Usage::

    python scripts/bench_compare.py [--threshold 1.5] [pytest args...]

Extra arguments are forwarded to pytest, so ``-k dp_cleaning`` compares a
single benchmark.  Wall-clock noise on shared hosts is real; treat a
failure as "re-run and investigate", not proof of a regression.
"""

from __future__ import annotations

import argparse
import fnmatch
import json
import subprocess
import sys
import tempfile
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent


def latest_committed_bench() -> tuple[str, str]:
    """Name and content of the newest BENCH_*.json in git's HEAD.

    Read from the repository, not the working tree: ``make bench``
    overwrites same-day files in place, and the point is to compare
    against what was committed.
    """
    # ls-tree pathspecs are literal prefixes (no globbing), so list the
    # tree root and filter here.
    listing = subprocess.run(
        ["git", "ls-tree", "--name-only", "HEAD"],
        cwd=REPO_ROOT,
        capture_output=True,
        text=True,
        check=True,
    )
    names = sorted(
        line
        for line in listing.stdout.splitlines()
        if fnmatch.fnmatch(line, "BENCH_*.json")
    )
    if not names:
        raise SystemExit("no committed BENCH_*.json to compare against")
    blob = subprocess.run(
        ["git", "show", f"HEAD:{names[-1]}"],
        cwd=REPO_ROOT,
        capture_output=True,
        text=True,
        check=True,
    )
    return names[-1], blob.stdout


def min_times(text: str) -> dict[str, float]:
    """benchmark name -> minimum time in seconds."""
    data = json.loads(text)
    return {
        entry["name"]: entry["stats"]["min"]
        for entry in data.get("benchmarks", [])
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description=__doc__, formatter_class=argparse.RawDescriptionHelpFormatter
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=1.5,
        help="fail when new_min/old_min exceeds this (default: 1.5)",
    )
    args, pytest_args = parser.parse_known_args(argv)

    baseline_name, baseline_text = latest_committed_bench()
    baseline = min_times(baseline_text)

    with tempfile.NamedTemporaryFile(
        suffix=".json", prefix="bench_compare_", delete=False
    ) as handle:
        fresh_path = Path(handle.name)
    command = [
        sys.executable,
        "-m",
        "pytest",
        "benchmarks/",
        "--benchmark-only",
        f"--benchmark-json={fresh_path}",
        *pytest_args,
    ]
    print(f"baseline: {baseline_name} (HEAD)")
    print("running:", " ".join(command), flush=True)
    run = subprocess.run(command, cwd=REPO_ROOT)
    if run.returncode != 0:
        print("benchmark run failed; nothing to compare", file=sys.stderr)
        return run.returncode
    fresh = min_times(fresh_path.read_text())

    regressions: list[str] = []
    new_benchmarks: list[str] = []
    width = max((len(name) for name in fresh), default=0)
    for name in sorted(fresh):
        new_min = fresh[name]
        old_min = baseline.get(name)
        if old_min is None:
            print(f"{name:<{width}}  {new_min * 1e3:9.1f} ms  (new benchmark)")
            new_benchmarks.append(name)
            continue
        ratio = new_min / old_min if old_min else float("inf")
        flag = "REGRESSION" if ratio > args.threshold else "ok"
        print(
            f"{name:<{width}}  {old_min * 1e3:9.1f} ms -> "
            f"{new_min * 1e3:9.1f} ms  ({ratio:5.2f}x)  {flag}"
        )
        if ratio > args.threshold:
            regressions.append(name)
    for name in sorted(set(baseline) - set(fresh)):
        print(f"{name:<{width}}  (not run this time)")
    if new_benchmarks:
        print(
            f"\n{len(new_benchmarks)} new benchmark(s) without a baseline: "
            f"{', '.join(new_benchmarks)}"
        )

    if regressions:
        print(
            f"\n{len(regressions)} benchmark(s) slower than "
            f"{args.threshold}x baseline: {', '.join(regressions)}",
            file=sys.stderr,
        )
        return 1
    print("\nno regressions beyond threshold")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
