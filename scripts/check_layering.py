#!/usr/bin/env python
"""Enforce the repro package's import-direction rules.

The package is layered (DESIGN.md §8): a module may import from its own
layer or any layer below it, never from above.  This script walks every
module's AST, resolves intra-package imports to their top-level member
(``repro.cleaning.dp_cleaner`` → ``cleaning``) and fails — listing every
offending import — when an import points to a higher layer.

Run directly (``python scripts/check_layering.py``) or through ``make
lint``; the tier-1 suite also exercises it (``tests/test_layering.py``),
including the failure path on a seeded violation.
"""

from __future__ import annotations

import argparse
import ast
import sys
from pathlib import Path

#: member → layer.  A member is a top-level module or subpackage of
#: ``repro``.  Same-or-lower-layer imports are allowed; upward imports
#: are violations.  New members must be registered here — unknown
#: members are reported too, so the map cannot silently rot.
LAYERS: dict[str, int] = {
    # L0 — foundation: no intra-package imports at all.
    "errors": 0,
    "config": 0,
    "rng": 0,
    "runtime": 0,
    # L1 — simulation primitives.
    "nlp": 1,
    "world": 1,
    # L2 — corpus synthesis.
    "corpus": 2,
    # L3 — the knowledge base.
    "kb": 3,
    # L4 — extraction over corpus + KB.
    "extraction": 4,
    # L5 — analysis substrate over the extracted KB.
    "ranking": 5,
    "concepts": 5,
    "features": 5,
    "labeling": 5,
    "learning": 5,
    "analysis": 5,
    "evaluation": 5,
    # L6 — cleaning consumes the whole analysis substrate.
    "cleaning": 6,
    # L7 — orchestration.
    "service": 7,
    "experiments": 7,
    # L8 — front-ends.
    "cli": 8,
    "__main__": 8,
    "__init__": 8,
}


def _module_parts(path: Path, root: Path) -> list[str]:
    """Dotted-path components of a source file relative to the package.

    ``cleaning/baselines/rw_rank.py`` → ``["cleaning", "baselines",
    "rw_rank"]``; ``cleaning/__init__.py`` → ``["cleaning", "__init__"]``.
    """
    relative = path.relative_to(root)
    parts = list(relative.parts)
    parts[-1] = parts[-1][:-3]
    return parts


def _imported_members(
    tree: ast.Module, parts: list[str]
) -> list[tuple[int, str]]:
    """(line, member) for every intra-package import in a module.

    Relative imports resolve against the module's real package path, so
    ``from ..base import X`` inside ``cleaning/baselines/`` correctly
    lands on ``cleaning`` (same member) rather than a sibling.
    """
    # The package a level-1 relative import resolves against (for an
    # __init__ module, parts ends in "__init__", so this is the package
    # directory itself — matching Python's resolution rules).
    package = parts[:-1]
    found: list[tuple[int, str]] = []
    for node in ast.walk(tree):
        if isinstance(node, ast.ImportFrom):
            if node.level == 0:
                if node.module and node.module.split(".")[0] == "repro":
                    tail = node.module.split(".")[1:]
                    resolved = tail or [alias.name for alias in node.names]
                    for name in resolved[:1] if tail else resolved:
                        found.append((node.lineno, name))
                continue
            base = package[: len(package) - (node.level - 1)]
            tail = node.module.split(".") if node.module else []
            resolved = base + tail
            if resolved:
                found.append((node.lineno, resolved[0]))
            else:
                # 'from .. import x' reaching the package root: each
                # imported name is itself a top-level member.
                for alias in node.names:
                    found.append((node.lineno, alias.name))
        elif isinstance(node, ast.Import):
            for alias in node.names:
                dotted = alias.name.split(".")
                if dotted[0] == "repro" and len(dotted) > 1:
                    found.append((node.lineno, dotted[1]))
    return found


def check_layering(root: Path) -> list[str]:
    """All layering violations under ``root`` (the ``repro`` package dir)."""
    violations: list[str] = []
    for path in sorted(root.rglob("*.py")):
        parts = _module_parts(path, root)
        member = parts[0]
        layer = LAYERS.get(member)
        if layer is None:
            violations.append(
                f"{path}: member {member!r} is not registered in "
                "scripts/check_layering.py LAYERS"
            )
            continue
        tree = ast.parse(path.read_text(encoding="utf-8"), filename=str(path))
        for lineno, imported in _imported_members(tree, parts):
            if imported == member:
                continue
            imported_layer = LAYERS.get(imported)
            if imported_layer is None:
                violations.append(
                    f"{path}:{lineno}: imports unregistered member "
                    f"{imported!r} (add it to LAYERS)"
                )
            elif imported_layer > layer:
                violations.append(
                    f"{path}:{lineno}: {member} (L{layer}) imports "
                    f"{imported} (L{imported_layer}) — upward import"
                )
    return violations


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--root",
        type=Path,
        default=Path(__file__).resolve().parent.parent / "src" / "repro",
        help="the repro package directory to check",
    )
    args = parser.parse_args(argv)
    violations = check_layering(args.root)
    if violations:
        print(f"{len(violations)} layering violation(s):", file=sys.stderr)
        for violation in violations:
            print(f"  {violation}", file=sys.stderr)
        return 1
    print(f"layering OK ({args.root})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
