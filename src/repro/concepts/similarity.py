"""Concept similarity from core-pair overlap (§3.2.1).

The similarity between two concepts is the cosine between their *core*
instance sets (iteration-1 extractions):

    Sim(C1, C2) = |Core(C1) ∩ Core(C2)| / sqrt(|Core(C1)| · |Core(C2)|)

An inverted index over core instances finds every concept pair with
non-zero overlap without the quadratic scan the paper's millions of
concepts would forbid; all other pairs have similarity exactly zero.

The snapshot is **incrementally updatable**: :meth:`refresh` diffs the
cores of concepts the KB reports as mutated since the last sync, patches
the inverted index in place, and returns every concept whose similarity
*row* may have changed (the mutated concepts plus all old/new overlap
partners).  A refreshed index answers every query identically to a
from-scratch rebuild — a hypothesis property test asserts it.
"""

from __future__ import annotations

import bisect
import math
from collections.abc import Iterator

from ..kb.store import KnowledgeBase

__all__ = ["CoreSimilarity"]


class CoreSimilarity:
    """Core-set cosine similarity over all concepts of a knowledge base."""

    def __init__(self, kb: KnowledgeBase, min_core_size: int = 1) -> None:
        if min_core_size < 1:
            raise ValueError("min_core_size must be >= 1")
        self._kb = kb
        self._min_core_size = min_core_size
        self._kb_version = kb.version
        self._cores: dict[str, frozenset[str]] = {}
        for concept in kb.concepts():
            core = kb.core_instances(concept)
            if len(core) >= min_core_size:
                self._cores[concept] = core
        self._inverted: dict[str, list[str]] = {}
        for concept, core in self._cores.items():
            for instance in core:
                self._inverted.setdefault(instance, []).append(concept)

    def refresh(self) -> frozenset[str]:
        """Re-sync with the KB; return concepts whose rows may have changed.

        Only concepts mutated since the last sync are re-read; for each
        one whose (filtered) core actually changed, the inverted index is
        patched and all overlap partners of the old and new core are
        reported alongside it — ``similarity(a, b)`` can change only if
        ``a`` or ``b`` is in the returned set.
        """
        kb = self._kb
        if kb.version == self._kb_version:
            return frozenset()
        dirty = kb.dirty_concepts_since(self._kb_version)
        self._kb_version = kb.version
        affected: set[str] = set()
        inverted = self._inverted
        for concept in dirty:
            old = self._cores.get(concept, frozenset())
            core = kb.core_instances(concept)
            new = core if len(core) >= self._min_core_size else frozenset()
            if new == old:
                continue
            affected.add(concept)
            # Partners through any old or new core instance: their
            # similarity to ``concept`` changes with the core size even
            # when the shared instances are untouched.
            for instance in old | new:
                posting = inverted.get(instance)
                if posting:
                    affected.update(posting)
            for instance in old - new:
                posting = inverted[instance]
                posting.remove(concept)
                if not posting:
                    del inverted[instance]
            for instance in new - old:
                inverted.setdefault(instance, []).append(concept)
            if new:
                self._cores[concept] = new
            else:
                self._cores.pop(concept, None)
        return frozenset(affected)

    @property
    def concepts(self) -> frozenset[str]:
        """Concepts with a large-enough core to compare."""
        return frozenset(self._cores)

    def core(self, concept: str) -> frozenset[str]:
        """The core instance set used for comparisons (empty if filtered)."""
        return self._cores.get(concept, frozenset())

    def similarity(self, concept_a: str, concept_b: str) -> float:
        """Cosine of the two concepts' core sets (0 when either is absent)."""
        core_a = self._cores.get(concept_a)
        core_b = self._cores.get(concept_b)
        if not core_a or not core_b:
            return 0.0
        overlap = len(core_a & core_b)
        if overlap == 0:
            return 0.0
        return overlap / math.sqrt(len(core_a) * len(core_b))

    def overlapping(self, concept: str) -> dict[str, float]:
        """All concepts with non-zero similarity to ``concept``."""
        core = self._cores.get(concept)
        if not core:
            return {}
        counts: dict[str, int] = {}
        for instance in core:
            for other in self._inverted.get(instance, ()):
                if other != concept:
                    counts[other] = counts.get(other, 0) + 1
        size = len(core)
        return {
            other: overlap / math.sqrt(size * len(self._cores[other]))
            for other, overlap in counts.items()
        }

    def overlapping_pairs(self) -> Iterator[tuple[str, str, float]]:
        """Every unordered concept pair with non-zero similarity.

        Each pair surfaces from both endpoints' rows; emitting only the
        ``concept < other`` ordering deduplicates without tracking an
        O(pairs) seen-set.
        """
        for concept in self._cores:
            for other, value in self.overlapping(concept).items():
                if concept < other:
                    yield concept, other, value

    def similarity_histogram(
        self, bin_edges: list[float]
    ) -> tuple[list[int], int]:
        """Histogram of non-zero pair similarities plus the zero-pair count.

        Returns ``(counts per bin, number_of_zero_similarity_pairs)`` —
        the data behind Fig. 4.
        """
        counts = [0] * (len(bin_edges) - 1)
        nonzero = 0
        for _, _, value in self.overlapping_pairs():
            nonzero += 1
            # bisect_right - 1 is the unique i with edges[i] <= value <
            # edges[i + 1]; values outside [edges[0], edges[-1]) land at
            # -1 or len(counts) and are dropped, as the scan did.
            i = bisect.bisect_right(bin_edges, value) - 1
            if 0 <= i < len(counts):
                counts[i] += 1
        total = len(self._cores)
        all_pairs = total * (total - 1) // 2
        return counts, all_pairs - nonzero
