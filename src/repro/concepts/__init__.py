"""Concept-level analysis: core-set similarity and mutual exclusion."""

from .exclusion import MutualExclusionIndex
from .similarity import CoreSimilarity

__all__ = ["CoreSimilarity", "MutualExclusionIndex"]
