"""Mutual exclusion and high-similarity between concepts (§3.2.1).

Two concepts are **mutually exclusive** when their core-set similarity is
below ``exclusive_threshold`` and **highly similar** above
``similar_threshold``; everything in between is merely *irrelevant* (the
three bands of Fig. 4).  The paper additionally propagates exclusion
through highly-similar siblings ("we could safely take the mutually
exclusive concepts of C as the mutually exclusive concepts of C'").  We
implement that by comparing *similarity groups*: A ⊥ B iff no member of
A's group overlaps any member of B's group above the exclusive threshold.

Note on thresholds: the paper's 1e-4 presumes cores of 10⁴–10⁶ instances,
where one shared instance stays under the threshold.  Synthetic cores are
10²–10³, so the library default (see
:class:`repro.config.SimilarityConfig`) is scaled accordingly; Fig. 4's
runner regenerates the distribution the threshold is read from.
"""

from __future__ import annotations

from ..config import SimilarityConfig
from ..kb.store import KnowledgeBase
from .similarity import CoreSimilarity

__all__ = ["MutualExclusionIndex"]


class MutualExclusionIndex:
    """Answers exclusivity / similarity queries over extracted concepts."""

    def __init__(
        self,
        kb: KnowledgeBase,
        config: SimilarityConfig | None = None,
        similarity: CoreSimilarity | None = None,
    ) -> None:
        self._config = config or SimilarityConfig()
        self._similarity = similarity or CoreSimilarity(
            kb, min_core_size=self._config.min_core_size
        )
        self._groups: dict[str, frozenset[str]] = {}
        for concept in self._similarity.concepts:
            self._groups[concept] = self._compute_group(concept)
        # Pairwise exclusivity memo; sound because the similarity snapshot
        # is fixed between refreshes, and refresh() drops every entry a
        # core change could have flipped.
        self._exclusive_cache: dict[tuple[str, str], bool] = {}
        # Monotonic per-concept stamp bumped whenever a refresh may have
        # changed any relation (similarity row, group, exclusivity)
        # involving the concept.  Downstream caches key on it.
        self._epoch = 0
        self._relations_version: dict[str, int] = {}

    def _compute_group(self, concept: str) -> frozenset[str]:
        similar = {
            other
            for other, value in self._similarity.overlapping(concept).items()
            if value > self._config.similar_threshold
        }
        similar.add(concept)
        return frozenset(similar)

    def relations_version(self, concept: str) -> int:
        """Epoch at which the concept's relations last changed (0 = never)."""
        return self._relations_version.get(concept, 0)

    @property
    def epoch(self) -> int:
        """Global refresh epoch (bumps whenever any relation may change)."""
        return self._epoch

    def refresh(self) -> frozenset[str]:
        """Incrementally re-sync with the KB; return the affected closure.

        Similarity rows are refreshed first; groups are recomputed only
        for concepts whose rows changed, and the exclusivity memo drops
        every pair touching the *closure* — affected rows plus any
        concept whose group contains an affected member (exclusivity
        propagates through groups, so those verdicts may flip too).
        ``exclusive(a, b)`` can change only if ``a`` or ``b`` is in the
        returned closure; each closure member's
        :meth:`relations_version` is bumped.
        """
        affected = self._similarity.refresh()
        if not affected:
            return frozenset()
        closure = set(affected)
        for concept, group in self._groups.items():
            if group & affected:
                closure.add(concept)
        concepts_now = self._similarity.concepts
        for concept in affected:
            if concept in concepts_now:
                self._groups[concept] = self._compute_group(concept)
            else:
                self._groups.pop(concept, None)
        if self._exclusive_cache:
            dead = [
                key
                for key in self._exclusive_cache
                if key[0] in closure or key[1] in closure
            ]
            for key in dead:
                del self._exclusive_cache[key]
        self._epoch += 1
        for concept in closure:
            self._relations_version[concept] = self._epoch
        return frozenset(closure)

    @property
    def similarity(self) -> CoreSimilarity:
        """The underlying core-set similarity."""
        return self._similarity

    @property
    def config(self) -> SimilarityConfig:
        """Thresholds in effect."""
        return self._config

    def group(self, concept: str) -> frozenset[str]:
        """The concept plus everything highly similar to it."""
        return self._groups.get(concept, frozenset({concept}))

    def highly_similar(self, concept_a: str, concept_b: str) -> bool:
        """True when the two concepts' cores overlap strongly."""
        if concept_a == concept_b:
            return True
        return (
            self._similarity.similarity(concept_a, concept_b)
            > self._config.similar_threshold
        )

    def exclusive(self, concept_a: str, concept_b: str) -> bool:
        """Mutual exclusion with similarity-group propagation."""
        if concept_a == concept_b:
            return False
        key = (
            (concept_a, concept_b)
            if concept_a < concept_b
            else (concept_b, concept_a)
        )
        cached = self._exclusive_cache.get(key)
        if cached is not None:
            return cached
        result = self._compute_exclusive(concept_a, concept_b)
        self._exclusive_cache[key] = result
        return result

    def _compute_exclusive(self, concept_a: str, concept_b: str) -> bool:
        group_a = self.group(concept_a)
        group_b = self.group(concept_b)
        if group_a & group_b:
            return False
        threshold = self._config.exclusive_threshold
        for a in group_a:
            for b in group_b:
                if self._similarity.similarity(a, b) >= threshold:
                    return False
        return True

    def exclusive_concepts_containing(
        self, kb: KnowledgeBase, concept: str, instance: str
    ) -> frozenset[str]:
        """Concepts exclusive with ``concept`` that list ``instance``.

        This is the paper's feature ``f2`` numerator: the number of
        mutually exclusive concepts that also obtained the instance.
        """
        return frozenset(
            other
            for other in kb.iter_concepts_with_instance(instance)
            if other != concept and self.exclusive(concept, other)
        )

    def count_exclusive_containing(
        self, kb: KnowledgeBase, concept: str, instance: str
    ) -> int:
        """``len(exclusive_concepts_containing(...))`` without the set."""
        exclusive = self.exclusive
        count = 0
        for other in kb.iter_concepts_with_instance(instance):
            if other != concept and exclusive(concept, other):
                count += 1
        return count
