"""Synthetic Hearst-pattern corpus substrate."""

from .corpus import Corpus, sentence_from_json, sentence_to_json
from .documents import Page, deduplicate, group_pages
from .generator import CorpusGenerator, generate_corpus
from .stats import CorpusStats, corpus_stats
from .sentence import Sentence, SentenceKind, SentenceTruth

__all__ = [
    "Corpus",
    "CorpusGenerator",
    "CorpusStats",
    "corpus_stats",
    "Page",
    "Sentence",
    "SentenceKind",
    "SentenceTruth",
    "deduplicate",
    "generate_corpus",
    "group_pages",
    "sentence_from_json",
    "sentence_to_json",
]
