"""The :class:`Corpus` container."""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from collections.abc import Iterator, Sequence

from ..errors import CorpusError
from .documents import Page, deduplicate, group_pages
from .sentence import Sentence, SentenceKind, SentenceTruth

__all__ = ["Corpus", "sentence_to_json", "sentence_from_json"]


@dataclass(frozen=True)
class Corpus:
    """An immutable collection of Hearst sentences grouped into pages."""

    sentences: tuple[Sentence, ...]

    def __len__(self) -> int:
        return len(self.sentences)

    def __iter__(self) -> Iterator[Sentence]:
        return iter(self.sentences)

    def __getitem__(self, sid: int) -> Sentence:
        sentence = self.by_sid().get(sid)
        if sentence is None:
            raise CorpusError(f"no sentence with sid {sid}")
        return sentence

    def by_sid(self) -> dict[int, Sentence]:
        """Sentence lookup by id (built on demand)."""
        return {sentence.sid: sentence for sentence in self.sentences}

    def pages(self) -> list[Page]:
        """The page grouping of this corpus."""
        return group_pages(self.sentences)

    def deduplicated(self) -> "Corpus":
        """A corpus with exact-duplicate surfaces removed (first one wins)."""
        return Corpus(tuple(deduplicate(self.sentences)))

    def ambiguous(self) -> list[Sentence]:
        """All sentences with more than one candidate concept."""
        return [s for s in self.sentences if s.is_ambiguous]

    def unambiguous(self) -> list[Sentence]:
        """All sentences with exactly one candidate concept."""
        return [s for s in self.sentences if not s.is_ambiguous]

    def kind_counts(self) -> dict[SentenceKind, int]:
        """Histogram of generation kinds (requires truth records)."""
        counts: dict[SentenceKind, int] = {}
        for sentence in self.sentences:
            if sentence.truth is not None:
                kind = sentence.truth.kind
                counts[kind] = counts.get(kind, 0) + 1
        return counts

    def without_truth(self) -> "Corpus":
        """A copy safe to hand to extraction code in adversarial tests."""
        return Corpus(tuple(s.without_truth() for s in self.sentences))

    # ------------------------------------------------------------------
    # Batching (streaming ingestion)
    # ------------------------------------------------------------------
    def batches(self, batch_size: int) -> Iterator["Corpus"]:
        """Split the corpus into successive batches of ``batch_size``.

        The shards preserve sentence order; concatenating them yields the
        original corpus.  This is the feed for streaming ingest sessions
        (:mod:`repro.service`), which treat each shard as one arrival.
        """
        if batch_size <= 0:
            raise CorpusError("batch_size must be positive")
        for start in range(0, len(self.sentences), batch_size):
            yield Corpus(self.sentences[start:start + batch_size])

    def shards(self, num_shards: int) -> list["Corpus"]:
        """Split the corpus into ``num_shards`` near-equal batches."""
        if num_shards <= 0:
            raise CorpusError("num_shards must be positive")
        size = max(1, -(-len(self.sentences) // num_shards))
        return list(self.batches(size))

    # ------------------------------------------------------------------
    # Serialisation
    # ------------------------------------------------------------------
    def dump_jsonl(self, path: str | Path) -> None:
        """Write the corpus to a JSON-lines file."""
        with open(path, "w", encoding="utf-8") as handle:
            for sentence in self.sentences:
                handle.write(json.dumps(_sentence_to_json(sentence)) + "\n")

    @classmethod
    def load_jsonl(cls, path: str | Path) -> "Corpus":
        """Read a corpus previously written by :meth:`dump_jsonl`."""
        sentences: list[Sentence] = []
        with open(path, encoding="utf-8") as handle:
            for line_number, line in enumerate(handle, start=1):
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                    sentences.append(_sentence_from_json(record))
                except (json.JSONDecodeError, KeyError, ValueError) as exc:
                    raise CorpusError(
                        f"bad corpus record at {path}:{line_number}: {exc}"
                    ) from exc
        return cls(tuple(sentences))

    @classmethod
    def from_sentences(cls, sentences: Sequence[Sentence]) -> "Corpus":
        """Build a corpus from any sentence sequence."""
        return cls(tuple(sentences))


def sentence_to_json(sentence: Sentence) -> dict:
    """The JSON form of one sentence (as in :meth:`Corpus.dump_jsonl`)."""
    return _sentence_to_json(sentence)


def sentence_from_json(record: dict) -> Sentence:
    """Rebuild a sentence from :func:`sentence_to_json` output."""
    return _sentence_from_json(record)


def _sentence_to_json(sentence: Sentence) -> dict:
    record = {
        "sid": sentence.sid,
        "surface": sentence.surface,
        "concepts": list(sentence.concepts),
        "instances": list(sentence.instances),
        "page_id": sentence.page_id,
    }
    if sentence.truth is not None:
        record["truth"] = {
            "concept": sentence.truth.concept,
            "kind": sentence.truth.kind.value,
            "contaminants": list(sentence.truth.contaminants),
            "typos": list(sentence.truth.typos),
            "bridge": sentence.truth.bridge,
        }
    return record


def _sentence_from_json(record: dict) -> Sentence:
    truth = None
    if "truth" in record:
        raw = record["truth"]
        truth = SentenceTruth(
            concept=raw["concept"],
            kind=SentenceKind(raw["kind"]),
            contaminants=tuple(raw.get("contaminants", ())),
            typos=tuple(raw.get("typos", ())),
            bridge=raw.get("bridge"),
        )
    return Sentence(
        sid=record["sid"],
        surface=record["surface"],
        concepts=tuple(record["concepts"]),
        instances=tuple(record["instances"]),
        page_id=record.get("page_id", 0),
        truth=truth,
    )
