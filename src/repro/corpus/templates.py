"""Hearst-pattern surface templates.

Surfaces are genuinely parseable: :mod:`repro.extraction.pattern` recovers
the candidate structure from the raw string, and round-trip tests assert
``parse(render(x)) == x``.  Three shapes are used:

* ``<C-pl> such as a, b and c`` — unambiguous, one candidate;
* ``<head-pl> from <modifier-pl> such as a, b and c`` — ambiguous; the
  modifier is nearest to the cue, so candidates are ``(modifier, head)``;
* ``<C-pl> other than <x> such as a and b`` — the mis-parse shape: a naive
  parser attaches *such as* to ``<x>`` and produces ``(a isA x)``.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "pluralize",
    "render_unambiguous",
    "render_ambiguous",
    "render_misparse",
    "join_instances",
    "LEADINS",
]

#: Decorative lead-ins; parsing ignores everything before the pattern body.
LEADINS = (
    "",
    "many ",
    "some ",
    "popular ",
    "various ",
    "well-known ",
)


def pluralize(noun: str) -> str:
    """Pluralise the head (last) word of a concept surface.

    >>> pluralize("country")
    'countries'
    >>> pluralize("asian country")
    'asian countries'
    >>> pluralize("bus")
    'buses'
    """
    head = noun.rsplit(" ", 1)[-1]
    prefix = noun[: len(noun) - len(head)]
    if head.endswith("y") and len(head) > 1 and head[-2] not in "aeiou":
        plural = head[:-1] + "ies"
    elif head.endswith(("s", "x", "z", "ch", "sh")):
        plural = head + "es"
    else:
        plural = head + "s"
    return prefix + plural


def join_instances(instances: tuple[str, ...]) -> str:
    """Render an instance list the way Hearst sentences do.

    >>> join_instances(("a", "b", "c"))
    'a, b and c'
    """
    if len(instances) == 1:
        return instances[0]
    return ", ".join(instances[:-1]) + " and " + instances[-1]


def _leadin(rng: np.random.Generator) -> str:
    return LEADINS[int(rng.integers(0, len(LEADINS)))]


def render_unambiguous(
    concept: str, instances: tuple[str, ...], rng: np.random.Generator
) -> str:
    """Surface for a single-candidate sentence."""
    return (
        f"{_leadin(rng)}{pluralize(concept)} such as {join_instances(instances)}"
    )


def render_ambiguous(
    head: str,
    modifier: str,
    instances: tuple[str, ...],
    rng: np.random.Generator,
) -> str:
    """Surface for a two-candidate sentence.

    The *modifier* sits next to ``such as`` and is therefore the preferred
    syntactic attachment; the *head* is the concept the sentence is really
    about.
    """
    return (
        f"{_leadin(rng)}{pluralize(head)} from {pluralize(modifier)} "
        f"such as {join_instances(instances)}"
    )


def render_misparse(
    concept: str,
    excluded: str,
    instances: tuple[str, ...],
    rng: np.random.Generator,
) -> str:
    """Surface whose naive parse yields ``(instances isA excluded)``."""
    return (
        f"{_leadin(rng)}{pluralize(concept)} other than {pluralize(excluded)} "
        f"such as {join_instances(instances)}"
    )
