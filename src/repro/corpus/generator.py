"""Synthetic Hearst-corpus generation.

The generator never marks a sentence "this one should drift".  It only
plants the *mechanisms* the paper identifies, and drift emerges from the
extractor's behaviour:

* **unambiguous** sentences (``animals such as …``) — iteration-1 material,
  occasionally carrying a false fact or a typo;
* **ambiguous** sentences (``<head> from <modifier> such as …``) whose
  nearest-attachment candidate is the modifier.  *Benign* ones use a random
  cross-domain modifier that shares no instances with the head, so knowledge
  resolves them correctly; *drift fodder* uses a modifier whose world-level
  partner relation (polysemy bridges, accumulated errors) lets the wrong
  candidate win;
* **mis-parse** sentences (``animals other than dogs such as cats``) whose
  recorded candidate structure is the naive wrong parse ``(cat isA dog)``.

Sentence budgets per concept follow concept popularity; instance picks
follow Zipfian instance popularity, so evidence counts have realistic
long tails (Property 3/4 of the paper rely on this).
"""

from __future__ import annotations

import numpy as np

from ..config import ConceptProfile, CorpusConfig
from ..errors import CorpusError
from ..rng import generator_from
from ..world.taxonomy import World
from . import templates
from .corpus import Corpus
from .noise import apply_typo, pick_false_fact, popular_members
from .sentence import Sentence, SentenceKind, SentenceTruth

__all__ = ["CorpusGenerator", "generate_corpus"]


class CorpusGenerator:
    """Generate a drift-prone Hearst corpus from a ground-truth world."""

    def __init__(
        self,
        world: World,
        config: CorpusConfig | None = None,
        seed: int | np.random.Generator | None = None,
    ) -> None:
        self._world = world
        self._config = config or CorpusConfig()
        self._rng = generator_from(seed)
        self._members: dict[str, list[str]] = {}
        self._weights: dict[str, np.ndarray] = {}
        for spec in world.iter_concepts():
            members = list(spec.members)
            if not members:
                continue
            weights = np.array(
                [world.instance(m).popularity for m in members], dtype=float
            )
            self._members[spec.name] = members
            self._weights[spec.name] = weights / weights.sum()
        self._tail_cache: dict[str, np.ndarray] = {}
        if not self._members:
            raise CorpusError("world has no concepts with members")

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def generate(self) -> Corpus:
        """Generate the configured number of sentences (before duplication)."""
        config = self._config
        n_misparse = int(round(config.num_sentences * config.misparse_rate))
        n_body = config.num_sentences - n_misparse
        jobs = self._allocate(n_body)
        sentences: list[tuple[str, tuple[str, ...], tuple[str, ...], SentenceTruth]] = []
        for concept, kind in jobs:
            if kind == "unambiguous":
                built = self._build_unambiguous(concept)
            elif kind == "benign":
                built = self._build_benign(concept)
            else:
                built = self._build_drift(concept)
            if built is not None:
                sentences.append(built)
        for _ in range(n_misparse):
            built = self._build_misparse()
            if built is not None:
                sentences.append(built)
        order = self._rng.permutation(len(sentences))
        final: list[Sentence] = []
        for sid, index in enumerate(order):
            surface, concepts, instances, truth = sentences[int(index)]
            final.append(
                Sentence(
                    sid=sid,
                    surface=surface,
                    concepts=concepts,
                    instances=instances,
                    page_id=sid // config.sentences_per_page,
                    truth=truth,
                )
            )
        final.extend(self._duplicates(final))
        return Corpus(tuple(final))

    # ------------------------------------------------------------------
    # Budgeting
    # ------------------------------------------------------------------
    def _allocate(self, n_body: int) -> list[tuple[str, str]]:
        """Expand the sentence budget into (concept, kind) jobs."""
        config = self._config
        names = sorted(self._members)
        raw = np.array(
            [
                self._world.concept(name).popularity
                * config.profile_for(name).sentence_share
                for name in names
            ],
            dtype=float,
        )
        if raw.sum() <= 0:
            raise CorpusError("all concept sentence shares are zero")
        counts = self._rng.multinomial(n_body, raw / raw.sum())
        jobs: list[tuple[str, str]] = []
        for name, count in zip(names, counts):
            profile = config.profile_for(name)
            n_ambiguous = int(round(count * profile.ambiguous_rate))
            has_sources = any(
                source in self._members
                for source in self._world.concept(name).partners
            )
            n_drift = (
                int(round(n_ambiguous * profile.drift_rate)) if has_sources else 0
            )
            n_benign = n_ambiguous - n_drift
            n_plain = count - n_ambiguous
            jobs.extend((name, "unambiguous") for _ in range(n_plain))
            jobs.extend((name, "benign") for _ in range(n_benign))
            jobs.extend((name, "drift") for _ in range(n_drift))
        return jobs

    # ------------------------------------------------------------------
    # Sentence builders
    # ------------------------------------------------------------------
    def _build_unambiguous(self, concept: str):
        profile = self._profile(concept)
        instances = self._sample_instances(concept)
        if instances is None:
            return None
        contaminants: tuple[str, ...] = ()
        typos: tuple[str, ...] = ()
        if self._rng.random() < profile.false_fact_rate:
            false_fact = pick_false_fact(self._world, concept, self._rng)
            if false_fact is not None and false_fact not in instances:
                instances = instances[:-1] + (false_fact,)
                contaminants = (false_fact,)
        if not contaminants and self._rng.random() < profile.typo_rate:
            victim = int(self._rng.integers(0, len(instances)))
            typo = apply_typo(instances[victim], self._rng)
            instances = (
                instances[:victim] + (typo,) + instances[victim + 1 :]
            )
            typos = (typo,)
        surface = templates.render_unambiguous(concept, instances, self._rng)
        truth = SentenceTruth(
            concept=concept,
            kind=SentenceKind.UNAMBIGUOUS,
            contaminants=contaminants,
            typos=typos,
        )
        return surface, (concept,), instances, truth

    def _build_benign(self, concept: str):
        profile = self._profile(concept)
        instances = self._sample_instances(concept)
        if instances is None:
            return None
        modifier = self._benign_modifier(concept)
        if modifier is None:
            return self._build_unambiguous(concept)
        contaminants: tuple[str, ...] = ()
        if self._rng.random() < profile.false_fact_rate:
            false_fact = pick_false_fact(self._world, concept, self._rng)
            if false_fact is not None and false_fact not in instances:
                instances = instances[:-1] + (false_fact,)
                contaminants = (false_fact,)
        surface = templates.render_ambiguous(concept, modifier, instances, self._rng)
        truth = SentenceTruth(
            concept=concept,
            kind=SentenceKind.AMBIGUOUS,
            contaminants=contaminants,
        )
        return surface, (modifier, concept), instances, truth

    def _build_drift(self, target: str):
        """Drift fodder: head = a partner source, modifier = the target."""
        profile = self._profile(target)
        sources = [
            source
            for source in self._world.concept(target).partners
            if source in self._members
        ]
        if not sources:
            return None
        source = sources[int(self._rng.integers(0, len(sources)))]
        # Drift fodder leans on the tail: obscure source instances are not
        # in anyone's core, so these sentences resolve late — through
        # whatever (possibly wrong) knowledge accumulated first.
        tail_rate = min(1.0, self._config.tail_bias_rate * 1.8)
        instances = self._sample_instances(source, tail_rate=tail_rate)
        if instances is None:
            return None
        bridge: str | None = None
        if self._rng.random() < profile.bridge_rate:
            bridge_pool = sorted(
                self._world.members(target) & self._world.members(source)
            )
            if bridge_pool:
                bridge = bridge_pool[int(self._rng.integers(0, len(bridge_pool)))]
                if bridge not in instances:
                    slot = int(self._rng.integers(0, len(instances)))
                    instances = (
                        instances[:slot] + (bridge,) + instances[slot + 1 :]
                    )
        surface = templates.render_ambiguous(source, target, instances, self._rng)
        truth = SentenceTruth(
            concept=source,
            kind=SentenceKind.AMBIGUOUS,
            bridge=bridge,
        )
        return surface, (target, source), instances, truth

    def _build_misparse(self):
        names = sorted(self._members)
        concept = names[int(self._rng.integers(0, len(names)))]
        members = self._members[concept]
        if len(members) < 2:
            return None
        excluded_pool = popular_members(self._world, concept)
        excluded = excluded_pool[int(self._rng.integers(0, len(excluded_pool)))]
        instances = self._sample_instances(concept, maximum=2, exclude={excluded})
        if instances is None:
            return None
        surface = templates.render_misparse(concept, excluded, instances, self._rng)
        truth = SentenceTruth(concept=concept, kind=SentenceKind.MISPARSE)
        # The *recorded* candidate structure is the naive wrong parse:
        # the instances attach to the excluded entity, not the concept.
        return surface, (excluded,), instances, truth

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------
    def _profile(self, concept: str) -> ConceptProfile:
        return self._config.profile_for(concept)

    def _sample_instances(
        self,
        concept: str,
        maximum: int | None = None,
        exclude: set[str] | None = None,
        tail_rate: float | None = None,
    ) -> tuple[str, ...] | None:
        members = self._members.get(concept)
        if not members:
            return None
        effective_tail = (
            self._config.tail_bias_rate if tail_rate is None else tail_rate
        )
        if self._rng.random() < effective_tail:
            weights = self._tail_weights(concept)
        else:
            weights = self._weights[concept]
        if exclude:
            mask = np.array([m not in exclude for m in members])
            if mask.sum() < 1:
                return None
            members = [m for m, keep in zip(members, mask) if keep]
            weights = weights[mask]
            weights = weights / weights.sum()
        low = self._config.min_instances_per_sentence
        high = maximum or self._config.max_instances_per_sentence
        high = min(high, len(members))
        low = min(low, high)
        count = int(self._rng.integers(low, high + 1))
        picked = self._rng.choice(len(members), size=count, replace=False, p=weights)
        return tuple(members[int(i)] for i in picked)

    def _tail_weights(self, concept: str) -> np.ndarray:
        """Uniform weights over the least-popular fraction of a concept."""
        cached = self._tail_cache.get(concept)
        if cached is not None:
            return cached
        weights = self._weights[concept]
        keep = max(1, int(round(self._config.tail_fraction * len(weights))))
        threshold = np.sort(weights)[keep - 1]
        tail = (weights <= threshold).astype(float)
        tail /= tail.sum()
        self._tail_cache[concept] = tail
        return tail

    def _benign_modifier(self, concept: str) -> str | None:
        """A cross-domain modifier that shares no members with ``concept``."""
        own_domain = self._world.concept(concept).domain
        own_members = self._world.members(concept)
        candidates = [
            other.name
            for other in self._world.iter_concepts()
            if other.domain != own_domain
            and other.name in self._members
            and not (own_members & self._world.members(other.name))
        ]
        if not candidates:
            return None
        return candidates[int(self._rng.integers(0, len(candidates)))]

    def _duplicates(self, base: list[Sentence]) -> list[Sentence]:
        """Re-emit some sentences on later pages with fresh sids."""
        config = self._config
        extras: list[Sentence] = []
        next_sid = len(base)
        next_page = (base[-1].page_id + 1) if base else 0
        for sentence in base:
            if self._rng.random() < config.duplicate_rate:
                extras.append(
                    Sentence(
                        sid=next_sid,
                        surface=sentence.surface,
                        concepts=sentence.concepts,
                        instances=sentence.instances,
                        page_id=next_page + len(extras) // config.sentences_per_page,
                        truth=sentence.truth,
                    )
                )
                next_sid += 1
        return extras


def generate_corpus(
    world: World,
    config: CorpusConfig | None = None,
    seed: int | np.random.Generator | None = None,
) -> Corpus:
    """One-shot convenience wrapper around :class:`CorpusGenerator`."""
    return CorpusGenerator(world, config, seed).generate()
