"""Web-page grouping and sentence de-duplication.

The paper extracts from 326 M *de-duplicated* sentences found on 1.68 B web
pages: the same sentence appearing on many pages counts once.  The corpus
generator emits duplicated surfaces across pages deliberately so that this
stage does real work.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Iterable, Sequence

from .sentence import Sentence

__all__ = ["Page", "group_pages", "deduplicate"]


@dataclass(frozen=True)
class Page:
    """A web page: an id plus the sentences that appeared on it."""

    page_id: int
    sentence_ids: tuple[int, ...]


def group_pages(sentences: Sequence[Sentence]) -> list[Page]:
    """Group sentences into pages by their ``page_id``."""
    by_page: dict[int, list[int]] = {}
    for sentence in sentences:
        by_page.setdefault(sentence.page_id, []).append(sentence.sid)
    return [
        Page(page_id=page_id, sentence_ids=tuple(sids))
        for page_id, sids in sorted(by_page.items())
    ]


def deduplicate(sentences: Iterable[Sentence]) -> list[Sentence]:
    """Drop sentences whose exact surface was seen before.

    Keeps the first occurrence (lowest ``sid``); the survivors preserve
    their original ids, so pair evidence counts reflect *distinct* sentences
    exactly as in the paper.
    """
    seen: set[str] = set()
    kept: list[Sentence] = []
    for sentence in sentences:
        if sentence.surface in seen:
            continue
        seen.add(sentence.surface)
        kept.append(sentence)
    return kept
