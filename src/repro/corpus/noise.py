"""Noise models for corpus generation.

Two error mechanisms from the paper live here:

* **false facts** — a sentence about concept ``C`` names one instance that
  truly belongs to a mutually exclusive concept (the paper's
  ``countries such as France, Portugal, New York`` example);
* **typos** — a corrupted surface that belongs to no concept at all
  (``Syngapore``), the paper's example of an error that is *not* a drifting
  error.
"""

from __future__ import annotations

import numpy as np

from ..world.taxonomy import World
from ..world.vocabulary import make_typo

__all__ = ["pick_false_fact", "apply_typo", "popular_members"]


def popular_members(
    world: World, concept: str, top_fraction: float = 0.25
) -> list[str]:
    """The most popular ground-truth members of a concept.

    False facts in real text involve famous entities (*New York*, not an
    obscure village), so contamination draws from the popularity head.
    """
    members = sorted(
        world.members(concept),
        key=lambda name: -world.instance(name).popularity,
    )
    count = max(1, int(round(top_fraction * len(members))))
    return members[:count]


def pick_false_fact(
    world: World, concept: str, rng: np.random.Generator
) -> str | None:
    """Pick a popular instance of a concept mutually exclusive with ``concept``.

    Returns ``None`` when the world has no exclusive concept to draw from.
    The pick avoids polysemous instances that would actually be correct for
    ``concept``.
    """
    own_members = world.members(concept)
    candidates = [
        other.name
        for other in world.iter_concepts()
        if world.exclusive(concept, other.name) and other.size > 0
    ]
    if not candidates:
        return None
    weights = np.array(
        [world.concept(name).popularity for name in candidates], dtype=float
    )
    weights /= weights.sum()
    for _ in range(8):
        source = candidates[int(rng.choice(len(candidates), p=weights))]
        pool = [m for m in popular_members(world, source) if m not in own_members]
        if pool:
            return pool[int(rng.integers(0, len(pool)))]
    return None


def apply_typo(instance: str, rng: np.random.Generator) -> str:
    """Corrupt one instance surface (delegates to the vocabulary typo model)."""
    return make_typo(instance, rng)
