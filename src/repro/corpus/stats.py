"""Descriptive statistics over a corpus.

Used by examples and by experiment write-ups to report what a generated
corpus actually contains (the reproduction's analogue of the paper's
"326,110,911 sentences extracted from 1,679,189,480 web pages").
"""

from __future__ import annotations

from dataclasses import dataclass

from .corpus import Corpus
from .sentence import SentenceKind

__all__ = ["CorpusStats", "corpus_stats"]


@dataclass(frozen=True)
class CorpusStats:
    """Aggregate statistics for one corpus."""

    sentences: int
    distinct_surfaces: int
    ambiguous: int
    unambiguous: int
    misparse: int
    pages: int
    instance_mentions: int
    distinct_instances: int
    distinct_concepts: int
    contaminated: int
    with_typos: int

    @property
    def ambiguity_rate(self) -> float:
        """Fraction of sentences with more than one candidate concept."""
        if self.sentences == 0:
            return 0.0
        return self.ambiguous / self.sentences

    @property
    def duplicate_rate(self) -> float:
        """Fraction of sentences whose surface repeats an earlier one."""
        if self.sentences == 0:
            return 0.0
        return 1.0 - self.distinct_surfaces / self.sentences

    @property
    def mentions_per_instance(self) -> float:
        """Average number of mentions per distinct instance surface."""
        if self.distinct_instances == 0:
            return 0.0
        return self.instance_mentions / self.distinct_instances


def corpus_stats(corpus: Corpus) -> CorpusStats:
    """Compute :class:`CorpusStats` for a corpus."""
    surfaces: set[str] = set()
    instances: set[str] = set()
    concepts: set[str] = set()
    pages: set[int] = set()
    ambiguous = misparse = mentions = contaminated = with_typos = 0
    for sentence in corpus:
        surfaces.add(sentence.surface)
        pages.add(sentence.page_id)
        mentions += len(sentence.instances)
        instances.update(sentence.instances)
        concepts.update(sentence.concepts)
        if sentence.is_ambiguous:
            ambiguous += 1
        truth = sentence.truth
        if truth is not None:
            if truth.kind is SentenceKind.MISPARSE:
                misparse += 1
            if truth.contaminants:
                contaminated += 1
            if truth.typos:
                with_typos += 1
    total = len(corpus)
    return CorpusStats(
        sentences=total,
        distinct_surfaces=len(surfaces),
        ambiguous=ambiguous,
        unambiguous=total - ambiguous,
        misparse=misparse,
        pages=len(pages),
        instance_mentions=mentions,
        distinct_instances=len(instances),
        distinct_concepts=len(concepts),
        contaminated=contaminated,
        with_typos=with_typos,
    )
