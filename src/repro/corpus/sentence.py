"""Sentence value objects.

A sentence carries two views:

* the **candidate structure** the extractor is allowed to see — candidate
  concepts ``concepts`` ordered *nearest to the Hearst cue first* (syntactic
  attachment preference) and candidate instances ``instances``;
* the **truth record** used only by evaluation — which concept the sentence
  really talks about and which instances were injected as noise.

The extraction engine must never read ``truth``; tests enforce this by
running extraction on truth-stripped copies.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, replace

__all__ = ["SentenceKind", "SentenceTruth", "Sentence"]


class SentenceKind(enum.Enum):
    """How a sentence was generated (ground-truth bookkeeping)."""

    UNAMBIGUOUS = "unambiguous"
    AMBIGUOUS = "ambiguous"
    MISPARSE = "misparse"


@dataclass(frozen=True)
class SentenceTruth:
    """Ground-truth generation record for one sentence.

    Parameters
    ----------
    concept:
        The concept the sentence truly talks about (``None`` for mis-parsed
        garbage whose candidate concept is itself wrong).
    kind:
        Generation mechanism.
    contaminants:
        Instances injected from a mutually exclusive concept (false facts).
    typos:
        Corrupted instance surfaces present in ``instances``.
    bridge:
        A polysemous instance deliberately included to enable drift, if any.
    """

    concept: str | None
    kind: SentenceKind
    contaminants: tuple[str, ...] = ()
    typos: tuple[str, ...] = ()
    bridge: str | None = None


@dataclass(frozen=True)
class Sentence:
    """One Hearst-pattern sentence.

    ``concepts`` lists candidate concepts nearest-attachment first: for
    ``food from animals such as pork …`` the candidates are
    ``("animal", "food")`` because *such as* attaches to the closest noun
    phrase.  ``instances`` is the candidate instance list ``Es``.
    """

    sid: int
    surface: str
    concepts: tuple[str, ...]
    instances: tuple[str, ...]
    page_id: int = 0
    truth: SentenceTruth | None = None

    def __post_init__(self) -> None:
        if not self.concepts:
            raise ValueError(f"sentence {self.sid} has no candidate concepts")
        if len(self.instances) < 1:
            raise ValueError(f"sentence {self.sid} has no candidate instances")
        if len(set(self.concepts)) != len(self.concepts):
            raise ValueError(f"sentence {self.sid} has duplicate candidates")

    @property
    def is_ambiguous(self) -> bool:
        """True when more than one candidate concept exists."""
        return len(self.concepts) > 1

    def without_truth(self) -> "Sentence":
        """A copy with the truth record removed (what extractors may see)."""
        return replace(self, truth=None)
