"""Deterministic random-number plumbing.

Every stochastic component of the library takes an explicit
:class:`numpy.random.Generator`.  Experiments own a single integer seed and
fan it out to *named substreams* so that adding randomness to one stage never
perturbs another stage:

>>> streams = RandomStreams(seed=7)
>>> corpus_rng = streams.stream("corpus")
>>> noise_rng = streams.stream("noise")

Streams with the same name are identical across runs; streams with different
names are statistically independent (derived via ``numpy`` ``SeedSequence``
entropy spawning keyed on the stream name).
"""

from __future__ import annotations

import zlib

import numpy as np

__all__ = ["RandomStreams", "generator_from", "DEFAULT_SEED"]

DEFAULT_SEED = 20140324  # EDBT 2014 opening day; arbitrary but memorable.


def _name_key(name: str) -> int:
    """Map a stream name to a stable 32-bit integer key."""
    return zlib.crc32(name.encode("utf-8"))


def generator_from(seed: int | np.random.Generator | None) -> np.random.Generator:
    """Coerce ``seed`` into a :class:`numpy.random.Generator`.

    Accepts ``None`` (uses :data:`DEFAULT_SEED`), an integer seed, or an
    existing generator (returned unchanged).
    """
    if seed is None:
        return np.random.default_rng(DEFAULT_SEED)
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


class RandomStreams:
    """Fan a single seed out into independent, named substreams."""

    def __init__(self, seed: int = DEFAULT_SEED) -> None:
        if not isinstance(seed, int):
            raise TypeError(f"seed must be an int, got {type(seed).__name__}")
        self._seed = seed

    @property
    def seed(self) -> int:
        """The root seed this fan-out was created from."""
        return self._seed

    def stream(self, name: str) -> np.random.Generator:
        """Return a fresh generator for the named substream.

        Calling :meth:`stream` twice with the same name returns two
        generators with identical state, which makes replaying a single
        stage of a pipeline possible without replaying the others.
        """
        sequence = np.random.SeedSequence(
            entropy=self._seed, spawn_key=(_name_key(name),)
        )
        return np.random.default_rng(sequence)

    def spawn(self, name: str) -> "RandomStreams":
        """Return a child fan-out rooted at the named substream."""
        child_seed = int(self.stream(name).integers(0, 2**31 - 1))
        return RandomStreams(child_seed)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RandomStreams(seed={self._seed})"
