"""Configuration dataclasses for every pipeline stage.

All knobs live here so that experiments are declarative: a
:class:`PipelineConfig` plus a seed fully determines the world, the corpus,
the extraction run, the detectors and the cleaning pass.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from collections.abc import Mapping

__all__ = [
    "ConceptProfile",
    "CorpusConfig",
    "ExtractionConfig",
    "SimilarityConfig",
    "LabelingConfig",
    "DetectorConfig",
    "CleaningConfig",
    "PipelineConfig",
]


@dataclass(frozen=True)
class ConceptProfile:
    """Per-concept corpus-generation behaviour.

    Parameters
    ----------
    sentence_share:
        Multiplier on the concept's popularity when allocating sentences.
    ambiguous_rate:
        Fraction of the concept's sentences that are ambiguous (two
        candidate concepts in the surface).
    drift_rate:
        Among ambiguous sentences generated about this concept's *sources*,
        the fraction targeted at this concept (drift fodder); the remainder
        of ambiguous sentences use a random benign modifier.
    bridge_rate:
        Fraction of drift-fodder sentences that explicitly include a
        polysemous bridge instance (the *chicken* mechanism).
    false_fact_rate:
        Probability that a sentence gets one instance swapped for a popular
        instance of a mutually exclusive concept (the *New York isA country*
        mechanism).
    typo_rate:
        Probability that a sentence gets one instance corrupted by a typo
        (non-drift noise).
    """

    sentence_share: float = 1.0
    ambiguous_rate: float = 0.35
    drift_rate: float = 0.55
    bridge_rate: float = 0.35
    false_fact_rate: float = 0.010
    typo_rate: float = 0.004

    def __post_init__(self) -> None:
        for name in ("ambiguous_rate", "drift_rate", "bridge_rate",
                     "false_fact_rate", "typo_rate"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {value}")
        if self.sentence_share < 0:
            raise ValueError("sentence_share must be >= 0")

    def scaled(self, **overrides: float) -> "ConceptProfile":
        """Return a copy with the given fields replaced."""
        return replace(self, **overrides)


@dataclass(frozen=True)
class CorpusConfig:
    """Synthetic Hearst-corpus generation parameters.

    ``tail_bias_rate`` is the probability that a sentence enumerates
    obscure instances (uniform over the least-popular ``tail_fraction`` of
    a concept's members) instead of following Zipfian popularity.  Tail
    sentences are what stretch extraction over many iterations: their
    instances are rarely in the iteration-1 core, so they resolve only
    after other sentences have introduced one of their instances.
    """

    num_sentences: int = 50_000
    min_instances_per_sentence: int = 2
    max_instances_per_sentence: int = 5
    default_profile: ConceptProfile = field(default_factory=ConceptProfile)
    profiles: Mapping[str, ConceptProfile] = field(default_factory=dict)
    misparse_rate: float = 0.003
    duplicate_rate: float = 0.08
    sentences_per_page: int = 4
    tail_bias_rate: float = 0.35
    tail_fraction: float = 0.7

    def __post_init__(self) -> None:
        if self.num_sentences <= 0:
            raise ValueError("num_sentences must be positive")
        if not 2 <= self.min_instances_per_sentence <= self.max_instances_per_sentence:
            raise ValueError("instance count bounds must satisfy 2 <= min <= max")
        if not 0.0 <= self.misparse_rate <= 1.0:
            raise ValueError("misparse_rate must be in [0, 1]")
        if not 0.0 <= self.duplicate_rate <= 1.0:
            raise ValueError("duplicate_rate must be in [0, 1]")
        if self.sentences_per_page <= 0:
            raise ValueError("sentences_per_page must be positive")
        if not 0.0 <= self.tail_bias_rate <= 1.0:
            raise ValueError("tail_bias_rate must be in [0, 1]")
        if not 0.0 < self.tail_fraction <= 1.0:
            raise ValueError("tail_fraction must be in (0, 1]")

    def profile_for(self, concept: str) -> ConceptProfile:
        """The effective profile for a concept (falls back to the default)."""
        return self.profiles.get(concept, self.default_profile)


@dataclass(frozen=True)
class ExtractionConfig:
    """Semantic iterative extraction parameters.

    ``delta_index`` selects the semi-naive, evidence-indexed resolution
    engine (the default).  ``False`` keeps the naive full scan — same
    results bit-for-bit, kept as the equivalence and benchmark reference.
    """

    max_iterations: int = 100
    min_evidence: int = 1
    policy: str = "nearest"  # "nearest" or "max_evidence"
    stream_chunks: int = 1
    delta_index: bool = True

    def __post_init__(self) -> None:
        if self.max_iterations < 1:
            raise ValueError("max_iterations must be >= 1")
        if self.min_evidence < 1:
            raise ValueError("min_evidence must be >= 1")
        if self.policy not in ("nearest", "max_evidence"):
            raise ValueError(f"unknown resolution policy: {self.policy!r}")
        if self.stream_chunks < 1:
            raise ValueError("stream_chunks must be >= 1")


@dataclass(frozen=True)
class SimilarityConfig:
    """Concept-similarity thresholds (§3.2.1, Fig. 4).

    The paper uses ``exclusive < 1e-4`` on cores of 10⁴–10⁶ instances; our
    synthetic cores are 10²–10³, where a single shared instance already
    yields ≈2e-3 cosine, so the library default scales the exclusive
    threshold up.  ``similar > 0.1`` transfers unchanged.
    """

    exclusive_threshold: float = 0.02
    similar_threshold: float = 0.1
    min_core_size: int = 3

    def __post_init__(self) -> None:
        if not 0.0 <= self.exclusive_threshold < self.similar_threshold <= 1.0:
            raise ValueError(
                "thresholds must satisfy 0 <= exclusive < similar <= 1"
            )
        if self.min_core_size < 1:
            raise ValueError("min_core_size must be >= 1")


@dataclass(frozen=True)
class LabelingConfig:
    """Seed-labelling parameters (§3.2).

    The paper settles on ``k = 4`` for its web-scale evidence counts; our
    synthetic corpora have flatter count distributions, and the Fig. 5b
    sweep lands on ``k = 2`` as the best yield at near-perfect precision.

    ``verified_fraction`` is the share of true extracted pairs assumed to
    come from a verified source (the paper's "verified sources (such as
    Wikipedia)"); the pipeline samples them from the ground-truth world.
    """

    evidence_threshold_k: int = 2
    verified_fraction: float = 0.04

    def __post_init__(self) -> None:
        if self.evidence_threshold_k < 0:
            raise ValueError("evidence_threshold_k must be >= 0")
        if not 0.0 <= self.verified_fraction <= 1.0:
            raise ValueError("verified_fraction must be in [0, 1]")


@dataclass(frozen=True)
class DetectorConfig:
    """DP-detector learning parameters (§3.3)."""

    kpca_components: int = 15
    kpca_kernel: str = "rbf"
    kpca_gamma: float | None = 2.0
    kpca_sample_size: int = 600
    k_neighbors: int = 5
    local_reg: float = 0.1
    lam: float = 0.1
    beta: float = 0.1
    gamma: float = 0.01
    training_iterations: int = 20
    tolerance: float = 1e-6
    class_balance: bool = True
    # Decision-threshold shift for the 3-way arg-max: DP seeds are scarce
    # relative to non-DPs even after loss balancing, so the F1-optimal
    # operating point handicaps the non-DP score slightly.  Cleaning
    # overrides this with the higher CleaningConfig.cleaning_non_dp_bias.
    non_dp_bias: float = 0.3

    def __post_init__(self) -> None:
        if self.kpca_components < 1:
            raise ValueError("kpca_components must be >= 1")
        if self.k_neighbors < 1:
            raise ValueError("k_neighbors must be >= 1")
        for name in ("local_reg", "lam", "beta", "gamma"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be >= 0")
        if self.training_iterations < 1:
            raise ValueError("training_iterations must be >= 1")


@dataclass(frozen=True)
class CleaningConfig:
    """DP-based cleaning parameters (§4).

    ``accidental_max_count`` is a Property-3 guard: an Accidental DP is by
    definition supported by very weak evidence (usually one sentence), so
    a detector vote of "accidental" against a well-evidenced pair is
    treated as a false positive and ignored rather than rolled back.

    ``cleaning_non_dp_bias`` puts the detector on a high-recall operating
    point *during cleaning only*: the cleaner's definition-level guards and
    Eq. 21 arbitration absorb false DP flags cheaply, while every missed DP
    leaves its whole error cascade in place.
    """

    max_cleaning_rounds: int = 10
    accidental_max_count: int = 3
    cleaning_non_dp_bias: float = 1.0

    def __post_init__(self) -> None:
        if self.max_cleaning_rounds < 1:
            raise ValueError("max_cleaning_rounds must be >= 1")
        if self.accidental_max_count < 1:
            raise ValueError("accidental_max_count must be >= 1")
        if self.cleaning_non_dp_bias < 0:
            raise ValueError("cleaning_non_dp_bias must be >= 0")


@dataclass(frozen=True)
class PipelineConfig:
    """Everything needed to run the full pipeline deterministically."""

    seed: int = 20140324
    corpus: CorpusConfig = field(default_factory=CorpusConfig)
    extraction: ExtractionConfig = field(default_factory=ExtractionConfig)
    similarity: SimilarityConfig = field(default_factory=SimilarityConfig)
    labeling: LabelingConfig = field(default_factory=LabelingConfig)
    detector: DetectorConfig = field(default_factory=DetectorConfig)
    cleaning: CleaningConfig = field(default_factory=CleaningConfig)
