"""Fig. 2 — sub-instance distributions of DPs vs. non-DPs.

The paper plots, for hand-picked triggers under *Animal* (CHICKEN, MONKEY,
CAT, SNAKE, DOG) plus the class average, the frequency distribution of the
instances each trigger pulls in.  We reproduce the figure's data for a
configurable concept: the most active ground-truth Intentional DP and the
most active non-DPs, each as a normalised distribution over a shared axis
of the concept's most frequent sub-instances and the most frequent drift
errors.
"""

from __future__ import annotations

from ..evaluation.report import format_table
from ..features.distribution import normalize_counts
from ..labeling.labels import DPLabel
from .base import ExperimentResult, default_pipeline
from .pipeline import Pipeline

__all__ = ["run_figure2"]


def run_figure2(
    pipeline: Pipeline | None = None,
    concept: str = "animal",
    num_triggers: int = 4,
    axis_size: int = 14,
) -> ExperimentResult:
    """Regenerate the data behind Fig. 2."""
    pipeline = default_pipeline(pipeline)
    artifacts = pipeline.analyze(fit_detector=False)
    kb = artifacts.kb
    truth = artifacts.truth

    def activity(instance: str) -> int:
        return sum(kb.sub_instance_counts(concept, instance).values())

    instances = sorted(kb.instances_of(concept), key=activity, reverse=True)
    non_dps = [
        e for e in instances
        if truth.dp_label(concept, e) is DPLabel.NON_DP and activity(e) > 0
    ][:num_triggers]
    dps = [
        e for e in instances
        if truth.dp_label(concept, e) is DPLabel.INTENTIONAL
    ][:max(1, num_triggers // 2)]

    # Shared x-axis: the concept's most frequent correct instances plus the
    # most frequent drift errors (the paper's horse … pork/milk/meat axis).
    frequency = kb.frequency_distribution(concept)
    correct_axis = [
        e for e, _ in sorted(frequency.items(), key=lambda kv: -kv[1])
        if truth.is_correct(concept, e)
    ][: axis_size // 2]
    error_axis = [
        e for e, _ in sorted(frequency.items(), key=lambda kv: -kv[1])
        if truth.is_drifting_error(concept, e)
    ][: axis_size - len(correct_axis)]
    axis = correct_axis + error_axis

    series: dict[str, dict[str, float]] = {}
    for trigger in non_dps + dps:
        subs = normalize_counts(kb.sub_instance_counts(concept, trigger))
        series[trigger] = {e: round(subs.get(e, 0.0), 4) for e in axis}
    average = normalize_counts(
        {e: float(frequency.get(e, 0)) for e in axis}
    )
    series["AVG"] = {e: round(average.get(e, 0.0), 4) for e in axis}

    headers = ("trigger",) + tuple(axis)
    rows = [
        (name,) + tuple(values[e] for e in axis)
        for name, values in series.items()
    ]
    return ExperimentResult(
        name="figure2",
        title=f"Fig. 2: sub-instance distributions under {concept!r} "
              "(non-DP triggers resemble AVG; the DP leaks error mass)",
        text=format_table(headers, rows),
        data={
            "concept": concept,
            "axis": axis,
            "non_dps": non_dps,
            "intentional_dps": dps,
            "series": series,
        },
    )
