"""Table 4 — DP-detection method comparison (§5.4).

Seven detectors over the same features and automatically labelled seeds:
the four single-property ad-hoc thresholds, the supervised random forest,
the semi-supervised single-concept detector, and the full semi-supervised
multi-task detector.  Expected shape: ad-hoc < supervised <
semi-supervised < multi-task on F1.
"""

from __future__ import annotations

from ..evaluation.metrics import detection_metrics
from ..evaluation.report import format_table
from ..learning.detector import DPDetector
from .base import ExperimentResult, default_pipeline
from .pipeline import Pipeline

__all__ = ["run_table4", "METHOD_LABELS"]

METHOD_LABELS = (
    ("adhoc1", "Ad-hoc 1"),
    ("adhoc2", "Ad-hoc 2"),
    ("adhoc3", "Ad-hoc 3"),
    ("adhoc4", "Ad-hoc 4"),
    ("supervised", "Supervised"),
    ("semisupervised", "Semi-Supervised"),
    ("multitask", "Semi-Supervised Multi-Task"),
)

_HEADERS = ("Detection Method", "Precision", "Recall", "F1")


def run_table4(pipeline: Pipeline | None = None) -> ExperimentResult:
    """Regenerate Table 4."""
    pipeline = default_pipeline(pipeline)
    artifacts = pipeline.analyze(fit_detector=False)
    targets = list(artifacts.target_concepts)
    rows = []
    data: dict[str, dict[str, float]] = {}
    for method, label in METHOD_LABELS:
        detector = DPDetector(
            pipeline.config.detector, method=method, seed=pipeline.config.seed
        )
        detector.fit(artifacts.matrices, artifacts.seeds)
        metrics = detection_metrics(
            artifacts.truth, detector.predict_all(), targets
        )
        rows.append((
            label,
            round(metrics.precision, 3), round(metrics.recall, 3),
            round(metrics.f1, 3),
        ))
        data[label] = {
            "precision": metrics.precision,
            "recall": metrics.recall,
            "f1": metrics.f1,
            "accuracy": metrics.accuracy,
        }
    return ExperimentResult(
        name="table4",
        title="Table 4: effectiveness of DP detection methods",
        text=format_table(_HEADERS, rows),
        data=data,
    )
