"""Experiment registry: name → runner."""

from __future__ import annotations

from collections.abc import Callable

from ..errors import ExperimentError
from .ablations import (
    run_ablation_features,
    run_ablation_policy,
    run_ablation_rollback,
)
from .base import ExperimentResult
from .figure2 import run_figure2
from .figure3 import run_figure3
from .figure4 import run_figure4
from .figure5 import run_figure5a, run_figure5b, run_figure5c
from .pipeline import Pipeline
from .table1 import run_table1
from .table2 import run_table2
from .table3 import run_table3
from .table4 import run_table4
from .table5 import run_table5
from .threshold_sweep import run_threshold_sweep

__all__ = ["EXPERIMENTS", "run_experiment", "experiment_names"]

EXPERIMENTS: dict[str, Callable[..., ExperimentResult]] = {
    "table1": run_table1,
    "table2": run_table2,
    "table3": run_table3,
    "table4": run_table4,
    "table5": run_table5,
    "figure2": run_figure2,
    "figure3": run_figure3,
    "figure4": run_figure4,
    "figure5a": run_figure5a,
    "figure5b": run_figure5b,
    "figure5c": run_figure5c,
    "ablation_features": run_ablation_features,
    "ablation_rollback": run_ablation_rollback,
    "ablation_policy": run_ablation_policy,
    "threshold_sweep": run_threshold_sweep,
}


def experiment_names() -> list[str]:
    """All registered experiment names, in paper order."""
    return list(EXPERIMENTS)


def run_experiment(
    name: str, pipeline: Pipeline | None = None, **kwargs
) -> ExperimentResult:
    """Run one experiment by name."""
    try:
        runner = EXPERIMENTS[name]
    except KeyError:
        known = ", ".join(EXPERIMENTS)
        raise ExperimentError(
            f"unknown experiment {name!r} (known: {known})"
        ) from None
    return runner(pipeline=pipeline, **kwargs)
