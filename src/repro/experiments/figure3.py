"""Fig. 3 — distributions of the four feature values per DP class.

The paper plots f1–f4 for manually labelled Intentional DPs, Accidental
DPs and non-DPs under *Animal*.  We compute summary statistics (mean and
quartiles) of each feature per ground-truth class over the target concepts
(or one chosen concept).
"""

from __future__ import annotations

import numpy as np

from ..evaluation.report import format_table
from ..features import FEATURE_NAMES
from ..labeling.labels import DPLabel
from .base import ExperimentResult, default_pipeline
from .pipeline import Pipeline

__all__ = ["run_figure3"]

_CLASSES = (
    (DPLabel.NON_DP, "Non-DPs"),
    (DPLabel.INTENTIONAL, "Intentional DPs"),
    (DPLabel.ACCIDENTAL, "Accidental DPs"),
)


def run_figure3(
    pipeline: Pipeline | None = None,
    concept: str | None = None,
) -> ExperimentResult:
    """Regenerate the data behind Fig. 3(a)–(d)."""
    pipeline = default_pipeline(pipeline)
    artifacts = pipeline.analyze(fit_detector=False)
    concepts = (
        [concept] if concept is not None else list(artifacts.target_concepts)
    )
    values: dict[DPLabel, list[np.ndarray]] = {label: [] for label, _ in _CLASSES}
    for name in concepts:
        matrix = artifacts.matrices.get(name)
        if matrix is None:
            continue
        for row, instance in enumerate(matrix.instances):
            label = artifacts.truth.dp_label(name, instance)
            if label is not None:
                values[label].append(matrix.x[row])
    rows = []
    data: dict[str, dict[str, dict[str, float]]] = {}
    for label, display in _CLASSES:
        stacked = (
            np.vstack(values[label]) if values[label] else np.zeros((0, 4))
        )
        data[display] = {}
        for i, feature in enumerate(FEATURE_NAMES):
            column = stacked[:, i] if stacked.size else np.zeros(1)
            stats = {
                "mean": float(column.mean()),
                "q25": float(np.quantile(column, 0.25)),
                "median": float(np.quantile(column, 0.5)),
                "q75": float(np.quantile(column, 0.75)),
            }
            data[display][feature] = stats
            rows.append((
                display, feature, len(values[label]),
                round(stats["mean"], 5), round(stats["q25"], 5),
                round(stats["median"], 5), round(stats["q75"], 5),
            ))
    headers = ("class", "feature", "n", "mean", "q25", "median", "q75")
    return ExperimentResult(
        name="figure3",
        title="Fig. 3: feature-value distributions per DP class",
        text=format_table(headers, rows),
        data=data,
    )
