"""Fig. 5 — the three diagnostic curves of §5.

* **5(a)** — number of distinct isA pairs and their precision per
  extraction iteration (pairs grow several-fold while precision collapses);
* **5(b)** — precision and recall of the automatically labelled seeds as
  the evidence threshold ``k`` sweeps 0…8 (precision rises, yield falls);
* **5(c)** — detector accuracy over the multi-task training iterations
  (rises, then stabilises).
"""

from __future__ import annotations

from dataclasses import replace

from ..config import LabelingConfig
from ..evaluation.metrics import detection_metrics
from ..evaluation.report import format_table
from ..labeling.evidence import EvidenceIndex
from ..labeling.labels import DPLabel
from ..labeling.rules import SeedLabeler
from ..learning.detector import DPDetector
from .base import ExperimentResult, default_pipeline
from .pipeline import Pipeline

__all__ = ["run_figure5a", "run_figure5b", "run_figure5c"]


def run_figure5a(pipeline: Pipeline | None = None) -> ExperimentResult:
    """Pairs and precision per extraction iteration."""
    pipeline = default_pipeline(pipeline)
    artifacts = pipeline.analyze(fit_detector=False)
    kb = artifacts.kb
    truth = artifacts.truth
    targets = set(artifacts.target_concepts)
    pair_rows = [
        (pair, kb.first_iteration(pair))
        for pair in kb.pairs()
        if pair.concept in targets
    ]
    rows = []
    series = []
    for entry in artifacts.extraction.log:
        good = bad = 0
        for pair, first in pair_rows:
            if first <= entry.iteration:
                if truth.is_correct(pair.concept, pair.instance):
                    good += 1
                else:
                    bad += 1
        precision = good / (good + bad) if good + bad else 0.0
        rows.append((
            entry.iteration, entry.total_pairs, round(precision, 4)
        ))
        series.append({
            "iteration": entry.iteration,
            "distinct_pairs": entry.total_pairs,
            "precision": precision,
        })
    return ExperimentResult(
        name="figure5a",
        title="Fig. 5(a): # of distinct isA pairs and precision per iteration",
        text=format_table(("iteration", "# distinct pairs", "precision"), rows),
        data={"series": series},
    )


def run_figure5b(
    pipeline: Pipeline | None = None,
    k_values: tuple[int, ...] = (0, 1, 2, 3, 4, 5, 6, 7, 8),
) -> ExperimentResult:
    """Seed-label precision and yield as the evidence threshold sweeps."""
    pipeline = default_pipeline(pipeline)
    artifacts = pipeline.analyze(fit_detector=False)
    kb = artifacts.kb
    truth = artifacts.truth
    concepts = pipeline.analysis_concepts(kb)
    total_instances = sum(len(kb.instances_of(c)) for c in concepts)
    rows = []
    series = []
    for k in k_values:
        evidence = EvidenceIndex(
            kb,
            artifacts.exclusion,
            LabelingConfig(
                evidence_threshold_k=k,
                verified_fraction=pipeline.config.labeling.verified_fraction,
            ),
            verified=artifacts.verified,
        )
        seeds = SeedLabeler(kb, artifacts.exclusion, evidence).label_all(
            concepts
        )
        good = 0
        for seed in seeds.all_labels():
            if seed.label is DPLabel.ACCIDENTAL:
                good += truth.is_error(seed.concept, seed.instance)
            elif seed.label is DPLabel.INTENTIONAL:
                good += (
                    truth.dp_label(seed.concept, seed.instance)
                    is DPLabel.INTENTIONAL
                )
            else:
                good += truth.is_correct(seed.concept, seed.instance)
        precision = good / len(seeds) if len(seeds) else 0.0
        recall = len(seeds) / total_instances if total_instances else 0.0
        rows.append((k, round(precision, 4), round(recall, 4), len(seeds)))
        series.append({
            "k": k, "precision": precision, "recall": recall,
            "seeds": len(seeds),
        })
    return ExperimentResult(
        name="figure5b",
        title="Fig. 5(b): precision and recall of the labelled seeds vs. k",
        text=format_table(("k", "precision", "recall", "#seeds"), rows),
        data={"series": series},
    )


def run_figure5c(
    pipeline: Pipeline | None = None,
    iterations: int = 20,
) -> ExperimentResult:
    """Detector accuracy per multi-task training iteration."""
    pipeline = default_pipeline(pipeline)
    artifacts = pipeline.analyze(fit_detector=False)
    targets = list(artifacts.target_concepts)
    config = replace(
        pipeline.config.detector,
        training_iterations=iterations,
        tolerance=0.0,  # force the full trace
    )
    detector = DPDetector(config, method="multitask", seed=pipeline.config.seed)

    def eval_fn(partial: DPDetector) -> float:
        metrics = detection_metrics(
            artifacts.truth, partial.predict_all(), targets
        )
        return metrics.accuracy

    detector.fit(artifacts.matrices, artifacts.seeds, eval_fn=eval_fn)
    rows = [
        (i + 1, round(accuracy, 4))
        for i, accuracy in enumerate(detector.accuracy_history)
    ]
    return ExperimentResult(
        name="figure5c",
        title="Fig. 5(c): detector accuracy over training iterations",
        text=format_table(("training iteration", "accuracy"), rows),
        data={
            "accuracy": detector.accuracy_history,
            "objective": detector.objective_history,
        },
    )
