"""Table 1 — statistics of the labelled instances under the 20 concepts.

The paper reports manual labels over a sample; our ground truth is exact,
so the table covers every extracted instance of each target concept:
instance/correct/error counts, error rate, and the DP breakdown.
"""

from __future__ import annotations

from ..evaluation.report import format_table
from .base import ExperimentResult, default_pipeline
from .pipeline import Pipeline

__all__ = ["run_table1"]

_HEADERS = (
    "concept", "#Instances", "#Correct", "#Error", "Error %",
    "#Intent. DPs", "#Accid. DPs", "#Non-DPs",
)


def run_table1(pipeline: Pipeline | None = None) -> ExperimentResult:
    """Regenerate Table 1 from the pipeline's ground truth."""
    pipeline = default_pipeline(pipeline)
    artifacts = pipeline.analyze(fit_detector=False)
    rows = []
    totals = [0, 0, 0, 0.0, 0, 0, 0]
    for concept in artifacts.target_concepts:
        truth = artifacts.truth.concept_truth(concept)
        rows.append((
            concept, truth.instances, truth.correct, truth.errors,
            round(truth.error_rate, 4), truth.intentional_dps,
            truth.accidental_dps, truth.non_dps,
        ))
        totals[0] += truth.instances
        totals[1] += truth.correct
        totals[2] += truth.errors
        totals[4] += truth.intentional_dps
        totals[5] += truth.accidental_dps
        totals[6] += truth.non_dps
    overall_rate = totals[2] / totals[0] if totals[0] else 0.0
    rows.append((
        "Overall", totals[0], totals[1], totals[2], round(overall_rate, 4),
        totals[4], totals[5], totals[6],
    ))
    text = format_table(_HEADERS, rows)
    data = {
        "concepts": {
            str(row[0]): {
                "instances": row[1], "correct": row[2], "errors": row[3],
                "error_rate": row[4], "intentional_dps": row[5],
                "accidental_dps": row[6], "non_dps": row[7],
            }
            for row in rows
        }
    }
    return ExperimentResult(
        name="table1",
        title="Table 1: ground-truth statistics under the 20 target concepts",
        text=text,
        data=data,
    )
