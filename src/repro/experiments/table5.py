"""Table 5 — per-concept DP-cleaning evaluation (§5.5).

For each of the 20 target concepts: the precision/recall of the Eq. 21
sentence checks on Intentional-DP-triggered extractions (``p_stc`` /
``r_stc``), and the four cleaning dimensions after the full DP-based
cleaning, plus the overall row.
"""

from __future__ import annotations

from ..cleaning import DPCleaner
from ..evaluation.metrics import cleaning_metrics, sentence_check_metrics
from ..evaluation.report import format_table
from .base import ExperimentResult, default_pipeline
from .pipeline import Pipeline
from .table3 import run_cleaner

__all__ = ["run_table5"]

_HEADERS = (
    "concept", "p_stc", "r_stc", "p_error", "r_error", "p_corr", "r_corr",
)


def run_table5(pipeline: Pipeline | None = None) -> ExperimentResult:
    """Regenerate Table 5."""
    pipeline = default_pipeline(pipeline)
    targets = list(pipeline.preset.target_concepts)
    cleaner = DPCleaner(pipeline.detect_fn(), pipeline.config.cleaning)
    overall, result, truth, extraction = run_cleaner(
        pipeline, cleaner, targets
    )
    checks = [
        check
        for stats in result.details["rounds"]
        for check in stats.sentence_checks
    ]
    # Per-concept before/after needs the pre-cleaning snapshot, which the
    # run consumed; re-extract (deterministic) for the "before" view.
    before_kb = pipeline.extract().kb
    before = {c: before_kb.instances_of(c) for c in before_kb.concepts()}
    after = {c: extraction.kb.instances_of(c) for c in before}
    rows = []
    data: dict[str, dict[str, float]] = {}
    for concept in targets:
        p_stc, r_stc = sentence_check_metrics(
            extraction.corpus, checks, [concept]
        )
        metrics = cleaning_metrics(truth, before, after, [concept])
        rows.append((
            concept, round(p_stc, 3), round(r_stc, 3),
            round(metrics.p_error, 3), round(metrics.r_error, 3),
            round(metrics.p_corr, 3), round(metrics.r_corr, 3),
        ))
        data[concept] = {
            "p_stc": p_stc, "r_stc": r_stc,
            "p_error": metrics.p_error, "r_error": metrics.r_error,
            "p_corr": metrics.p_corr, "r_corr": metrics.r_corr,
        }
    p_stc_all, r_stc_all = sentence_check_metrics(
        extraction.corpus, checks, targets
    )
    rows.append((
        "Overall", round(p_stc_all, 3), round(r_stc_all, 3),
        round(overall.p_error, 3), round(overall.r_error, 3),
        round(overall.p_corr, 3), round(overall.r_corr, 3),
    ))
    data["Overall"] = {
        "p_stc": p_stc_all, "r_stc": r_stc_all,
        "p_error": overall.p_error, "r_error": overall.r_error,
        "p_corr": overall.p_corr, "r_corr": overall.r_corr,
    }
    return ExperimentResult(
        name="table5",
        title="Table 5: DP cleaning evaluated per concept",
        text=format_table(_HEADERS, rows),
        data=data,
    )
