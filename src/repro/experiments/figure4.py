"""Fig. 4 — distribution of core-set cosine similarity between concepts.

The histogram that motivates the §3.2.1 thresholds: a large spike of
(effectively) zero-similarity pairs — mutually exclusive — a band of
low-similarity *irrelevant* pairs, and a small highly-similar band
(aliases such as country/nation).
"""

from __future__ import annotations

from ..evaluation.report import format_table
from .base import ExperimentResult, default_pipeline
from .pipeline import Pipeline

__all__ = ["run_figure4"]

_BIN_EDGES = (1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1.01)


def run_figure4(pipeline: Pipeline | None = None) -> ExperimentResult:
    """Regenerate the data behind Fig. 4."""
    pipeline = default_pipeline(pipeline)
    artifacts = pipeline.analyze(fit_detector=False)
    similarity = artifacts.exclusion.similarity
    counts, zero_pairs = similarity.similarity_histogram(list(_BIN_EDGES))
    config = artifacts.config.similarity
    exclusive = zero_pairs
    similar = 0
    irrelevant = 0
    for _, _, value in similarity.overlapping_pairs():
        if value < config.exclusive_threshold:
            exclusive += 1
        elif value > config.similar_threshold:
            similar += 1
        else:
            irrelevant += 1
    rows = [("= 0 (disjoint cores)", zero_pairs)]
    for i in range(len(_BIN_EDGES) - 1):
        rows.append((
            f"[{_BIN_EDGES[i]:g}, {_BIN_EDGES[i + 1]:g})", counts[i]
        ))
    rows.append(("-- mutually exclusive band --", exclusive))
    rows.append(("-- irrelevant band --", irrelevant))
    rows.append(("-- highly similar band --", similar))
    return ExperimentResult(
        name="figure4",
        title="Fig. 4: cosine-similarity distribution over concept pairs",
        text=format_table(("cosine similarity", "# of concept pairs"), rows),
        data={
            "bin_edges": list(_BIN_EDGES),
            "counts": counts,
            "zero_pairs": zero_pairs,
            "bands": {
                "exclusive": exclusive,
                "irrelevant": irrelevant,
                "similar": similar,
            },
            "thresholds": {
                "exclusive": config.exclusive_threshold,
                "similar": config.similar_threshold,
            },
        },
    )
