"""Experiment runners: one per table and figure of the paper."""

from .base import ExperimentResult
from .pipeline import Pipeline, PipelineArtifacts, experiment_config
from .registry import EXPERIMENTS, experiment_names, run_experiment

__all__ = [
    "EXPERIMENTS",
    "ExperimentResult",
    "Pipeline",
    "PipelineArtifacts",
    "experiment_config",
    "experiment_names",
    "run_experiment",
]
