"""Table 2 — precision of the top-k instances per ranking model (§5.2).

Reproduces the Frequency / PageRank / Random-Walk comparison at the
paper's cut-offs.  The expected shape: Random Walk ≥ PageRank ≥ Frequency
at every k.
"""

from __future__ import annotations

from ..evaluation.metrics import precision_at_k
from ..evaluation.report import format_table
from ..ranking import FrequencyRanker, PageRankRanker, RandomWalkRanker
from .base import ExperimentResult, default_pipeline
from .pipeline import Pipeline

__all__ = ["run_table2"]

_DEFAULT_KS = (100, 1000, 2000)


def run_table2(
    pipeline: Pipeline | None = None,
    ks: tuple[int, ...] = _DEFAULT_KS,
) -> ExperimentResult:
    """Regenerate Table 2 over the target concepts."""
    pipeline = default_pipeline(pipeline)
    artifacts = pipeline.analyze(fit_detector=False)
    targets = list(artifacts.target_concepts)
    rankers = [
        ("Frequency", FrequencyRanker()),
        ("PageRank", PageRankRanker()),
        ("Random Walk", RandomWalkRanker()),
    ]
    rows = []
    data: dict[str, dict[str, float]] = {}
    for label, ranker in rankers:
        scores = ranker.score_all(artifacts.kb, targets)
        row: list[object] = [label]
        data[label] = {}
        for k in ks:
            value = precision_at_k(artifacts.truth, scores, k, targets)
            row.append(round(value, 4))
            data[label][f"p@{k}"] = value
        rows.append(tuple(row))
    headers = ("Ranking Model",) + tuple(f"p@{k}" for k in ks)
    return ExperimentResult(
        name="table2",
        title="Table 2: precision of top-k instances per ranking model",
        text=format_table(headers, rows),
        data=data,
    )
