"""End-to-end pipeline: world → corpus → extraction → indexes → detector.

Every experiment runner consumes :class:`PipelineArtifacts` built here, so
the whole evaluation is reproducible from a single
:class:`~repro.config.PipelineConfig` plus a world preset.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from collections.abc import Mapping

from ..analysis.cache import AnalysisCache
from ..concepts.exclusion import MutualExclusionIndex
from ..config import ConceptProfile, CorpusConfig, ExtractionConfig, PipelineConfig
from ..corpus.corpus import Corpus
from ..corpus.generator import CorpusGenerator
from ..evaluation.ground_truth import GroundTruth
from ..extraction.engine import ExtractionResult, SemanticIterativeExtractor
from ..features.extractor import FeatureExtractor
from ..features.matrix import ConceptMatrix, build_concept_matrix
from ..kb.pair import IsAPair
from ..kb.store import KnowledgeBase
from ..labeling.evidence import EvidenceIndex
from ..labeling.labels import DPLabel
from ..labeling.rules import SeedLabeler, SeedLabelSet
from ..learning.detector import DPDetector
from ..nlp.ner import SimulatedNER
from ..ranking.random_walk import RandomWalkRanker
from ..rng import RandomStreams
from ..runtime.context import RunContext
from ..service.policy import IngestPolicy
from ..service.session import IngestSession
from ..world.presets import WorldPreset, paper_world

__all__ = ["PipelineArtifacts", "Pipeline", "experiment_config"]


def experiment_config(
    num_sentences: int = 24_000,
    seed: int = 20140324,
    profiles: Mapping[str, ConceptProfile] | None = None,
) -> PipelineConfig:
    """The configuration the paper-scale experiments run with."""
    return PipelineConfig(
        seed=seed,
        corpus=CorpusConfig(
            num_sentences=num_sentences,
            profiles=dict(profiles or {}),
            default_profile=ConceptProfile(ambiguous_rate=0.65),
            tail_bias_rate=0.55,
        ),
        extraction=ExtractionConfig(stream_chunks=9),
    )


@dataclass
class PipelineArtifacts:
    """Everything a pipeline run produced, ready for the experiments."""

    preset: WorldPreset
    config: PipelineConfig
    corpus: Corpus
    extraction: ExtractionResult
    exclusion: MutualExclusionIndex
    scores: dict[str, dict[str, float]]
    features: FeatureExtractor
    matrices: dict[str, ConceptMatrix]
    verified: frozenset[IsAPair]
    evidence: EvidenceIndex
    seeds: SeedLabelSet
    truth: GroundTruth
    detector: DPDetector | None = None
    _ner: SimulatedNER | None = field(default=None, repr=False)

    @property
    def kb(self) -> KnowledgeBase:
        """The (mutable) post-extraction knowledge base."""
        return self.extraction.kb

    @property
    def world(self):
        """The generative ground-truth world."""
        return self.preset.world

    @property
    def target_concepts(self) -> tuple[str, ...]:
        """The evaluation concepts (Table 1's 20 in the paper preset)."""
        return self.preset.target_concepts

    def concept_instances(self) -> dict[str, frozenset[str]]:
        """Snapshot of per-concept alive instances (for before/after)."""
        return {
            concept: self.kb.instances_of(concept)
            for concept in self.kb.concepts()
        }

    def ner(self, accuracy: float = 0.9) -> SimulatedNER:
        """The simulated NER over this world's gazetteer (cached)."""
        if self._ner is None or self._ner.accuracy != accuracy:
            self._ner = SimulatedNER(
                self.world.gazetteer(), accuracy=accuracy,
                seed=self.config.seed,
            )
        return self._ner

    def diagnose(self, concept: str, instance: str) -> dict:
        """Everything the pipeline knows about one (concept, instance).

        A debugging/analysis view used by examples and notebooks: ground
        truth, evidence, features, provenance and (when a detector is
        fitted) the predicted DP class.
        """
        kb = self.kb
        pair = IsAPair(concept, instance)
        report: dict = {
            "concept": concept,
            "instance": instance,
            "in_kb": pair in kb,
            "truth": {
                "correct": self.truth.is_correct(concept, instance),
                "drifting_error": self.truth.is_drifting_error(
                    concept, instance
                ),
                "typo_error": self.truth.is_typo_error(concept, instance),
                "dp_label": getattr(
                    self.truth.dp_label(concept, instance), "value", None
                ),
            },
        }
        if pair in kb:
            report["evidence"] = {
                "count": kb.count(pair),
                "core_count": kb.core_count(pair),
                "first_iteration": kb.first_iteration(pair),
            }
            report["sub_instances"] = kb.sub_instance_counts(concept, instance)
            report["features"] = self.features.extract(
                concept, instance
            ).as_tuple()
            report["random_walk_score"] = self.scores.get(concept, {}).get(
                instance, 0.0
            )
            report["also_under"] = sorted(
                kb.concepts_with_instance(instance) - {concept}
            )
        seed = next(
            (
                s.label.value
                for s in self.seeds.labels_for(concept)
                if s.instance == instance
            ),
            None,
        )
        report["seed_label"] = seed
        if self.detector is not None:
            report["detected"] = getattr(
                self.detector.predict_concept(concept).get(instance),
                "value",
                None,
            )
        return report


class Pipeline:
    """Builds :class:`PipelineArtifacts` deterministically."""

    def __init__(
        self,
        preset: WorldPreset | None = None,
        config: PipelineConfig | None = None,
        scale: float = 4.0,
    ) -> None:
        self._preset = preset or paper_world(scale=scale)
        if config is None:
            config = experiment_config(profiles=self._preset.profiles)
        elif not config.corpus.profiles and self._preset.profiles:
            config = replace(
                config,
                corpus=replace(
                    config.corpus, profiles=dict(self._preset.profiles)
                ),
            )
        self._config = config
        self._streams = RandomStreams(config.seed)
        self._corpus: Corpus | None = None
        # One context for every stage: the event bus and (optional) tracer
        # observe the run, and the shared-resource registry carries the
        # canonical per-KB exclusion index between the detection callback
        # and the cleaner.
        self._ctx = RunContext(config, self._streams)
        # One ranker for every stage: its mutation-versioned score cache
        # makes repeated score_all calls (analysis, per-round detection
        # refits during cleaning) re-rank only concepts the KB mutated.
        self._ranker = RandomWalkRanker(context=self._ctx)
        # One analysis cache for every detection callback this pipeline
        # hands out: per-concept matrices, seeds, verified samples and
        # detector transforms survive across cleaning rounds and are
        # invalidated by KB/relation version signatures (see
        # repro.analysis.cache).
        self._analysis = AnalysisCache(
            similarity=self._config.similarity, context=self._ctx
        )

    @property
    def preset(self) -> WorldPreset:
        """The world preset in use."""
        return self._preset

    @property
    def config(self) -> PipelineConfig:
        """The pipeline configuration in use."""
        return self._config

    @property
    def analysis(self) -> AnalysisCache:
        """The shared analysis cache behind every detection callback."""
        return self._analysis

    @property
    def context(self) -> RunContext:
        """The run context threaded through every stage."""
        return self._ctx

    # ------------------------------------------------------------------
    # Stages
    # ------------------------------------------------------------------
    def corpus(self) -> Corpus:
        """Generate (and cache) the corpus."""
        if self._corpus is None:
            with self._ctx.span("corpus.generate") as span:
                generator = CorpusGenerator(
                    self._preset.world,
                    self._config.corpus,
                    self._streams.stream("corpus"),
                )
                self._corpus = generator.generate()
                span.add("sentences", len(self._corpus.sentences))
        return self._corpus

    def extract(self) -> ExtractionResult:
        """Run a fresh extraction over the (cached) corpus.

        Extraction is deterministic, so calling this repeatedly yields
        identical, *independent* knowledge bases — one per cleaner.
        """
        extractor = SemanticIterativeExtractor(
            self._config.extraction, context=self._ctx
        )
        return extractor.run(self.corpus())

    def analyze(
        self,
        extraction: ExtractionResult | None = None,
        fit_detector: bool = True,
        detector_method: str = "multitask",
    ) -> PipelineArtifacts:
        """Build all downstream indexes over one extraction."""
        extraction = extraction or self.extract()
        kb = extraction.kb
        world = self._preset.world
        with self._ctx.span("analysis.build") as span:
            exclusion = MutualExclusionIndex(kb, self._config.similarity)
            self._ctx.resources.put("exclusion", kb, exclusion)
            concepts = self.analysis_concepts(kb)
            span.set(concepts=len(concepts))
            scores = self._ranker.score_all(kb, concepts)
            features = FeatureExtractor(kb, exclusion, scores)
            matrices = {
                concept: build_concept_matrix(features, concept)
                for concept in concepts
            }
            verified = self._verified_sample(kb)
            evidence = EvidenceIndex(
                kb, exclusion, self._config.labeling, verified=verified
            )
            seeds = SeedLabeler(kb, exclusion, evidence).label_all(concepts)
        truth = GroundTruth(world, kb)
        detector = None
        if fit_detector:
            detector = DPDetector(
                self._config.detector,
                method=detector_method,
                seed=self._streams.stream("detector"),
                context=self._ctx,
            )
            detector.fit(matrices, seeds)
        return PipelineArtifacts(
            preset=self._preset,
            config=self._config,
            corpus=extraction.corpus,
            extraction=extraction,
            exclusion=exclusion,
            scores=scores,
            features=features,
            matrices=matrices,
            verified=verified,
            evidence=evidence,
            seeds=seeds,
            truth=truth,
            detector=detector,
        )

    def run(self, trace: str | None = None) -> PipelineArtifacts:
        """Corpus → extraction → full analysis with a fitted detector.

        ``trace`` names a JSONL file to export the span tree to; passing
        it turns tracing on for this pipeline's context.  Tracing is
        observation-only: traced and untraced runs produce bit-identical
        artifacts (pinned by ``tests/runtime/test_trace_identity.py``).
        """
        if trace is not None:
            self._ctx.ensure_tracer()
        artifacts = self.analyze()
        if trace is not None:
            self._ctx.export_trace(trace)
        return artifacts

    def session(
        self,
        policy: IngestPolicy | None = None,
        checkpoint_dir=None,
        checkpoint_every: int = 0,
        resume: bool = False,
        detector_method: str = "multitask",
    ) -> IngestSession:
        """A streaming ingestion session on this pipeline's substrate.

        The session shares the pipeline's ranker score cache and analysis
        cache (through the detection callbacks it mints), so cleaning
        passes inside the session cost the same incremental refits batch
        cleaning does.  Each cleaning pass gets a *fresh* callback from
        :meth:`detect_fn`, so the detector embedding is frozen within a
        pass but refitted across passes — making batch mode the
        degenerate session: the whole corpus as one batch with cleaning
        forced reproduces ``extract()`` + ``DPCleaner.clean()``
        bit-identically (pinned by ``tests/service/test_equivalence.py``).
        """
        return IngestSession(
            config=self._config,
            detect_factory=lambda: self.detect_fn(detector_method),
            policy=policy,
            analysis=self._analysis,
            checkpoint_dir=checkpoint_dir,
            checkpoint_every=checkpoint_every,
            resume=resume,
            context=self._ctx,
        )

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------
    def analysis_concepts(self, kb: KnowledgeBase) -> list[str]:
        """Concepts worth analysing: real world concepts with instances.

        Mis-parse junk concepts (an instance surface acting as a concept)
        are excluded from detector training, as the paper's 13.5 M mostly
        tiny concepts were dominated by its one million analysed ones.
        """
        world = self._preset.world
        return sorted(
            concept for concept in kb.concepts() if concept in world
        )

    def detect_fn(
        self,
        detector_method: str = "multitask",
        non_dp_bias: float | None = None,
        analysis_cache: bool = True,
        warm_start: bool = False,
    ):
        """Detection callback for the DP cleaner: refit on the current KB.

        Cleaning runs the detector at a high-recall operating point
        (``cleaning_non_dp_bias``) because the cleaner's guards make false
        DP flags cheap while missed DPs leave whole cascades in place.

        The returned callback freezes the embedding (standardisation +
        KPCA basis) fitted on its first invocation and reuses it for
        later rounds — in *both* cache modes, so toggling
        ``analysis_cache`` never changes detections (the equivalence
        tests pin this bit-exactly).  With ``analysis_cache=True`` (the
        default) per-concept matrices, seeds, verified samples and
        detector transforms are reused across rounds through the
        pipeline's shared :class:`~repro.analysis.AnalysisCache`, and the
        refreshed exclusion index is published as
        ``detect.exclusion_index`` for the cleaner's guards.
        ``warm_start=True`` additionally seeds each round's multi-task
        optimisation from the previous round's weights — opt-in, as it
        may change results within the finite iteration budget.
        """
        if non_dp_bias is None:
            non_dp_bias = self._config.cleaning.cleaning_non_dp_bias
        detector_config = replace(
            self._config.detector, non_dp_bias=non_dp_bias
        )
        cache = self._analysis if analysis_cache else None
        state: dict = {"embedding": None, "weights": None}

        def detect(kb: KnowledgeBase) -> dict[str, dict[str, DPLabel]]:
            ctx = self._ctx
            with ctx.span(
                "analysis.refresh", cached=cache is not None
            ) as span:
                concepts = self.analysis_concepts(kb)
                span.set(concepts=len(concepts))
                if cache is not None:
                    exclusion = cache.exclusion(kb)
                else:
                    exclusion = MutualExclusionIndex(
                        kb, self._config.similarity
                    )
                # Publish the canonical per-KB index so the cleaner's
                # guards consult the same object detection just used.
                ctx.resources.put("exclusion", kb, exclusion)
                scores = self._ranker.score_all(kb, concepts)
                features = FeatureExtractor(kb, exclusion, scores)
                if cache is not None:
                    matrices = cache.matrices(kb, concepts, features)
                    verified = cache.verified(
                        kb, concepts, self._verified_concept
                    )
                    evidence = cache.evidence(
                        kb, self._config.labeling, verified
                    )
                    seeds = cache.seeds(kb, concepts, evidence)
                else:
                    matrices = {
                        concept: build_concept_matrix(features, concept)
                        for concept in concepts
                    }
                    verified = self._verified_sample(kb)
                    evidence = EvidenceIndex(
                        kb, exclusion, self._config.labeling,
                        verified=verified,
                    )
                    seeds = SeedLabeler(kb, exclusion, evidence).label_all(
                        concepts
                    )
                detector = DPDetector(
                    detector_config,
                    method=detector_method,
                    seed=self._streams.stream("detector"),
                    context=ctx,
                )
                detector.fit(
                    matrices,
                    seeds,
                    embedding=state["embedding"],
                    refit_cache=(
                        cache.refit_cache(kb) if cache is not None else None
                    ),
                    initial_weights=state["weights"] if warm_start else None,
                )
                state["embedding"] = detector.embedding
                if warm_start:
                    state["weights"] = detector.concept_weights
                detect.exclusion_index = exclusion
                return detector.predict_all()

        # Let the cleaner reuse this pipeline's ranker (and its score
        # cache) instead of re-solving the same concepts from scratch,
        # and inherit the pipeline's run context (shared-resource
        # registry, event bus, tracer) without a signature change at the
        # call sites that pass bare callbacks.
        detect.ranker = self._ranker
        detect.analysis = cache
        detect.exclusion_index = None
        detect.context = self._ctx
        return detect

    def _verified_concept(
        self, kb: KnowledgeBase, concept: str
    ) -> frozenset[IsAPair]:
        """One concept's verified sample (own RNG substream).

        The draw sequence depends only on the concept's own alive
        instances, so a rollback elsewhere cannot shift it — which is
        what lets the analysis cache key the sample on
        ``concept_version(concept)`` alone.
        """
        fraction = self._config.labeling.verified_fraction
        if fraction <= 0:
            return frozenset()
        world = self._preset.world
        rng = self._streams.stream(f"verified:{concept}")
        return frozenset(
            IsAPair(concept, instance)
            for instance in sorted(kb.instances_of(concept))
            if world.is_member(concept, instance) and rng.random() < fraction
        )

    def _verified_sample(self, kb: KnowledgeBase) -> frozenset[IsAPair]:
        """Sample of true pairs standing in for Wikipedia-style sources."""
        verified: set[IsAPair] = set()
        for concept in self.analysis_concepts(kb):
            verified |= self._verified_concept(kb, concept)
        return frozenset(verified)
