"""Extension: the ranking-cleaner threshold Pareto front.

The paper's related-work argument (§6): heuristic cleaners "rely on
arbitrary thresholds to divide all extractions into two parts, which can
hardly reach both high precision and satisfied recall".  This experiment
makes that quantitative: it sweeps the RW-Rank threshold across its whole
range, records the (r_error, p_error, r_corr) trade-off curve, and marks
where the (threshold-free) DP cleaning point lands relative to the front.
"""

from __future__ import annotations

from ..cleaning import DPCleaner
from ..evaluation.ground_truth import GroundTruth
from ..evaluation.metrics import cleaning_metrics
from ..evaluation.report import format_table
from ..ranking.random_walk import RandomWalkRanker
from .base import ExperimentResult, default_pipeline
from .pipeline import Pipeline
from .table3 import run_cleaner

__all__ = ["run_threshold_sweep"]

_MULTIPLIERS = (0.02, 0.05, 0.1, 0.2, 0.35, 0.5, 0.75, 1.0, 1.5, 2.5)


def run_threshold_sweep(pipeline: Pipeline | None = None) -> ExperimentResult:
    """Sweep RW-Rank's removal threshold; compare against DP cleaning."""
    pipeline = default_pipeline(pipeline)
    targets = list(pipeline.preset.target_concepts)
    # One extraction scored once; each threshold is evaluated analytically
    # against the same snapshot (removal = score below multiplier/n).
    extraction = pipeline.extract()
    kb = extraction.kb
    truth = GroundTruth(pipeline.preset.world, kb)
    scored = RandomWalkRanker().score_all(kb)
    before = {concept: kb.instances_of(concept) for concept in kb.concepts()}

    rows = []
    curve = []
    for multiplier in _MULTIPLIERS:
        after: dict[str, frozenset[str]] = {}
        for concept, instances in before.items():
            scores = scored.get(concept, {})
            n = len(scores)
            if n < 3:
                after[concept] = instances
                continue
            threshold = multiplier / n
            after[concept] = frozenset(
                instance
                for instance in instances
                if scores.get(instance, 0.0) >= threshold
            )
        metrics = cleaning_metrics(truth, before, after, targets)
        rows.append((
            f"RW-Rank t={multiplier:g}/n",
            round(metrics.p_error, 4), round(metrics.r_error, 4),
            round(metrics.p_corr, 4), round(metrics.r_corr, 4),
        ))
        curve.append({
            "multiplier": multiplier,
            "p_error": metrics.p_error, "r_error": metrics.r_error,
            "p_corr": metrics.p_corr, "r_corr": metrics.r_corr,
        })

    dp_metrics, _result, _truth, _extraction = run_cleaner(
        pipeline,
        DPCleaner(pipeline.detect_fn(), pipeline.config.cleaning),
        targets,
    )
    rows.append((
        "DP Cleaning (no threshold)",
        round(dp_metrics.p_error, 4), round(dp_metrics.r_error, 4),
        round(dp_metrics.p_corr, 4), round(dp_metrics.r_corr, 4),
    ))
    dp_point = {
        "p_error": dp_metrics.p_error, "r_error": dp_metrics.r_error,
        "p_corr": dp_metrics.p_corr, "r_corr": dp_metrics.r_corr,
    }
    return ExperimentResult(
        name="threshold_sweep",
        title="Extension: RW-Rank threshold trade-off vs. DP cleaning",
        text=format_table(
            ("variant", "p_error", "r_error", "p_corr", "r_corr"), rows
        ),
        data={"curve": curve, "dp_cleaning": dp_point},
    )
