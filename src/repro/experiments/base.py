"""Experiment runner scaffolding."""

from __future__ import annotations

from dataclasses import dataclass, field

from .pipeline import Pipeline

__all__ = ["ExperimentResult", "default_pipeline"]


@dataclass
class ExperimentResult:
    """One regenerated table or figure."""

    name: str
    title: str
    text: str
    data: dict = field(default_factory=dict)

    def __str__(self) -> str:  # pragma: no cover - display convenience
        return f"== {self.title} ==\n{self.text}"


def default_pipeline(pipeline: Pipeline | None = None) -> Pipeline:
    """The paper-scale pipeline unless the caller supplies one."""
    return pipeline if pipeline is not None else Pipeline()
