"""Ablation studies beyond the paper's own tables.

DESIGN.md commits to three ablations that probe the design choices the
paper motivates but never isolates:

* **feature ablation** — retrain the multi-task detector with each of the
  four features zeroed out, measuring how much each property contributes;
* **rollback ablation** — clean with DP detection but *without* the
  cascading rollback (drop flagged pairs only), quantifying how much of
  the cleaning power comes from cutting off propagation;
* **policy ablation** — re-extract under the ``max_evidence`` resolution
  policy and compare drift magnitude against the drift-prone ``nearest``
  attachment policy.
"""

from __future__ import annotations

from dataclasses import replace

from ..cleaning import DPCleaner
from ..config import CleaningConfig
from ..evaluation.ground_truth import GroundTruth
from ..evaluation.metrics import cleaning_metrics, detection_metrics
from ..evaluation.report import format_table
from ..extraction.engine import SemanticIterativeExtractor
from ..features.matrix import ConceptMatrix
from ..kb.pair import IsAPair
from ..learning.detector import DPDetector
from ..labeling.labels import DPLabel
from .base import ExperimentResult, default_pipeline
from .pipeline import Pipeline

__all__ = [
    "run_ablation_features",
    "run_ablation_rollback",
    "run_ablation_policy",
]


def _zero_feature(matrices, feature_index):
    """Copies of the concept matrices with one feature column zeroed."""
    ablated = {}
    for concept, matrix in matrices.items():
        x = matrix.x.copy()
        if x.size:
            x[:, feature_index] = 0.0
        ablated[concept] = ConceptMatrix(
            concept=concept, instances=matrix.instances, x=x
        )
    return ablated


def run_ablation_features(pipeline: Pipeline | None = None) -> ExperimentResult:
    """Detector F1 with each DP property removed."""
    pipeline = default_pipeline(pipeline)
    artifacts = pipeline.analyze(fit_detector=False)
    targets = list(artifacts.target_concepts)
    rows = []
    data: dict[str, dict[str, float]] = {}
    variants: list[tuple[str, int | None]] = [("all features", None)]
    variants += [(f"without f{i + 1}", i) for i in range(4)]
    for label, dropped in variants:
        matrices = (
            artifacts.matrices
            if dropped is None
            else _zero_feature(artifacts.matrices, dropped)
        )
        detector = DPDetector(
            pipeline.config.detector, method="multitask",
            seed=pipeline.config.seed,
        )
        detector.fit(matrices, artifacts.seeds)
        metrics = detection_metrics(
            artifacts.truth, detector.predict_all(), targets
        )
        rows.append((
            label, round(metrics.precision, 3), round(metrics.recall, 3),
            round(metrics.f1, 3),
        ))
        data[label] = {
            "precision": metrics.precision, "recall": metrics.recall,
            "f1": metrics.f1,
        }
    return ExperimentResult(
        name="ablation_features",
        title="Ablation: DP detection without each feature",
        text=format_table(("variant", "Precision", "Recall", "F1"), rows),
        data=data,
    )


def run_ablation_rollback(pipeline: Pipeline | None = None) -> ExperimentResult:
    """DP cleaning with and without the cascading rollback (§4.2)."""
    pipeline = default_pipeline(pipeline)
    targets = list(pipeline.preset.target_concepts)
    rows = []
    data: dict[str, dict[str, float]] = {}

    # Full DP cleaning.
    extraction = pipeline.extract()
    truth = GroundTruth(pipeline.preset.world, extraction.kb)
    before = {c: extraction.kb.instances_of(c) for c in extraction.kb.concepts()}
    DPCleaner(pipeline.detect_fn(), pipeline.config.cleaning).clean(
        extraction.kb, extraction.corpus
    )
    after = {c: extraction.kb.instances_of(c) for c in before}
    full = cleaning_metrics(truth, before, after, targets)

    # Drop-only cleaning: remove flagged accidental DPs, no cascades, no
    # Eq. 21 checks — the "treat DPs like ordinary errors" strawman.
    extraction2 = pipeline.extract()
    truth2 = GroundTruth(pipeline.preset.world, extraction2.kb)
    before2 = {
        c: extraction2.kb.instances_of(c) for c in extraction2.kb.concepts()
    }
    detect = pipeline.detect_fn()
    labels = detect(extraction2.kb)
    for concept, by_instance in labels.items():
        for instance, label in by_instance.items():
            if label is DPLabel.ACCIDENTAL:
                pair = IsAPair(concept, instance)
                if pair in extraction2.kb:
                    extraction2.kb.remove_pair(pair)
    after2 = {c: extraction2.kb.instances_of(c) for c in before2}
    drop_only = cleaning_metrics(truth2, before2, after2, targets)

    for label, metrics in (("full DP cleaning", full),
                           ("drop-only (no rollback)", drop_only)):
        rows.append((
            label, round(metrics.p_error, 4), round(metrics.r_error, 4),
            round(metrics.p_corr, 4), round(metrics.r_corr, 4),
        ))
        data[label] = {
            "p_error": metrics.p_error, "r_error": metrics.r_error,
            "p_corr": metrics.p_corr, "r_corr": metrics.r_corr,
        }
    return ExperimentResult(
        name="ablation_rollback",
        title="Ablation: cascading rollback vs. dropping DPs only",
        text=format_table(
            ("variant", "p_error", "r_error", "p_corr", "r_corr"), rows
        ),
        data=data,
    )


def run_ablation_policy(pipeline: Pipeline | None = None) -> ExperimentResult:
    """Drift magnitude under the two ambiguity-resolution policies."""
    pipeline = default_pipeline(pipeline)
    corpus = pipeline.corpus()
    world = pipeline.preset.world
    targets = set(pipeline.preset.target_concepts)
    rows = []
    data: dict[str, dict[str, float]] = {}
    for policy in ("nearest", "max_evidence"):
        config = replace(pipeline.config.extraction, policy=policy)
        result = SemanticIterativeExtractor(config).run(corpus)
        kb = result.kb
        good = bad = 0
        for pair in kb.pairs():
            if pair.concept in targets:
                if world.is_member(pair.concept, pair.instance):
                    good += 1
                else:
                    bad += 1
        precision = good / (good + bad) if good + bad else 0.0
        coverage = good / max(
            1, sum(len(world.members(c)) for c in targets)
        )
        rows.append((
            policy, len(kb), round(precision, 4), round(coverage, 4),
            result.iterations,
        ))
        data[policy] = {
            "pairs": len(kb), "target_precision": precision,
            "target_coverage": coverage, "iterations": result.iterations,
        }
    return ExperimentResult(
        name="ablation_policy",
        title="Ablation: nearest-attachment vs. max-evidence resolution",
        text=format_table(
            ("policy", "pairs", "target precision", "target coverage",
             "iterations"),
            rows,
        ),
        data=data,
    )
