"""Table 3 — cleaning-method comparison (§5.3).

Each cleaner runs against its own fresh (deterministic) extraction of the
same corpus, and is scored on the four dimensions over the 20 target
concepts.  Expected shape: MEx and TCh precise but low-recall; the two
ranking cleaners mid-precision / mid-recall with heavy collateral damage;
DP Cleaning best on every dimension jointly.
"""

from __future__ import annotations

from ..cleaning import (
    DPCleaner,
    MutualExclusionCleaner,
    PRDualRankCleaner,
    RWRankCleaner,
    TypeCheckingCleaner,
)
from ..evaluation.ground_truth import GroundTruth
from ..evaluation.metrics import cleaning_metrics
from ..evaluation.report import format_table
from .base import ExperimentResult, default_pipeline
from .pipeline import Pipeline

__all__ = ["run_table3", "run_cleaner"]

_HEADERS = ("Cleaning Method", "p_error", "r_error", "p_correct", "r_correct")


def run_cleaner(pipeline: Pipeline, cleaner, concepts):
    """Run one cleaner on a fresh extraction; return (metrics, result, truth)."""
    extraction = pipeline.extract()
    truth = GroundTruth(pipeline.preset.world, extraction.kb)
    before = {
        concept: extraction.kb.instances_of(concept)
        for concept in extraction.kb.concepts()
    }
    result = cleaner.clean(extraction.kb, extraction.corpus)
    after = {
        concept: extraction.kb.instances_of(concept) for concept in before
    }
    metrics = cleaning_metrics(truth, before, after, concepts)
    return metrics, result, truth, extraction


def run_table3(pipeline: Pipeline | None = None) -> ExperimentResult:
    """Regenerate Table 3."""
    pipeline = default_pipeline(pipeline)
    artifacts = pipeline.analyze(fit_detector=False)
    targets = list(artifacts.target_concepts)
    baseline_before = cleaning_metrics(
        artifacts.truth,
        artifacts.concept_instances(),
        artifacts.concept_instances(),
        targets,
    )
    cleaners = [
        ("MEx", MutualExclusionCleaner()),
        ("TCh", TypeCheckingCleaner(artifacts.ner(accuracy=0.95))),
        ("PRDual-Rank", PRDualRankCleaner(artifacts.seeds, artifacts.evidence)),
        ("RW-Rank", RWRankCleaner(artifacts.seeds)),
        ("DP Cleaning", DPCleaner(pipeline.detect_fn(),
                                  pipeline.config.cleaning)),
    ]
    rows: list[tuple] = [
        ("Before Cleaning", "-", "-",
         round(baseline_before.p_corr, 4), 1.0),
    ]
    data: dict[str, dict[str, float]] = {
        "Before Cleaning": {"p_corr": baseline_before.p_corr, "r_corr": 1.0}
    }
    for label, cleaner in cleaners:
        metrics, _result, _truth, _extraction = run_cleaner(
            pipeline, cleaner, targets
        )
        rows.append((
            label,
            round(metrics.p_error, 4), round(metrics.r_error, 4),
            round(metrics.p_corr, 4), round(metrics.r_corr, 4),
        ))
        data[label] = {
            "p_error": metrics.p_error, "r_error": metrics.r_error,
            "p_corr": metrics.p_corr, "r_corr": metrics.r_corr,
            "removed": metrics.removed,
        }
    return ExperimentResult(
        name="table3",
        title="Table 3: cleaning performance vs. previous approaches",
        text=format_table(_HEADERS, rows),
        data=data,
    )
