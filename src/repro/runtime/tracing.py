"""Span-based tracing: wall/CPU-timed spans, counters, JSONL export.

A :class:`Tracer` collects a forest of :class:`Span` objects.  Spans nest
via a context manager; each records wall time (``perf_counter``), CPU
time (``process_time``), structured attributes set at open or via
:meth:`Span.set`, monotonic counters (:meth:`Span.add`), and the events
emitted while it was the innermost open span.

The export format is JSONL — one record per line, every record carrying
``schema``/``kind`` discriminators so downstream tooling can rely on the
field names (pinned by ``tests/runtime/test_tracing.py``):

* ``{"kind": "trace", "schema": 1, "spans": N}`` — header line;
* ``{"kind": "span", "schema": 1, "id", "parent", "name", "start",
  "wall_ms", "cpu_ms", "attributes", "counters", "events"}`` — one per
  span, depth-first in start order (parents precede children);
* ``{"kind": "counters", "schema": 1, "counters": {...}}`` — trailing
  record for counts recorded outside any span (only when nonempty).

Tracing is observation only: spans never touch RNG state and never feed
back into any stage, so a traced run is bit-identical to an untraced one
(pinned by ``tests/runtime/test_trace_identity.py``).  The tracer keeps
one span stack and is meant to be driven from the orchestrating thread;
worker pools below an open span simply attribute their wall time to it.
"""

from __future__ import annotations

import json
import time
from contextlib import contextmanager
from pathlib import Path
from collections.abc import Iterator

__all__ = ["Span", "Tracer", "TRACE_SCHEMA_VERSION", "read_trace"]

TRACE_SCHEMA_VERSION = 1


class Span:
    """One timed, attributed, counted node in the trace tree."""

    __slots__ = (
        "name",
        "span_id",
        "parent",
        "attributes",
        "counters",
        "events",
        "children",
        "start",
        "wall_ms",
        "cpu_ms",
        "_wall0",
        "_cpu0",
    )

    def __init__(
        self, name: str, span_id: int, parent: "Span | None", attributes: dict
    ) -> None:
        self.name = name
        self.span_id = span_id
        self.parent = parent
        self.attributes = attributes
        self.counters: dict[str, int | float] = {}
        self.events: list[dict] = []
        self.children: list[Span] = []
        self.start = time.time()
        self.wall_ms: float | None = None
        self.cpu_ms: float | None = None
        self._wall0 = time.perf_counter()
        self._cpu0 = time.process_time()

    def set(self, **attributes) -> None:
        """Set or overwrite structured attributes."""
        self.attributes.update(attributes)

    def add(self, counter: str, n: int | float = 1) -> None:
        """Increment a counter on this span."""
        self.counters[counter] = self.counters.get(counter, 0) + n

    def _close(self) -> None:
        self.wall_ms = (time.perf_counter() - self._wall0) * 1e3
        self.cpu_ms = (time.process_time() - self._cpu0) * 1e3

    def walk(self) -> Iterator["Span"]:
        """This span and every descendant, depth-first."""
        yield self
        for child in self.children:
            yield from child.walk()

    def find(self, name: str) -> "Span | None":
        """First descendant (or self) with the given name."""
        for span in self.walk():
            if span.name == name:
                return span
        return None

    def to_record(self) -> dict:
        """The pinned JSONL record for this span."""
        return {
            "schema": TRACE_SCHEMA_VERSION,
            "kind": "span",
            "id": self.span_id,
            "parent": self.parent.span_id if self.parent else None,
            "name": self.name,
            "start": self.start,
            "wall_ms": self.wall_ms,
            "cpu_ms": self.cpu_ms,
            "attributes": self.attributes,
            "counters": self.counters,
            "events": self.events,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Span({self.name!r}, id={self.span_id}, "
            f"children={len(self.children)}, counters={self.counters})"
        )


class Tracer:
    """In-memory span collector with JSONL export."""

    def __init__(self) -> None:
        self.roots: list[Span] = []
        self.loose_counters: dict[str, int | float] = {}
        self._stack: list[Span] = []
        self._next_id = 1

    @property
    def current(self) -> Span | None:
        """The innermost open span, if any."""
        return self._stack[-1] if self._stack else None

    @contextmanager
    def span(self, name: str, **attributes) -> Iterator[Span]:
        """Open a child span of the current span (or a new root)."""
        parent = self.current
        span = Span(name, self._next_id, parent, attributes)
        self._next_id += 1
        if parent is None:
            self.roots.append(span)
        else:
            parent.children.append(span)
        self._stack.append(span)
        try:
            yield span
        finally:
            span._close()
            self._stack.pop()

    def count(self, counter: str, n: int | float = 1) -> None:
        """Increment a counter on the current span (or the loose pool)."""
        target = self.current
        if target is None:
            self.loose_counters[counter] = (
                self.loose_counters.get(counter, 0) + n
            )
        else:
            target.add(counter, n)

    def record_event(self, name: str, payload: dict) -> None:
        """Attach an event record to the current span (dropped if none)."""
        target = self.current
        if target is not None:
            target.events.append({"event": name, **payload})

    def spans(self) -> Iterator[Span]:
        """Every collected span, depth-first across roots."""
        for root in self.roots:
            yield from root.walk()

    def find(self, name: str) -> Span | None:
        """First span with the given name anywhere in the forest."""
        for span in self.spans():
            if span.name == name:
                return span
        return None

    def counter_total(self, counter: str) -> int | float:
        """Sum of one counter over every span plus the loose pool."""
        total = self.loose_counters.get(counter, 0)
        for span in self.spans():
            total += span.counters.get(counter, 0)
        return total

    def to_records(self) -> list[dict]:
        """Header + span records (+ loose counters), export order."""
        records: list[dict] = [
            {
                "schema": TRACE_SCHEMA_VERSION,
                "kind": "trace",
                "spans": sum(1 for _ in self.spans()),
            }
        ]
        records.extend(span.to_record() for span in self.spans())
        if self.loose_counters:
            records.append(
                {
                    "schema": TRACE_SCHEMA_VERSION,
                    "kind": "counters",
                    "counters": self.loose_counters,
                }
            )
        return records

    def export_jsonl(self, path: str | Path) -> Path:
        """Write the trace to ``path`` as JSONL; returns the path."""
        path = Path(path)
        with path.open("w", encoding="utf-8") as fh:
            for record in self.to_records():
                fh.write(json.dumps(record, sort_keys=True) + "\n")
        return path


def read_trace(path: str | Path) -> list[dict]:
    """Parse a JSONL trace back into its records (round-trip helper)."""
    records = []
    with Path(path).open("r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if line:
                records.append(json.loads(line))
    return records
