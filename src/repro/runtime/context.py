"""The structured run context threaded through every stage.

A :class:`RunContext` bundles what used to travel as ad-hoc callback
attributes and private state:

* the :class:`~repro.config.PipelineConfig` of the run;
* the seeded :class:`~repro.rng.RandomStreams` fan-out;
* a typed :class:`~repro.runtime.events.EventBus`;
* an optional :class:`~repro.runtime.tracing.Tracer` (``None`` = tracing
  disabled, the default);
* a :class:`SharedResources` registry through which components resolve
  run-scoped singletons (e.g. the one
  :class:`~repro.concepts.exclusion.MutualExclusionIndex` per knowledge
  base that the detection callback and the DP cleaner must share).

Every stage accepts a context and defaults to :data:`NULL_CONTEXT`, a
stateless singleton whose ``span``/``count``/``emit`` are no-ops and
whose resource registry never stores anything — so un-contexted library
use pays one attribute check per instrumentation point and behaves
exactly as before.  Tracing and events are observation only: no stage
reads its own telemetry back, which is what keeps traced and untraced
runs bit-identical.
"""

from __future__ import annotations

import weakref
from contextlib import AbstractContextManager
from pathlib import Path
from collections.abc import Callable

from ..config import PipelineConfig
from ..rng import RandomStreams
from .events import Event, EventBus, event_payload
from .tracing import Span, Tracer

__all__ = ["RunContext", "SharedResources", "NULL_CONTEXT"]


class SharedResources:
    """Run-scoped singletons keyed by ``(kind, owner)``.

    Owners are held weakly, so registering a per-knowledge-base resource
    does not pin the knowledge base alive.
    """

    __slots__ = ("_by_kind",)

    def __init__(self) -> None:
        self._by_kind: dict[str, weakref.WeakKeyDictionary] = {}

    def get(self, kind: str, owner: object):
        """The registered resource, or ``None``."""
        table = self._by_kind.get(kind)
        return table.get(owner) if table is not None else None

    def put(self, kind: str, owner: object, resource) -> None:
        """Register (or replace) the resource for ``(kind, owner)``."""
        table = self._by_kind.get(kind)
        if table is None:
            table = weakref.WeakKeyDictionary()
            self._by_kind[kind] = table
        table[owner] = resource

    def get_or_create(self, kind: str, owner: object, factory: Callable[[], object]):
        """Resolve the resource, creating and registering it on first use."""
        resource = self.get(kind, owner)
        if resource is None:
            resource = factory()
            self.put(kind, owner, resource)
        return resource


class _NullSpan:
    """Inert span: accepts sets/adds, records nothing."""

    __slots__ = ()

    def set(self, **attributes) -> None:
        pass

    def add(self, counter: str, n: int | float = 1) -> None:
        pass


_NULL_SPAN = _NullSpan()


class _NullSpanContext(AbstractContextManager):
    """Stateless, reentrant no-op replacement for ``Tracer.span``."""

    __slots__ = ()

    def __enter__(self) -> _NullSpan:
        return _NULL_SPAN

    def __exit__(self, *exc) -> bool:
        return False


_NULL_SPAN_CONTEXT = _NullSpanContext()


class RunContext:
    """Config + RNG + event bus + tracing + shared resources for one run."""

    __slots__ = ("config", "streams", "bus", "tracer", "resources")

    def __init__(
        self,
        config: PipelineConfig | None = None,
        streams: RandomStreams | None = None,
        *,
        bus: EventBus | None = None,
        tracer: Tracer | None = None,
    ) -> None:
        self.config = config
        self.streams = streams
        self.bus = bus if bus is not None else EventBus()
        self.tracer = tracer
        self.resources = SharedResources()

    # ------------------------------------------------------------------
    # Tracing
    # ------------------------------------------------------------------
    @property
    def tracing(self) -> bool:
        """Whether a tracer is attached."""
        return self.tracer is not None

    def ensure_tracer(self) -> Tracer:
        """Attach (if needed) and return the tracer."""
        if self.tracer is None:
            self.tracer = Tracer()
        return self.tracer

    def span(
        self, name: str, **attributes
    ) -> AbstractContextManager[Span | _NullSpan]:
        """Open a traced span, or a shared no-op when tracing is off."""
        if self.tracer is None:
            return _NULL_SPAN_CONTEXT
        return self.tracer.span(name, **attributes)

    def count(self, counter: str, n: int | float = 1) -> None:
        """Increment a counter on the current span (no-op untraced)."""
        if self.tracer is not None:
            self.tracer.count(counter, n)

    def export_trace(self, path: str | Path) -> Path:
        """Export the collected trace as JSONL."""
        if self.tracer is None:
            raise ValueError("no tracer attached to this context")
        return self.tracer.export_jsonl(path)

    # ------------------------------------------------------------------
    # Events
    # ------------------------------------------------------------------
    def emit(self, event: Event) -> None:
        """Publish an event to the bus and record it on the active span."""
        if self.tracer is not None:
            self.tracer.record_event(
                type(event).__name__, event_payload(event)
            )
        self.bus.publish(event)


class _NullResources(SharedResources):
    """Registry that never stores: ``get`` misses, ``put`` drops.

    Keeps the null context stateless, so unrelated un-contexted runs can
    never observe each other through the shared singleton.
    """

    __slots__ = ()

    def put(self, kind: str, owner: object, resource) -> None:
        pass

    def get_or_create(self, kind: str, owner: object, factory: Callable[[], object]):
        return factory()


class _NullContext(RunContext):
    """The shared do-nothing context (module singleton)."""

    __slots__ = ()

    def __init__(self) -> None:
        super().__init__()
        self.resources = _NullResources()

    def ensure_tracer(self) -> Tracer:
        raise ValueError(
            "cannot attach a tracer to the null context; build a real "
            "RunContext instead"
        )

    def span(self, name: str, **attributes):
        return _NULL_SPAN_CONTEXT

    def count(self, counter: str, n: int | float = 1) -> None:
        pass

    def emit(self, event: Event) -> None:
        pass


NULL_CONTEXT: RunContext = _NullContext()
