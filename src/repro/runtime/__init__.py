"""repro.runtime — run context, typed event bus, span tracing.

The foundation layer every stage threads its instrumentation through.
See DESIGN.md §8 ("Runtime & observability") for the layer diagram, the
event taxonomy and the import-direction rules this package anchors.
"""

from .context import NULL_CONTEXT, RunContext, SharedResources
from .events import (
    BatchExtracted,
    BatchIngested,
    CleaningCompleted,
    CleaningRound,
    CleaningTriggered,
    DetectorFitted,
    DriftMeasured,
    Event,
    EventBus,
    ExtractionIteration,
    LogEvent,
    SessionResumed,
    WarmStartReused,
    event_payload,
)
from .tracing import TRACE_SCHEMA_VERSION, Span, Tracer, read_trace

__all__ = [
    "NULL_CONTEXT",
    "RunContext",
    "SharedResources",
    "Event",
    "EventBus",
    "event_payload",
    "LogEvent",
    "ExtractionIteration",
    "DetectorFitted",
    "WarmStartReused",
    "CleaningRound",
    "CleaningTriggered",
    "CleaningCompleted",
    "BatchExtracted",
    "DriftMeasured",
    "BatchIngested",
    "SessionResumed",
    "Span",
    "Tracer",
    "TRACE_SCHEMA_VERSION",
    "read_trace",
]
