"""Typed event bus + the library's event taxonomy.

Every cross-stage notification in the library is a frozen dataclass
deriving from :class:`Event` and travels over an :class:`EventBus`.
Stages *emit*; whoever cares *subscribes* — the CLI renders progress
lines from :class:`BatchIngested`, the ingestion policy monitor keeps its
staleness/drift state from :class:`BatchExtracted` /
:class:`DriftMeasured` / :class:`CleaningCompleted`, and an attached
tracer records every event into the active span.

Design rules:

* event payloads are **primitives only** (ints, floats, strings, tuples)
  so the runtime layer never imports upward and every event serialises
  to JSON without help;
* publishing with no subscribers is close to free (one attribute check),
  so stages emit unconditionally;
* handlers run synchronously in publish order — the bus adds no threads
  and therefore no nondeterminism.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from collections.abc import Callable

__all__ = [
    "Event",
    "EventBus",
    "LogEvent",
    "ExtractionIteration",
    "DetectorFitted",
    "WarmStartReused",
    "CleaningRound",
    "CleaningTriggered",
    "CleaningCompleted",
    "BatchExtracted",
    "DriftMeasured",
    "BatchIngested",
    "SessionResumed",
    "event_payload",
]


@dataclass(frozen=True)
class Event:
    """Marker base class for everything published on the bus."""


def event_payload(event: Event) -> dict:
    """The event's fields as a JSON-ready dict (shallow; fields are
    primitives by the taxonomy's design rule)."""
    return {f.name: getattr(event, f.name) for f in fields(event)}


class EventBus:
    """Synchronous publish/subscribe dispatch keyed by event type.

    Handlers subscribed to a base class receive subclass events too, so
    ``subscribe(Event, handler)`` observes everything.
    """

    __slots__ = ("_handlers", "_count")

    def __init__(self) -> None:
        self._handlers: dict[type, list[Callable[[Event], None]]] = {}
        self._count = 0

    @property
    def has_subscribers(self) -> bool:
        """Whether any handler is registered at all."""
        return self._count > 0

    def subscribe(
        self,
        event_type: type[Event],
        handler: Callable[[Event], None],
    ) -> Callable[[], None]:
        """Register ``handler`` for ``event_type`` (and its subclasses).

        Returns a zero-argument unsubscribe callable.
        """
        handlers = self._handlers.setdefault(event_type, [])
        handlers.append(handler)
        self._count += 1

        def unsubscribe() -> None:
            if handler in handlers:
                handlers.remove(handler)
                self._count -= 1

        return unsubscribe

    def publish(self, event: Event) -> None:
        """Dispatch ``event`` to every matching handler, in subscribe order."""
        if self._count == 0:
            return
        for klass in type(event).__mro__:
            for handler in self._handlers.get(klass, ()):
                handler(event)
            if klass is Event:
                break


# ----------------------------------------------------------------------
# Taxonomy
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class LogEvent(Event):
    """A human-readable progress message (replaces library ``print``)."""

    message: str
    level: str = "info"


@dataclass(frozen=True)
class ExtractionIteration(Event):
    """One extraction iteration finished (batch or incremental).

    Under delta-driven resolution, ``sentences_skipped`` counts pool
    sentences the worklist never attempted this iteration (the naive scan
    would have re-attempted each one) and ``index_hits`` counts attempts
    driven by an evidence-index wake rather than fresh arrival.
    ``sentences_scanned + sentences_skipped`` equals the naive scan count.
    """

    iteration: int
    sentences_scanned: int
    sentences_resolved: int
    new_pairs: int
    total_pairs: int
    trigger_fanout: int
    sentences_skipped: int = 0
    index_hits: int = 0


@dataclass(frozen=True)
class DetectorFitted(Event):
    """A DP detector finished fitting."""

    method: str
    concepts: int
    labelled_concepts: int
    warm_started: bool
    transforms_reused: int
    manifolds_reused: int


@dataclass(frozen=True)
class WarmStartReused(Event):
    """A refit seeded its optimisation from a previous round's weights."""

    concepts: int


@dataclass(frozen=True)
class CleaningRound(Event):
    """One DP-cleaning round finished."""

    round_index: int
    intentional_dps: int
    accidental_dps: int
    pairs_removed: int
    records_rolled_back: int
    sentence_checks: int


@dataclass(frozen=True)
class CleaningTriggered(Event):
    """The ingestion policy decided a cleaning pass is due."""

    reason: str
    staleness: int
    drift: float


@dataclass(frozen=True)
class CleaningCompleted(Event):
    """A full cleaning pass (all rounds) finished."""

    rounds: int
    pairs_removed: int
    records_rolled_back: int
    reason: str | None = None


@dataclass(frozen=True)
class BatchExtracted(Event):
    """One ingested batch finished extraction (before any cleaning)."""

    index: int
    sentences_seen: int
    sentences_new: int
    new_pairs: int
    total_pairs: int
    iterations_run: int


@dataclass(frozen=True)
class DriftMeasured(Event):
    """Drift telemetry for one ingested batch.

    ``per_concept`` is a tuple of ``(concept, new_pairs, conflicted)``
    triples so the event stays hashable and JSON-ready.
    """

    index: int
    new_pairs: int
    conflicted: int
    fraction: float
    per_concept: tuple[tuple[str, int, int], ...] = ()


@dataclass(frozen=True)
class BatchIngested(Event):
    """One batch fully committed (extraction + telemetry + cleaning)."""

    seq: int
    index: int
    sentences_seen: int
    sentences_new: int
    new_pairs: int
    total_pairs: int
    drift_fraction: float
    cleaned: bool
    clean_reason: str | None = None
    removed_pairs: int = 0
    replayed: bool = False


@dataclass(frozen=True)
class SessionResumed(Event):
    """A durable session finished restoring from its checkpoint dir."""

    batches: int
    cleanings: int
    total_pairs: int
