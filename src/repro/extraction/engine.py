"""The semantic-based iterative extraction engine (§1, §2.1 of the paper).

Iteration 1 extracts only from unambiguous sentences — these become the
*core pairs*.  Every later iteration takes a snapshot of the knowledge
learned so far, tries to resolve still-unresolved ambiguous sentences
against that snapshot, and commits the winners with full provenance
(sentence id, chosen concept, triggering pairs).  The loop stops when an
iteration resolves nothing or ``max_iterations`` is reached.

Snapshot semantics match the paper: knowledge learned *during* iteration
``i`` only becomes usable in iteration ``i + 1``.

Resolution is **delta-driven** by default (semi-naive evaluation, see
:mod:`repro.extraction.index`): an iteration re-attempts only sentences
newly arrived per the ``stream_chunks`` schedule plus sentences with a
candidate ``(concept, instance)`` pair that became visible since their
last attempt — everything else is skipped without calling ``resolve()``.
Results are bit-identical to the naive full scan (same records, triggers,
iteration numbers and logs); ``ExtractionConfig(delta_index=False)``
keeps the naive scan as the equivalence and benchmark reference.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Iterable

from ..config import ExtractionConfig
from ..corpus.corpus import Corpus
from ..corpus.sentence import Sentence
from ..kb.pair import IsAPair
from ..kb.snapshot import IterationLog
from ..kb.store import KnowledgeBase
from ..runtime.context import NULL_CONTEXT, RunContext
from ..runtime.events import ExtractionIteration
from .index import ResolutionWorklist
from .trigger import resolve

__all__ = [
    "BatchExtraction",
    "ExtractionResult",
    "IncrementalExtractor",
    "SemanticIterativeExtractor",
]


def _arrival_schedule(
    ambiguous: list[Sentence], chunks: int, first: int
) -> dict[int, int] | None:
    """sid → iteration the sentence first becomes attemptable.

    ``None`` in the common single-chunk configuration (or with nothing to
    schedule): every sentence arrives at ``first``, and callers skip the
    per-sentence arrival bookkeeping entirely.
    """
    if chunks == 1 or not ambiguous:
        return None
    chunk_size = max(1, -(-len(ambiguous) // chunks))
    return {
        sentence.sid: first + index // chunk_size
        for index, sentence in enumerate(ambiguous)
    }


def _arrival_buckets(
    ambiguous: list[Sentence], arrival: dict[int, int] | None, first: int
) -> dict[int, list[Sentence]]:
    """iteration → sentences first attemptable then (worklist feed)."""
    if not ambiguous:
        return {}
    if arrival is None:
        return {first: list(ambiguous)}
    buckets: dict[int, list[Sentence]] = {}
    for sentence in ambiguous:
        buckets.setdefault(arrival[sentence.sid], []).append(sentence)
    return buckets


@dataclass
class ExtractionResult:
    """Everything an extraction run produced."""

    kb: KnowledgeBase
    corpus: Corpus
    log: IterationLog = field(default_factory=IterationLog)
    unresolved_sids: tuple[int, ...] = ()

    @property
    def iterations(self) -> int:
        """Number of iterations that ran (including iteration 1)."""
        return self.log.iterations

    @property
    def total_pairs(self) -> int:
        """Distinct pairs currently alive in the knowledge base."""
        return len(self.kb)


class SemanticIterativeExtractor:
    """Run iterative, knowledge-triggered isA extraction over a corpus."""

    def __init__(
        self,
        config: ExtractionConfig | None = None,
        context: RunContext | None = None,
    ) -> None:
        self._config = config or ExtractionConfig()
        self._ctx = context or NULL_CONTEXT

    def run(self, corpus: Corpus) -> ExtractionResult:
        """Extract from a (deduplicated) corpus and return the result."""
        with self._ctx.span("extract") as span:
            result = self._run(corpus)
            span.set(
                iterations=result.iterations,
                total_pairs=result.total_pairs,
                unresolved=len(result.unresolved_sids),
            )
        return result

    def _run(self, corpus: Corpus) -> ExtractionResult:
        config = self._config
        ctx = self._ctx
        deduped = corpus.deduplicated()
        kb = KnowledgeBase()
        log = IterationLog()

        # Iteration 1: unambiguous sentences only.
        unambiguous = sorted(deduped.unambiguous(), key=lambda s: s.sid)
        with ctx.span("extract.iteration", iteration=1) as span:
            for sentence in unambiguous:
                kb.add_extraction(
                    sid=sentence.sid,
                    concept=sentence.concepts[0],
                    instances=sentence.instances,
                    triggers=(),
                    iteration=1,
                )
            span.add("sentences_scanned", len(unambiguous))
            span.add("sentences_resolved", len(unambiguous))
            span.add("pairs_committed", len(kb))
        visible: dict[str, frozenset[str]] = {
            concept: kb.instances_of(concept) for concept in kb.concepts()
        }
        log.record(
            iteration=1,
            sentences_resolved=len(unambiguous),
            new_pairs=len(kb),
            total_pairs=len(kb),
        )
        ctx.emit(
            ExtractionIteration(
                iteration=1,
                sentences_scanned=len(unambiguous),
                sentences_resolved=len(unambiguous),
                new_pairs=len(kb),
                total_pairs=len(kb),
                trigger_fanout=0,
            )
        )

        # Iterations 2..n: resolve ambiguous sentences against the snapshot.
        # With stream_chunks > 1 the ambiguous stream arrives incrementally
        # (modelling the paper's cluster scanning 326 M sentences while the
        # knowledge base grows): chunk ``i`` first becomes attemptable in
        # iteration ``2 + i``.
        ambiguous = sorted(deduped.ambiguous(), key=lambda s: s.sid)
        if config.delta_index:
            unresolved_sids = self._resolve_delta(kb, log, visible, ambiguous)
        else:
            unresolved_sids = self._resolve_naive(kb, log, visible, ambiguous)
        return ExtractionResult(
            kb=kb,
            corpus=deduped,
            log=log,
            unresolved_sids=unresolved_sids,
        )

    def _resolve_delta(
        self,
        kb: KnowledgeBase,
        log: IterationLog,
        visible: dict[str, frozenset[str]],
        ambiguous: list[Sentence],
    ) -> tuple[int, ...]:
        """Semi-naive resolution: attempt only arrivals and woken sentences."""
        config = self._config
        ctx = self._ctx
        arrival = _arrival_schedule(ambiguous, config.stream_chunks, 2)
        arrivals = _arrival_buckets(ambiguous, arrival, 2)
        pending: dict[int, Sentence] = {s.sid: s for s in ambiguous}
        worklist = ResolutionWorklist(visible)
        arrived = 0
        for iteration in range(2, config.max_iterations + 1):
            pairs_before = len(kb)
            newly = arrivals.pop(iteration, ())
            arrived += len(newly)
            woken = worklist.take_woken(pending)
            hits = len(woken)
            attempt = sorted({s.sid for s in newly} | woken)
            resolved_count = 0
            fanout = 0
            grown: set[str] = set()
            with ctx.span("extract.iteration", iteration=iteration) as span:
                for sid in attempt:
                    sentence = pending[sid]
                    resolution = resolve(
                        sentence,
                        visible,
                        policy=config.policy,
                        min_evidence=config.min_evidence,
                    )
                    if resolution is None:
                        worklist.watch(sentence)
                        continue
                    kb.add_extraction(
                        sid=sid,
                        concept=resolution.concept,
                        instances=sentence.instances,
                        triggers=resolution.triggers,
                        iteration=iteration,
                    )
                    del pending[sid]
                    worklist.resolved(sid)
                    grown.add(resolution.concept)
                    fanout += len(resolution.triggers)
                    resolved_count += 1
                scanned = len(attempt)
                skipped = arrived - scanned
                span.add("sentences_scanned", scanned)
                span.add("sentences_resolved", resolved_count)
                span.add("pairs_committed", len(kb) - pairs_before)
                span.add("trigger_fanout", fanout)
                span.add("sentences_skipped", skipped)
                span.add("index_hits", hits)
            arrived -= resolved_count
            ctx.emit(
                ExtractionIteration(
                    iteration=iteration,
                    sentences_scanned=scanned,
                    sentences_resolved=resolved_count,
                    new_pairs=len(kb) - pairs_before,
                    total_pairs=len(kb),
                    trigger_fanout=fanout,
                    sentences_skipped=skipped,
                    index_hits=hits,
                )
            )
            all_arrived = iteration >= 1 + config.stream_chunks
            if resolved_count == 0 and all_arrived:
                break
            worklist.commit_deltas(kb, grown)
            log.record(
                iteration=iteration,
                sentences_resolved=resolved_count,
                new_pairs=len(kb) - pairs_before,
                total_pairs=len(kb),
            )
            if not pending:
                break
        return tuple(sorted(pending))

    def _resolve_naive(
        self,
        kb: KnowledgeBase,
        log: IterationLog,
        visible: dict[str, frozenset[str]],
        ambiguous: list[Sentence],
    ) -> tuple[int, ...]:
        """The reference full scan: every arrived sentence, every iteration."""
        config = self._config
        ctx = self._ctx
        arrival = _arrival_schedule(ambiguous, config.stream_chunks, 2)
        unresolved = ambiguous
        for iteration in range(2, config.max_iterations + 1):
            pairs_before = len(kb)
            still_unresolved = []
            resolved_count = 0
            scanned = 0
            fanout = 0
            grown: set[str] = set()
            with ctx.span("extract.iteration", iteration=iteration) as span:
                for sentence in unresolved:
                    if arrival is not None and arrival[sentence.sid] > iteration:
                        still_unresolved.append(sentence)
                        continue
                    scanned += 1
                    resolution = resolve(
                        sentence,
                        visible,
                        policy=config.policy,
                        min_evidence=config.min_evidence,
                    )
                    if resolution is None:
                        still_unresolved.append(sentence)
                        continue
                    kb.add_extraction(
                        sid=sentence.sid,
                        concept=resolution.concept,
                        instances=sentence.instances,
                        triggers=resolution.triggers,
                        iteration=iteration,
                    )
                    grown.add(resolution.concept)
                    fanout += len(resolution.triggers)
                    resolved_count += 1
                span.add("sentences_scanned", scanned)
                span.add("sentences_resolved", resolved_count)
                span.add("pairs_committed", len(kb) - pairs_before)
                span.add("trigger_fanout", fanout)
            unresolved = still_unresolved
            ctx.emit(
                ExtractionIteration(
                    iteration=iteration,
                    sentences_scanned=scanned,
                    sentences_resolved=resolved_count,
                    new_pairs=len(kb) - pairs_before,
                    total_pairs=len(kb),
                    trigger_fanout=fanout,
                )
            )
            all_arrived = iteration >= 1 + config.stream_chunks
            if resolved_count == 0 and all_arrived:
                break
            # Re-snapshot only the concepts that gained instances this
            # iteration; extraction never removes knowledge, so every other
            # concept's snapshot is still current.
            for concept in grown:
                visible[concept] = kb.instances_of(concept)
            log.record(
                iteration=iteration,
                sentences_resolved=resolved_count,
                new_pairs=len(kb) - pairs_before,
                total_pairs=len(kb),
            )
            if not unresolved:
                break
        return tuple(s.sid for s in unresolved)


@dataclass
class BatchExtraction:
    """What ingesting one sentence batch contributed."""

    index: int
    sentences_seen: int
    sentences_new: int
    core_resolved: int
    ambiguous_resolved: int
    new_pairs: tuple[IsAPair, ...]
    total_pairs: int
    iterations_run: int
    #: Pool sentences the worklist skipped without attempting (0 on the
    #: naive scan, which attempts everything).
    sentences_skipped: int = 0
    #: Attempts driven by evidence-index wakes rather than fresh arrival.
    index_hits: int = 0


class IncrementalExtractor:
    """Stateful extraction over sentence batches arriving across a session.

    The batch extractor (:class:`SemanticIterativeExtractor`) consumes one
    fixed corpus; this variant keeps the knowledge base, the visible
    snapshot, the de-duplication set and the pool of still-unresolved
    ambiguous sentences alive between :meth:`ingest` calls, so documents
    can arrive over the life of a long-running session.

    Semantics per batch:

    * sentences whose exact surface was seen in *any* earlier batch are
      dropped (session-wide de-duplication, matching
      :meth:`Corpus.deduplicated` over the concatenated stream);
    * unambiguous sentences commit at **iteration 1**: an unambiguous
      extraction is core evidence regardless of when it arrives;
    * ambiguous sentences join the unresolved pool and are resolved
      against the visible snapshot in fresh iterations continuing the
      session-global iteration counter, with the configured
      ``stream_chunks`` arrival schedule applied within the batch.

    Feeding a whole corpus as one batch reproduces
    :meth:`SemanticIterativeExtractor.run` bit-identically — same records,
    same iteration numbers, same log — which is the equivalence the
    streaming service's tests pin.  A batch with no new ambiguous
    sentences skips the idle arrival rounds the batch extractor would
    spin through; that is the one intentional divergence.

    The pool rides the same evidence-indexed worklist as the batch
    extractor: carried-over sentences are re-attempted only when a new
    core commit, resolution or rollback re-extraction makes one of their
    candidate pairs visible, so a batch that adds nothing relevant pays
    nothing for a deep pool.
    """

    def __init__(
        self,
        config: ExtractionConfig | None = None,
        kb: KnowledgeBase | None = None,
        context: RunContext | None = None,
    ) -> None:
        self._config = config or ExtractionConfig()
        self._ctx = context or NULL_CONTEXT
        self._kb = kb or KnowledgeBase()
        self._log = IterationLog()
        self._seen: set[str] = set()
        self._sentences: list[Sentence] = []
        self._pool: dict[int, Sentence] = {}
        self._visible: dict[str, frozenset[str]] = {}
        self._worklist = ResolutionWorklist(self._visible)
        self._iteration = 0
        self._batches = 0

    # ------------------------------------------------------------------
    # State access
    # ------------------------------------------------------------------
    @property
    def kb(self) -> KnowledgeBase:
        """The growing knowledge base."""
        return self._kb

    @property
    def log(self) -> IterationLog:
        """Per-iteration stats across all batches so far."""
        return self._log

    @property
    def batches(self) -> int:
        """Number of batches ingested."""
        return self._batches

    @property
    def iteration(self) -> int:
        """The session-global iteration counter (0 before the first batch)."""
        return self._iteration

    @property
    def worklist(self) -> ResolutionWorklist:
        """The evidence-indexed worklist behind delta-driven resolution."""
        return self._worklist

    def unresolved_sids(self) -> tuple[int, ...]:
        """Sentence ids still waiting for enough visible knowledge."""
        return tuple(sorted(self._pool))

    def corpus(self) -> Corpus:
        """The accumulated, de-duplicated corpus ingested so far."""
        return Corpus(tuple(self._sentences))

    def result(self) -> ExtractionResult:
        """The current state as an :class:`ExtractionResult` view."""
        return ExtractionResult(
            kb=self._kb,
            corpus=self.corpus(),
            log=self._log,
            unresolved_sids=self.unresolved_sids(),
        )

    def restore(
        self,
        sentences: Iterable[Sentence],
        pool_sids: Iterable[int],
        iteration: int,
        batches: int = 0,
    ) -> None:
        """Re-adopt checkpointed session state around an existing KB.

        ``sentences`` is the accumulated de-duplicated corpus;
        ``pool_sids`` names the still-unresolved ambiguous sentences.  The
        visible snapshot is rebuilt from the KB, which is exactly what it
        equals at any batch boundary.  Per-sentence attempt history is not
        checkpointed, so the whole pool is conservatively woken for the
        next batch — spurious attempts are sound (they re-fail exactly as
        the naive scan would), see :mod:`repro.extraction.index`.
        """
        self._sentences = list(sentences)
        self._seen = {s.surface for s in self._sentences}
        wanted = set(pool_sids)
        self._pool = {s.sid: s for s in self._sentences if s.sid in wanted}
        self._visible = {
            concept: self._kb.instances_of(concept)
            for concept in self._kb.concepts()
        }
        self._worklist = ResolutionWorklist(self._visible)
        if self._config.delta_index:
            self._worklist.wake_all(self._pool)
        self._iteration = iteration
        self._batches = batches

    def resync_visible(self, concepts: Iterable[str]) -> None:
        """Refresh the visible snapshot after out-of-band KB mutations.

        The cleaning pass rolls knowledge back underneath the extractor;
        resolution must not keep triggering off removed pairs, so the
        session calls this with the KB's dirty-concept set after every
        clean.  The worklist shrinks its snapshot (and thereby re-arms
        the delta detection for any later re-extraction of a removed
        pair) instead of letting stale index state trigger resolution.
        """
        self._worklist.resync(self._kb, concepts)

    # ------------------------------------------------------------------
    # Ingest
    # ------------------------------------------------------------------
    def ingest(self, sentences: Iterable[Sentence]) -> BatchExtraction:
        """Extract from one batch of sentences and return what it did."""
        with self._ctx.span("extract.ingest", batch=self._batches) as span:
            batch = self._ingest(list(sentences))
            span.add("sentences_seen", batch.sentences_seen)
            span.add("sentences_new", batch.sentences_new)
            span.add("sentences_resolved",
                     batch.core_resolved + batch.ambiguous_resolved)
            span.add("pairs_committed", len(batch.new_pairs))
            span.add("iterations_run", batch.iterations_run)
            span.add("sentences_skipped", batch.sentences_skipped)
            span.add("index_hits", batch.index_hits)
        return batch

    def _ingest(self, raw: list[Sentence]) -> BatchExtraction:
        config = self._config
        ctx = self._ctx
        kb = self._kb
        new: list[Sentence] = []
        for sentence in raw:
            if sentence.surface in self._seen:
                continue
            self._seen.add(sentence.surface)
            new.append(sentence)
        self._sentences.extend(new)
        unambiguous = sorted(
            (s for s in new if not s.is_ambiguous), key=lambda s: s.sid
        )
        ambiguous = sorted(
            (s for s in new if s.is_ambiguous), key=lambda s: s.sid
        )
        new_pairs: list[IsAPair] = []

        # Core commits: unambiguous sentences are iteration-1 evidence.
        grown: set[str] = set()
        for sentence in unambiguous:
            record = kb.add_extraction(
                sid=sentence.sid,
                concept=sentence.concepts[0],
                instances=sentence.instances,
                triggers=(),
                iteration=1,
            )
            grown.add(record.concept)
            for pair in record.produced:
                if kb.count(pair) == 1:
                    new_pairs.append(pair)
        if config.delta_index:
            # Advancing through the worklist wakes pool sentences whose
            # candidate pairs the fresh core evidence just made visible.
            self._worklist.commit_deltas(kb, grown)
        else:
            for concept in grown:
                self._visible[concept] = kb.instances_of(concept)
        if self._iteration == 0:
            self._iteration = 1
            self._log.record(
                iteration=1,
                sentences_resolved=len(unambiguous),
                new_pairs=len(kb),
                total_pairs=len(kb),
            )
            ctx.emit(
                ExtractionIteration(
                    iteration=1,
                    sentences_scanned=len(unambiguous),
                    sentences_resolved=len(unambiguous),
                    new_pairs=len(kb),
                    total_pairs=len(kb),
                    trigger_fanout=0,
                )
            )

        # Resolution: the batch's ambiguous sentences arrive chunked (as
        # in the batch extractor), the carried-over pool is attemptable
        # immediately.
        base = self._iteration
        if config.delta_index:
            resolved_total, last_iteration, skipped, hits = (
                self._resolve_ambiguous_delta(ambiguous, new_pairs)
            )
        else:
            resolved_total, last_iteration = self._resolve_ambiguous_naive(
                ambiguous, new_pairs
            )
            skipped = hits = 0

        self._iteration = last_iteration
        self._batches += 1
        return BatchExtraction(
            index=self._batches - 1,
            sentences_seen=len(raw),
            sentences_new=len(new),
            core_resolved=len(unambiguous),
            ambiguous_resolved=resolved_total,
            new_pairs=tuple(new_pairs),
            total_pairs=len(kb),
            iterations_run=last_iteration - base,
            sentences_skipped=skipped,
            index_hits=hits,
        )

    def _resolve_ambiguous_delta(
        self, ambiguous: list[Sentence], new_pairs: list[IsAPair]
    ) -> tuple[int, int, int, int]:
        """Worklist-driven resolution rounds for one batch.

        Returns ``(resolved_total, last_iteration, skipped, hits)``.
        """
        config = self._config
        ctx = self._ctx
        kb = self._kb
        visible = self._visible
        worklist = self._worklist
        pending = self._pool
        base = self._iteration
        chunks_used = config.stream_chunks if ambiguous else 0
        arrival = _arrival_schedule(ambiguous, config.stream_chunks, base + 1)
        arrivals = _arrival_buckets(ambiguous, arrival, base + 1)
        arrived = len(pending)
        for sentence in ambiguous:
            pending[sentence.sid] = sentence
        resolved_total = 0
        skipped_total = 0
        hits_total = 0
        last_iteration = base
        for iteration in range(base + 1, base + config.max_iterations):
            if not pending:
                break
            pairs_before = len(kb)
            newly = arrivals.pop(iteration, ())
            arrived += len(newly)
            woken = worklist.take_woken(pending)
            hits = len(woken)
            attempt = sorted({s.sid for s in newly} | woken)
            resolved_count = 0
            fanout = 0
            grown: set[str] = set()
            with ctx.span("extract.iteration", iteration=iteration) as span:
                for sid in attempt:
                    sentence = pending[sid]
                    resolution = resolve(
                        sentence,
                        visible,
                        policy=config.policy,
                        min_evidence=config.min_evidence,
                    )
                    if resolution is None:
                        worklist.watch(sentence)
                        continue
                    record = kb.add_extraction(
                        sid=sid,
                        concept=resolution.concept,
                        instances=sentence.instances,
                        triggers=resolution.triggers,
                        iteration=iteration,
                    )
                    for pair in record.produced:
                        if kb.count(pair) == 1:
                            new_pairs.append(pair)
                    del pending[sid]
                    worklist.resolved(sid)
                    grown.add(resolution.concept)
                    fanout += len(resolution.triggers)
                    resolved_count += 1
                scanned = len(attempt)
                skipped = arrived - scanned
                span.add("sentences_scanned", scanned)
                span.add("sentences_resolved", resolved_count)
                span.add("pairs_committed", len(kb) - pairs_before)
                span.add("trigger_fanout", fanout)
                span.add("sentences_skipped", skipped)
                span.add("index_hits", hits)
            arrived -= resolved_count
            skipped_total += skipped
            hits_total += hits
            last_iteration = iteration
            ctx.emit(
                ExtractionIteration(
                    iteration=iteration,
                    sentences_scanned=scanned,
                    sentences_resolved=resolved_count,
                    new_pairs=len(kb) - pairs_before,
                    total_pairs=len(kb),
                    trigger_fanout=fanout,
                    sentences_skipped=skipped,
                    index_hits=hits,
                )
            )
            all_arrived = iteration >= base + chunks_used
            if resolved_count == 0 and all_arrived:
                break
            worklist.commit_deltas(kb, grown)
            self._log.record(
                iteration=iteration,
                sentences_resolved=resolved_count,
                new_pairs=len(kb) - pairs_before,
                total_pairs=len(kb),
            )
            resolved_total += resolved_count
        # Sentences whose arrival round never ran (the loop broke or hit
        # max_iterations first) have never been attempted and carry no
        # index entries; wake them so the next batch's first round
        # attempts them, exactly as the naive scan would.
        for bucket in arrivals.values():
            worklist.wake_all(
                s.sid for s in bucket if s.sid in pending
            )
        return resolved_total, last_iteration, skipped_total, hits_total

    def _resolve_ambiguous_naive(
        self, ambiguous: list[Sentence], new_pairs: list[IsAPair]
    ) -> tuple[int, int]:
        """The reference full-scan rounds for one batch."""
        config = self._config
        ctx = self._ctx
        kb = self._kb
        base = self._iteration
        chunks_used = config.stream_chunks if ambiguous else 0
        arrival = _arrival_schedule(ambiguous, config.stream_chunks, base + 1)
        pool = [self._pool[sid] for sid in sorted(self._pool)]
        unresolved = sorted(pool + ambiguous, key=lambda s: s.sid)
        resolved_total = 0
        last_iteration = base
        for iteration in range(base + 1, base + config.max_iterations):
            if not unresolved:
                break
            pairs_before = len(kb)
            still_unresolved = []
            resolved_count = 0
            scanned = 0
            fanout = 0
            grown: set[str] = set()
            with ctx.span("extract.iteration", iteration=iteration) as span:
                for sentence in unresolved:
                    if (
                        arrival is not None
                        and arrival.get(sentence.sid, 0) > iteration
                    ):
                        still_unresolved.append(sentence)
                        continue
                    scanned += 1
                    resolution = resolve(
                        sentence,
                        self._visible,
                        policy=config.policy,
                        min_evidence=config.min_evidence,
                    )
                    if resolution is None:
                        still_unresolved.append(sentence)
                        continue
                    record = kb.add_extraction(
                        sid=sentence.sid,
                        concept=resolution.concept,
                        instances=sentence.instances,
                        triggers=resolution.triggers,
                        iteration=iteration,
                    )
                    for pair in record.produced:
                        if kb.count(pair) == 1:
                            new_pairs.append(pair)
                    grown.add(resolution.concept)
                    fanout += len(resolution.triggers)
                    resolved_count += 1
                span.add("sentences_scanned", scanned)
                span.add("sentences_resolved", resolved_count)
                span.add("pairs_committed", len(kb) - pairs_before)
                span.add("trigger_fanout", fanout)
            unresolved = still_unresolved
            last_iteration = iteration
            ctx.emit(
                ExtractionIteration(
                    iteration=iteration,
                    sentences_scanned=scanned,
                    sentences_resolved=resolved_count,
                    new_pairs=len(kb) - pairs_before,
                    total_pairs=len(kb),
                    trigger_fanout=fanout,
                )
            )
            all_arrived = iteration >= base + chunks_used
            if resolved_count == 0 and all_arrived:
                break
            for concept in grown:
                self._visible[concept] = kb.instances_of(concept)
            self._log.record(
                iteration=iteration,
                sentences_resolved=resolved_count,
                new_pairs=len(kb) - pairs_before,
                total_pairs=len(kb),
            )
            resolved_total += resolved_count
        self._pool = {s.sid: s for s in unresolved}
        return resolved_total, last_iteration
