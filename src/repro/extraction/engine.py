"""The semantic-based iterative extraction engine (§1, §2.1 of the paper).

Iteration 1 extracts only from unambiguous sentences — these become the
*core pairs*.  Every later iteration takes a snapshot of the knowledge
learned so far, tries to resolve each still-unresolved ambiguous sentence
against that snapshot, and commits the winners with full provenance
(sentence id, chosen concept, triggering pairs).  The loop stops when an
iteration resolves nothing or ``max_iterations`` is reached.

Snapshot semantics match the paper: knowledge learned *during* iteration
``i`` only becomes usable in iteration ``i + 1``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..config import ExtractionConfig
from ..corpus.corpus import Corpus
from ..kb.snapshot import IterationLog
from ..kb.store import KnowledgeBase
from .trigger import resolve

__all__ = ["ExtractionResult", "SemanticIterativeExtractor"]


@dataclass
class ExtractionResult:
    """Everything an extraction run produced."""

    kb: KnowledgeBase
    corpus: Corpus
    log: IterationLog = field(default_factory=IterationLog)
    unresolved_sids: tuple[int, ...] = ()

    @property
    def iterations(self) -> int:
        """Number of iterations that ran (including iteration 1)."""
        return self.log.iterations

    @property
    def total_pairs(self) -> int:
        """Distinct pairs currently alive in the knowledge base."""
        return len(self.kb)


class SemanticIterativeExtractor:
    """Run iterative, knowledge-triggered isA extraction over a corpus."""

    def __init__(self, config: ExtractionConfig | None = None) -> None:
        self._config = config or ExtractionConfig()

    def run(self, corpus: Corpus) -> ExtractionResult:
        """Extract from a (deduplicated) corpus and return the result."""
        config = self._config
        deduped = corpus.deduplicated()
        kb = KnowledgeBase()
        log = IterationLog()

        # Iteration 1: unambiguous sentences only.
        unambiguous = sorted(deduped.unambiguous(), key=lambda s: s.sid)
        for sentence in unambiguous:
            kb.add_extraction(
                sid=sentence.sid,
                concept=sentence.concepts[0],
                instances=sentence.instances,
                triggers=(),
                iteration=1,
            )
        visible: dict[str, frozenset[str]] = {
            concept: kb.instances_of(concept) for concept in kb.concepts()
        }
        log.record(
            iteration=1,
            sentences_resolved=len(unambiguous),
            new_pairs=len(kb),
            total_pairs=len(kb),
        )

        # Iterations 2..n: resolve ambiguous sentences against the snapshot.
        # With stream_chunks > 1 the ambiguous stream arrives incrementally
        # (modelling the paper's cluster scanning 326 M sentences while the
        # knowledge base grows): chunk ``i`` first becomes attemptable in
        # iteration ``2 + i``.
        ambiguous = sorted(deduped.ambiguous(), key=lambda s: s.sid)
        chunk_size = max(1, -(-len(ambiguous) // config.stream_chunks))
        arrival = {
            sentence.sid: 2 + index // chunk_size
            for index, sentence in enumerate(ambiguous)
        }
        unresolved = ambiguous
        for iteration in range(2, config.max_iterations + 1):
            pairs_before = len(kb)
            still_unresolved = []
            resolved_count = 0
            grown: set[str] = set()
            for sentence in unresolved:
                if arrival[sentence.sid] > iteration:
                    still_unresolved.append(sentence)
                    continue
                resolution = resolve(
                    sentence,
                    visible,
                    policy=config.policy,
                    min_evidence=config.min_evidence,
                )
                if resolution is None:
                    still_unresolved.append(sentence)
                    continue
                kb.add_extraction(
                    sid=sentence.sid,
                    concept=resolution.concept,
                    instances=sentence.instances,
                    triggers=resolution.triggers,
                    iteration=iteration,
                )
                grown.add(resolution.concept)
                resolved_count += 1
            unresolved = still_unresolved
            all_arrived = iteration >= 1 + config.stream_chunks
            if resolved_count == 0 and all_arrived:
                break
            # Re-snapshot only the concepts that gained instances this
            # iteration; extraction never removes knowledge, so every other
            # concept's snapshot is still current.
            for concept in grown:
                visible[concept] = kb.instances_of(concept)
            log.record(
                iteration=iteration,
                sentences_resolved=resolved_count,
                new_pairs=len(kb) - pairs_before,
                total_pairs=len(kb),
            )
            if not unresolved:
                break

        return ExtractionResult(
            kb=kb,
            corpus=deduped,
            log=log,
            unresolved_sids=tuple(s.sid for s in unresolved),
        )
