"""Surface-level Hearst pattern parsing.

The extraction engine consumes structured candidates, but those candidates
must be derivable from the raw sentence text — this module is the parser
that does it, and round-trip tests assert that parsing a rendered surface
recovers exactly the candidate structure the generator recorded.

The parser is deliberately *naive* in the same way large-scale Hearst
extractors are: ``X other than Y such as Z`` attaches ``such as`` to the
nearest noun ``Y`` and yields the wrong candidate ``(Z isA Y)`` — the
paper's first source of Accidental DPs.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Iterable

from ..corpus.templates import LEADINS, pluralize

__all__ = ["ParsedSentence", "HearstParser", "naive_singularize"]

_CUE = " such as "
_FROM = " from "
_OTHER_THAN = " other than "
# Longest-first so e.g. "some of the " is stripped before "some ".
_LEADINS_BY_LENGTH = tuple(sorted(LEADINS, key=len, reverse=True))


@dataclass(frozen=True)
class ParsedSentence:
    """Candidate structure recovered from a surface string."""

    concepts: tuple[str, ...]
    instances: tuple[str, ...]


def naive_singularize(plural: str) -> str:
    """Best-effort plural → singular for the head word.

    Used only when a surface is not covered by the parser's lexicon.

    >>> naive_singularize("countries")
    'country'
    >>> naive_singularize("dogs")
    'dog'
    """
    head = plural.rsplit(" ", 1)[-1]
    prefix = plural[: len(plural) - len(head)]
    if head.endswith("ies") and len(head) > 3:
        singular = head[:-3] + "y"
    elif head.endswith(("ses", "xes", "zes", "ches", "shes")):
        singular = head[:-2]
    elif head.endswith("s") and not head.endswith("ss"):
        singular = head[:-1]
    else:
        singular = head
    return prefix + singular


class HearstParser:
    """Parse ``such as`` sentences back into candidate structures.

    Parameters
    ----------
    concept_lexicon:
        Known concept surfaces (singular); their plural forms are derived
        with the same rules the renderer uses.
    entity_lexicon:
        Known instance surfaces; needed to recover the mis-parse shape,
        where an *instance* plays the concept role.
    """

    def __init__(
        self,
        concept_lexicon: Iterable[str] = (),
        entity_lexicon: Iterable[str] = (),
    ) -> None:
        self._plural_to_name: dict[str, str] = {}
        for name in list(entity_lexicon) + list(concept_lexicon):
            self._plural_to_name[pluralize(name)] = name

    def parse(self, surface: str) -> ParsedSentence | None:
        """Parse one sentence; ``None`` when no Hearst cue is present."""
        cue_at = surface.rfind(_CUE)
        if cue_at < 0:
            return None
        prefix = surface[:cue_at]
        instance_text = surface[cue_at + len(_CUE):].strip()
        instances = self._split_instances(instance_text)
        if not instances:
            return None
        if _OTHER_THAN in prefix:
            # Naive attachment: `such as` binds to the excluded entity.
            _, _, excluded = prefix.rpartition(_OTHER_THAN)
            return ParsedSentence(
                concepts=(self._to_name(excluded),), instances=instances
            )
        if _FROM in prefix:
            head, _, modifier = prefix.rpartition(_FROM)
            return ParsedSentence(
                concepts=(self._to_name(modifier), self._to_name(head)),
                instances=instances,
            )
        return ParsedSentence(
            concepts=(self._to_name(prefix),), instances=instances
        )

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    @staticmethod
    def _split_instances(text: str) -> tuple[str, ...]:
        text = text.rstrip(".")
        head, separator, last = text.rpartition(" and ")
        parts = head.split(", ") if separator else [text]
        if separator:
            parts.append(last)
        return tuple(part.strip() for part in parts if part.strip())

    def _to_name(self, noun_phrase: str) -> str:
        phrase = noun_phrase.strip()
        # Longest suffix present in the lexicon wins (drops any lead-in).
        words = phrase.split(" ")
        for start in range(len(words)):
            candidate = " ".join(words[start:])
            if candidate in self._plural_to_name:
                return self._plural_to_name[candidate]
        for leadin in _LEADINS_BY_LENGTH:
            if leadin and phrase.startswith(leadin):
                phrase = phrase[len(leadin):]
                break
        return naive_singularize(phrase)
