"""Candidate-concept resolution policies.

Given an ambiguous sentence and the knowledge visible at the start of the
iteration, a policy decides which candidate concept (if any) the sentence
should be resolved to, and which known pairs *triggered* that decision.

* ``nearest`` — the paper's observed Probase behaviour: *such as* prefers
  the syntactically nearest candidate; the first candidate (in proximity
  order) with enough known instances wins.  This is the drift-prone default
  and reproduces both examples of Fig. 1(b): it fixes
  ``animals from african countries such as giraffe and lion`` (the nearest
  candidate has no evidence, so knowledge falls through to *animal*) and it
  mis-resolves ``food from animals such as pork, beef and chicken`` once
  *(chicken isA animal)* is known.
* ``max_evidence`` — picks the candidate with the most known instances
  (ties broken by proximity); less drift-prone, offered for ablation.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Mapping

from ..corpus.sentence import Sentence
from ..errors import ExtractionError
from ..kb.pair import IsAPair

__all__ = ["Resolution", "resolve", "POLICIES"]


@dataclass(frozen=True)
class Resolution:
    """The outcome of resolving one ambiguous sentence."""

    concept: str
    triggers: tuple[IsAPair, ...]


def _matches(
    sentence: Sentence, concept: str, known: Mapping[str, frozenset[str]]
) -> tuple[str, ...]:
    visible = known.get(concept)
    if not visible:
        return ()
    return tuple(e for e in sentence.instances if e in visible)


def _resolve_nearest(
    sentence: Sentence,
    known: Mapping[str, frozenset[str]],
    min_evidence: int,
) -> Resolution | None:
    for concept in sentence.concepts:
        matched = _matches(sentence, concept, known)
        if len(matched) >= min_evidence:
            triggers = tuple(IsAPair(concept, e) for e in matched)
            return Resolution(concept=concept, triggers=triggers)
    return None


def _resolve_max_evidence(
    sentence: Sentence,
    known: Mapping[str, frozenset[str]],
    min_evidence: int,
) -> Resolution | None:
    best: Resolution | None = None
    best_count = 0
    for concept in sentence.concepts:  # proximity order breaks ties
        matched = _matches(sentence, concept, known)
        if len(matched) >= min_evidence and len(matched) > best_count:
            best_count = len(matched)
            best = Resolution(
                concept=concept,
                triggers=tuple(IsAPair(concept, e) for e in matched),
            )
    return best


POLICIES = {
    "nearest": _resolve_nearest,
    "max_evidence": _resolve_max_evidence,
}


def resolve(
    sentence: Sentence,
    known: Mapping[str, frozenset[str]],
    policy: str = "nearest",
    min_evidence: int = 1,
) -> Resolution | None:
    """Resolve an ambiguous sentence against visible knowledge.

    Returns ``None`` when no candidate has enough evidence yet (the
    sentence stays unresolved and is retried next iteration).
    """
    try:
        chosen = POLICIES[policy]
    except KeyError:
        raise ExtractionError(f"unknown resolution policy: {policy!r}") from None
    if min_evidence < 1:
        raise ExtractionError("min_evidence must be >= 1")
    return chosen(sentence, known, min_evidence)
