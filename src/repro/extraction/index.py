"""Evidence-indexed worklist for semi-naive, delta-driven resolution.

The naive iterative extractor re-attempts every unresolved ambiguous
sentence each iteration, costing O(iterations × pool × candidates) even
when almost nothing became visible.  This module is the substrate that
avoids it, the way semi-naive evaluation does in Datalog engines: only
*deltas* of the visible snapshot propagate into new resolution attempts.

Two pieces:

* :class:`EvidenceIndex` — an inverted index mapping every candidate
  ``(concept, instance)`` pair of every pending sentence to the sentence
  ids waiting on it;
* :class:`ResolutionWorklist` — the per-concept visible-snapshot delta
  tracker plus the wake set.  When a pair transitions from not-visible to
  visible (a new extraction, or a re-extraction after a cleaning
  rollback), every sentence indexed under it is woken for the next
  iteration; everything else is skipped without calling ``resolve()``.

Equivalence argument (pinned by ``tests/extraction/test_delta_equivalence``):

*Completeness.*  Resolution of a sentence ``s`` is a function of the
matched sets ``M(c) = visible[c] ∩ instances(s)`` per candidate concept
``c``; ``s`` resolves iff some ``|M(c)| >= min_evidence``.  Suppose ``s``
failed an attempt against snapshot ``V_a`` and would resolve against a
later snapshot ``V_T``.  The resolving candidate has
``|M_T(c)| >= min_evidence > |M_a(c)|``, so ``M_T(c) ⊄ M_a(c)`` — some
instance ``e ∈ M_T(c) \\ M_a(c)`` exists, i.e. ``(c, e)`` was not visible
at the failed attempt and is visible at ``T``.  That transition passed
through :meth:`ResolutionWorklist.commit_deltas` (extraction commits) or
:meth:`ResolutionWorklist.resync` (out-of-band mutations) and woke ``s``,
because every candidate pair of a pending sentence is indexed.  Hence no
resolvable sentence is ever skipped.

*Soundness of spurious wakes.*  By the contrapositive, a pending sentence
that was *not* woken since its last failed attempt cannot resolve — so a
conservatively woken sentence (e.g. the whole pool after a checkpoint
restore, where per-sentence attempt history is unknown) re-attempts,
fails exactly as the naive scan would, and commits nothing.  Extra
attempts never change results; missed wakes are the only hazard, and
completeness rules them out.  Resolution order stays sid-sorted within an
iteration and the full matched set is recomputed at attempt time, so
records, triggers, iteration numbers and logs are bit-identical to the
naive scan.

Rollback integration: cleaning passes shrink the snapshot through
:meth:`ResolutionWorklist.resync`, so a rolled-back pair is forgotten —
resolution can no longer trigger off it — and a later re-extraction of
the same pair registers as a fresh transition that wakes its waiters.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping

from ..corpus.sentence import Sentence
from ..kb.store import KnowledgeBase

__all__ = ["EvidenceIndex", "ResolutionWorklist"]

_EMPTY_SET: frozenset[int] = frozenset()


class EvidenceIndex:
    """Inverted index: candidate ``(concept, instance)`` → pending sids.

    Entries are registered per sentence (every candidate concept crossed
    with every candidate instance) and dropped when the sentence resolves
    or leaves the pool.  The index is deliberately *visibility-blind*: it
    answers "who could this pair ever matter to", and the worklist decides
    which pair transitions actually fire.
    """

    __slots__ = ("_waiting", "_pairs_by_sid")

    def __init__(self) -> None:
        self._waiting: dict[tuple[str, str], set[int]] = {}
        self._pairs_by_sid: dict[int, tuple[tuple[str, str], ...]] = {}

    def __len__(self) -> int:
        return len(self._pairs_by_sid)

    def __contains__(self, sid: int) -> bool:
        return sid in self._pairs_by_sid

    @property
    def pairs_indexed(self) -> int:
        """Number of distinct candidate pairs with at least one waiter."""
        return len(self._waiting)

    def watch(self, sentence: Sentence) -> None:
        """Register every candidate pair of a pending sentence (idempotent)."""
        sid = sentence.sid
        if sid in self._pairs_by_sid:
            return
        pairs = tuple(
            (concept, instance)
            for concept in sentence.concepts
            for instance in sentence.instances
        )
        self._pairs_by_sid[sid] = pairs
        waiting = self._waiting
        for pair in pairs:
            entry = waiting.get(pair)
            if entry is None:
                waiting[pair] = {sid}
            else:
                entry.add(sid)

    def discard(self, sid: int) -> None:
        """Drop a sentence's entries (it resolved or left the pool)."""
        pairs = self._pairs_by_sid.pop(sid, None)
        if pairs is None:
            return
        waiting = self._waiting
        for pair in pairs:
            entry = waiting.get(pair)
            if entry is not None:
                entry.discard(sid)
                if not entry:
                    del waiting[pair]

    def waiters(self, concept: str, instance: str) -> frozenset[int]:
        """Pending sids with ``(concept, instance)`` among their candidates."""
        entry = self._waiting.get((concept, instance))
        return frozenset(entry) if entry else _EMPTY_SET


class ResolutionWorklist:
    """Delta tracker + evidence index + wake set driving resolution.

    ``visible`` is the extractor's per-concept snapshot dict, shared by
    reference: the worklist is its single writer, so every snapshot
    advance is observed and turned into wake events.  The wake set
    accumulated by :meth:`commit_deltas` / :meth:`resync` /
    :meth:`wake_all` is drained once per iteration via :meth:`take_woken`.
    """

    __slots__ = ("index", "visible", "_woken")

    def __init__(self, visible: dict[str, frozenset[str]] | None = None) -> None:
        self.index = EvidenceIndex()
        self.visible: dict[str, frozenset[str]] = (
            visible if visible is not None else {}
        )
        self._woken: set[int] = set()

    # ------------------------------------------------------------------
    # Sentence lifecycle
    # ------------------------------------------------------------------
    def watch(self, sentence: Sentence) -> None:
        """Index a sentence that just failed an attempt and stays pending."""
        self.index.watch(sentence)

    def resolved(self, sid: int) -> None:
        """Forget a sentence that resolved (or left the pool)."""
        self.index.discard(sid)
        self._woken.discard(sid)

    def wake_all(self, sids: Iterable[int]) -> None:
        """Force sids onto the wake set.

        The conservative path for state whose attempt history is unknown
        (checkpoint restore, arrival rounds that never ran): spurious
        attempts are sound, see the module docstring.
        """
        self._woken.update(sids)

    @property
    def wake_set_size(self) -> int:
        """Sentences currently queued for re-attempt."""
        return len(self._woken)

    def take_woken(self, pending: Mapping[int, Sentence]) -> set[int]:
        """Drain the wake set, keeping only sids still pending."""
        woken = self._woken
        if not woken:
            return set()
        ready = {sid for sid in woken if sid in pending}
        woken.clear()
        return ready

    # ------------------------------------------------------------------
    # Snapshot advancement
    # ------------------------------------------------------------------
    def commit_deltas(self, kb: KnowledgeBase, concepts: Iterable[str]) -> None:
        """Advance the snapshot for grown concepts, waking their waiters.

        Every instance alive in the KB but absent from the tracked
        snapshot is a not-visible → visible transition; all sentences
        indexed under that pair join the wake set for the next iteration.
        """
        waiting = self.index._waiting
        visible = self.visible
        woken = self._woken
        for concept in concepts:
            fresh = kb.instances_of(concept)
            old = visible.get(concept)
            new_instances = fresh if old is None else fresh - old
            for instance in new_instances:
                entry = waiting.get((concept, instance))
                if entry:
                    woken |= entry
            visible[concept] = fresh

    def resync(self, kb: KnowledgeBase, concepts: Iterable[str]) -> None:
        """Refresh the snapshot after out-of-band KB mutations.

        The cleaning pass rolls knowledge back underneath the extractor;
        shrinking the snapshot here means (a) resolution can no longer
        trigger off removed pairs and (b) a later re-extraction of a
        removed pair is recognised as a fresh transition that wakes its
        waiters instead of being silently treated as already-known.
        Additions are woken too, defensively — rollback only removes, but
        the completeness invariant must hold for any mutation.
        """
        waiting = self.index._waiting
        visible = self.visible
        woken = self._woken
        for concept in concepts:
            fresh = kb.instances_of(concept)
            old = visible.get(concept)
            if old:
                added = fresh - old
            else:
                added = fresh
            for instance in added:
                entry = waiting.get((concept, instance))
                if entry:
                    woken |= entry
            if fresh:
                visible[concept] = fresh
            else:
                visible.pop(concept, None)
