"""Semantic-based iterative extraction substrate."""

from .engine import ExtractionResult, SemanticIterativeExtractor
from .pattern import HearstParser, ParsedSentence, naive_singularize
from .trigger import POLICIES, Resolution, resolve

__all__ = [
    "ExtractionResult",
    "HearstParser",
    "POLICIES",
    "ParsedSentence",
    "Resolution",
    "SemanticIterativeExtractor",
    "naive_singularize",
    "resolve",
]
