"""Semantic-based iterative extraction substrate."""

from .engine import (
    BatchExtraction,
    ExtractionResult,
    IncrementalExtractor,
    SemanticIterativeExtractor,
)
from .pattern import HearstParser, ParsedSentence, naive_singularize
from .trigger import POLICIES, Resolution, resolve

__all__ = [
    "BatchExtraction",
    "ExtractionResult",
    "HearstParser",
    "IncrementalExtractor",
    "POLICIES",
    "ParsedSentence",
    "Resolution",
    "SemanticIterativeExtractor",
    "naive_singularize",
    "resolve",
]
