"""Semantic-based iterative extraction substrate."""

from .engine import (
    BatchExtraction,
    ExtractionResult,
    IncrementalExtractor,
    SemanticIterativeExtractor,
)
from .index import EvidenceIndex, ResolutionWorklist
from .pattern import HearstParser, ParsedSentence, naive_singularize
from .trigger import POLICIES, Resolution, resolve

__all__ = [
    "BatchExtraction",
    "EvidenceIndex",
    "ExtractionResult",
    "HearstParser",
    "IncrementalExtractor",
    "POLICIES",
    "ParsedSentence",
    "Resolution",
    "ResolutionWorklist",
    "SemanticIterativeExtractor",
    "naive_singularize",
    "resolve",
]
