"""The analysis cache: per-concept reuse across detection refits.

PR 1 made *ranking* incremental by keying per-concept scores on the KB's
mutation version counters.  This module extends the same discipline
through every other layer the DP cleaner's detection callback rebuilds
each round — exclusion index, feature matrices, verified samples,
evidenced-correct sets, seed labels, and (via
:class:`~repro.learning.DetectorRefitCache`) KPCA transforms and manifold
regularisers — so round *k*+1 recomputes only what round *k*'s rollbacks
invalidated.

Correctness discipline
----------------------
Every cached artefact is a deterministic function of the state named by
its key, so a cache hit returns the *identical object* a recomputation
would produce (bit-identical arrays).  The keys:

* **exclusion index** — refreshed in place through
  :meth:`MutualExclusionIndex.refresh`, whose property tests pin
  refresh == rebuild.
* **concept matrix of C** — a *dependency signature*: the sorted tuple of
  ``(D, kb.concept_version(D), exclusion.relations_version(D))`` over C
  and every concept sharing an instance with C.  The cross-concept edge
  exists because feature ``f2`` counts exclusive concepts containing each
  instance: a rollback under D can change C's features without touching C
  itself, so invalidation flows through the KB's instance → concepts
  reverse index (:meth:`KnowledgeBase.concepts_sharing`).
* **verified sample / evidenced-correct set of C** — ``concept_version(C)``
  (the supplied sampler must be a pure function of the KB's per-concept
  state, which the pipeline's per-concept RNG substreams guarantee).
* **seed labels of C** — the matrix signature, widened with the concepts
  claiming the *sub-instances of C's evidenced-correct instances* (the
  only subs the rules walk; RULE 1 consults the exclusive concepts of
  each, and subs need not be alive under C).  The sub-instance set itself
  is a pure function of ``concept_version(C)``, so it is stored with the
  entry and only its claimants are re-versioned on lookup — the expensive
  sub walk happens solely on misses, which relabel anyway.

One :class:`AnalysisCache` serves many knowledge bases (a pipeline hands
out one KB per cleaner); state is keyed per KB by weak reference, like the
ranker's score cache.
"""

from __future__ import annotations

import weakref
from collections.abc import Callable, Iterable

import numpy as np

from ..concepts.exclusion import MutualExclusionIndex
from ..config import LabelingConfig, SimilarityConfig
from ..features.extractor import FeatureExtractor
from ..features.matrix import ConceptMatrix
from ..kb.pair import IsAPair
from ..kb.store import KnowledgeBase
from ..labeling.evidence import EvidenceIndex
from ..labeling.rules import SeedLabeler, SeedLabelSet
from ..labeling.labels import SeedLabel
from ..learning.detector import DetectorRefitCache
from ..runtime.context import NULL_CONTEXT, RunContext

__all__ = ["AnalysisCache"]

#: ((concept, kb version, relations version), ...) — sorted by concept.
Signature = tuple[tuple[str, int, int], ...]


class _KBState:
    """Cached analysis state for one knowledge base."""

    __slots__ = ("exclusion", "matrices", "verified", "correct", "seeds",
                 "refit", "signatures")

    def __init__(self) -> None:
        self.exclusion: MutualExclusionIndex | None = None
        self.matrices: dict[str, tuple[Signature, ConceptMatrix]] = {}
        #: ((kb version, exclusion epoch), {concept: signature}) — both
        #: counters are constant within one refit, so matrices() and
        #: seeds() share one signature computation per concept per round.
        self.signatures: tuple[tuple[int, int], dict[str, Signature]] | None = (
            None
        )
        self.verified: dict[str, tuple[int, frozenset[IsAPair]]] = {}
        self.correct: dict[str, tuple[int, frozenset[str]]] = {}
        #: concept → (base signature, sub-instances of evidenced-correct
        #: instances, signature of the subs' claimant concepts, labels).
        self.seeds: dict[
            str, tuple[Signature, frozenset[str], Signature, list[SeedLabel]]
        ] = {}
        self.refit = DetectorRefitCache()


class AnalysisCache:
    """Per-concept, version-keyed caching for the detection-refit pipeline.

    The cleaner's detection callback and the cleaner itself share one
    instance (like they already share the ranker), so the exclusion index
    built for detection is the one the cleaner's guards query.
    """

    def __init__(
        self,
        similarity: SimilarityConfig | None = None,
        context: RunContext | None = None,
    ) -> None:
        self._similarity = similarity or SimilarityConfig()
        # Instrumentation only (hit/miss/refresh counters per cache
        # family); the context never influences what the cache returns.
        self._ctx = context or NULL_CONTEXT
        self._states: weakref.WeakKeyDictionary[KnowledgeBase, _KBState] = (
            weakref.WeakKeyDictionary()
        )

    def _state(self, kb: KnowledgeBase) -> _KBState:
        state = self._states.get(kb)
        if state is None:
            state = _KBState()
            self._states[kb] = state
        return state

    # ------------------------------------------------------------------
    # Exclusion
    # ------------------------------------------------------------------
    def exclusion(self, kb: KnowledgeBase) -> MutualExclusionIndex:
        """The (incrementally refreshed) exclusion index for ``kb``."""
        state = self._state(kb)
        if state.exclusion is None:
            state.exclusion = MutualExclusionIndex(kb, self._similarity)
            self._ctx.count("analysis.exclusion.build")
        else:
            state.exclusion.refresh()
            self._ctx.count("analysis.exclusion.refresh")
        return state.exclusion

    # ------------------------------------------------------------------
    # Feature matrices
    # ------------------------------------------------------------------
    def matrices(
        self,
        kb: KnowledgeBase,
        concepts: Iterable[str],
        features: FeatureExtractor,
    ) -> dict[str, ConceptMatrix]:
        """Concept matrices, rebuilt only where the signature moved.

        ``features`` must be built over this cache's exclusion index for
        the signatures to be sound.  When a rebuilt matrix turns out
        byte-identical to the cached one (a neighbour's version moved
        without actually changing C's features), the *old object* is kept
        so downstream identity-keyed caches (transforms, manifolds) still
        hit.
        """
        state = self._state(kb)
        exclusion = state.exclusion
        if exclusion is None:
            raise RuntimeError("call exclusion() before matrices()")
        result: dict[str, ConceptMatrix] = {}
        ctx = self._ctx
        for concept in concepts:
            signature = self._matrix_signature(kb, exclusion, concept, state)
            entry = state.matrices.get(concept)
            if entry is not None and entry[0] == signature:
                ctx.count("analysis.matrices.hit")
                result[concept] = entry[1]
                continue
            ctx.count("analysis.matrices.miss")
            names, x = features.feature_matrix(concept)
            matrix = ConceptMatrix(concept=concept, instances=names, x=x)
            if (
                entry is not None
                and entry[1].instances == matrix.instances
                and np.array_equal(entry[1].x, matrix.x)
            ):
                ctx.count("analysis.matrices.identical_rebuild")
                matrix = entry[1]
            state.matrices[concept] = (signature, matrix)
            result[concept] = matrix
        return result

    def _matrix_signature(
        self,
        kb: KnowledgeBase,
        exclusion: MutualExclusionIndex,
        concept: str,
        state: _KBState,
    ) -> Signature:
        key = (kb.version, exclusion.epoch)
        memo = state.signatures
        if memo is None or memo[0] != key:
            memo = (key, {})
            state.signatures = memo
        cached = memo[1].get(concept)
        if cached is not None:
            return cached
        instances = kb.instances_of(concept)
        neighbors = kb.concepts_sharing(instances)
        neighbors.add(concept)
        relations = exclusion.relations_version
        version = kb.concept_version
        signature = tuple(
            (name, version(name), relations(name))
            for name in sorted(neighbors)
        )
        memo[1][concept] = signature
        return signature

    # ------------------------------------------------------------------
    # Verified sample
    # ------------------------------------------------------------------
    def verified(
        self,
        kb: KnowledgeBase,
        concepts: Iterable[str],
        sampler: Callable[[KnowledgeBase, str], frozenset[IsAPair]],
    ) -> frozenset[IsAPair]:
        """Union of per-concept verified samples, re-drawn only when dirty.

        ``sampler(kb, concept)`` must be a pure function of the KB's
        current per-concept state (the pipeline uses one RNG substream
        per concept, re-seeded identically on every call).
        """
        state = self._state(kb)
        ctx = self._ctx
        union: set[IsAPair] = set()
        for concept in concepts:
            version = kb.concept_version(concept)
            entry = state.verified.get(concept)
            if entry is None or entry[0] != version:
                ctx.count("analysis.verified.miss")
                entry = (version, sampler(kb, concept))
                state.verified[concept] = entry
            else:
                ctx.count("analysis.verified.hit")
            union |= entry[1]
        return frozenset(union)

    # ------------------------------------------------------------------
    # Evidence + seeds
    # ------------------------------------------------------------------
    def evidence(
        self,
        kb: KnowledgeBase,
        config: LabelingConfig,
        verified: frozenset[IsAPair],
    ) -> EvidenceIndex:
        """A fresh :class:`EvidenceIndex` primed with cached correct-sets.

        Evidenced-correct(C) depends only on C's core counts, alive
        instances and verified sample — all functions of
        ``concept_version(C)`` — so unchanged concepts skip the
        recomputation inside seed labelling.
        """
        state = self._state(kb)
        if state.exclusion is None:
            raise RuntimeError("call exclusion() before evidence()")
        index = EvidenceIndex(
            kb, state.exclusion, config, verified=verified
        )
        primed = {
            concept: names
            for concept, (version, names) in state.correct.items()
            if version == kb.concept_version(concept)
        }
        if primed:
            self._ctx.count("analysis.correct.primed", len(primed))
            index.prime_correct(primed)
        return index

    def seeds(
        self,
        kb: KnowledgeBase,
        concepts: Iterable[str],
        evidence: EvidenceIndex,
        rule3_mode: str = "tolerant",
    ) -> SeedLabelSet:
        """Seed labels, re-derived only for concepts whose deps moved."""
        state = self._state(kb)
        exclusion = state.exclusion
        if exclusion is None:
            raise RuntimeError("call exclusion() before seeds()")
        labeler = SeedLabeler(kb, exclusion, evidence, rule3_mode=rule3_mode)
        result = SeedLabelSet()
        ctx = self._ctx
        for concept in concepts:
            base = self._matrix_signature(kb, exclusion, concept, state)
            entry = state.seeds.get(concept)
            if entry is not None and entry[0] == base:
                # Base match pins concept_version(C), hence the stored
                # sub-instance set; only its claimants need re-versioning.
                if entry[2] == self._claimant_signature(
                    kb, exclusion, entry[1]
                ):
                    ctx.count("analysis.seeds.hit")
                    for label in entry[3]:
                        result.add(label)
                    continue
            ctx.count("analysis.seeds.miss")
            labels = labeler.label_concept(concept)
            subs = self._correct_subs(kb, evidence, concept)
            state.seeds[concept] = (
                base,
                subs,
                self._claimant_signature(kb, exclusion, subs),
                labels,
            )
            for label in labels:
                result.add(label)
        # Harvest the correct-sets this pass computed for the next round.
        for concept, names in evidence.correct_snapshot().items():
            state.correct[concept] = (kb.concept_version(concept), names)
        return result

    def _correct_subs(
        self, kb: KnowledgeBase, evidence: EvidenceIndex, concept: str
    ) -> frozenset[str]:
        """Sub-instances the rules walk: those of evidenced-correct
        instances (RULES 1/3 look no further), minus alive instances whose
        claimants the base signature already tracks."""
        subs: set[str] = set()
        for instance in evidence.evidenced_correct(concept):
            subs.update(kb.sub_instance_counts(concept, instance))
        return frozenset(subs - kb.instances_of(concept))

    def _claimant_signature(
        self,
        kb: KnowledgeBase,
        exclusion: MutualExclusionIndex,
        subs: frozenset[str],
    ) -> Signature:
        relations = exclusion.relations_version
        version = kb.concept_version
        return tuple(
            (name, version(name), relations(name))
            for name in sorted(kb.concepts_sharing(subs))
        )

    # ------------------------------------------------------------------
    # Detector-side reuse
    # ------------------------------------------------------------------
    def refit_cache(self, kb: KnowledgeBase) -> DetectorRefitCache:
        """Per-KB transform/manifold reuse for :meth:`DPDetector.fit`."""
        return self._state(kb).refit
