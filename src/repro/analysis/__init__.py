"""Versioned analysis cache for incremental detection refits."""

from .cache import AnalysisCache

__all__ = ["AnalysisCache"]
