"""A simulated named-entity recogniser.

The paper's Type-Checking baseline uses the Stanford NER, which is neither
available offline nor applicable to a synthetic vocabulary.  We substitute a
gazetteer NER backed by the ground-truth world:

* every known instance surface resolves to the coarse type of its *primary*
  sense's domain;
* a configurable confusion model flips the emitted type with probability
  ``1 - accuracy`` (default 0.9 accuracy, in line with reported Stanford NER
  CoNLL figures); real NER mistakes are dominated by *recall* errors
  (an entity dropped to O/MISC) rather than named-type swaps, so a wrong
  tag becomes ``MISC`` with probability ``misc_bias`` and a random other
  type otherwise;
* unknown surfaces (typos, drifted junk) are typed ``MISC``.

The confusion draw is deterministic per surface (hash-seeded), so the same
string always receives the same — possibly wrong — type, as a real
dictionary-backed tagger would behave.
"""

from __future__ import annotations

import zlib
from collections.abc import Iterable, Mapping

import numpy as np

from .types import COARSE_TYPES, EntityType

__all__ = ["SimulatedNER"]


class SimulatedNER:
    """Gazetteer NER with a per-surface deterministic confusion model.

    Parameters
    ----------
    gazetteer:
        Mapping from normalised instance surface to its true coarse type.
    accuracy:
        Probability that a known surface is tagged with its true type.
    seed:
        Root seed for the confusion model.
    """

    def __init__(
        self,
        gazetteer: Mapping[str, EntityType],
        accuracy: float = 0.9,
        misc_bias: float = 0.7,
        seed: int = 0,
    ) -> None:
        if not 0.0 <= accuracy <= 1.0:
            raise ValueError(f"accuracy must be in [0, 1], got {accuracy}")
        if not 0.0 <= misc_bias <= 1.0:
            raise ValueError(f"misc_bias must be in [0, 1], got {misc_bias}")
        self._gazetteer = dict(gazetteer)
        self._accuracy = accuracy
        self._misc_bias = misc_bias
        self._seed = seed

    @property
    def accuracy(self) -> float:
        """The configured probability of tagging a known surface correctly."""
        return self._accuracy

    def __len__(self) -> int:
        return len(self._gazetteer)

    def __contains__(self, surface: str) -> bool:
        return surface in self._gazetteer

    def tag(self, surface: str) -> EntityType:
        """Return the (possibly confused) coarse type for ``surface``."""
        true_type = self._gazetteer.get(surface)
        if true_type is None:
            return EntityType.MISC
        rng = self._surface_rng(surface)
        if rng.random() < self._accuracy:
            return true_type
        if true_type is not EntityType.MISC and rng.random() < self._misc_bias:
            return EntityType.MISC
        alternatives = [t for t in COARSE_TYPES if t is not true_type]
        return alternatives[int(rng.integers(0, len(alternatives)))]

    def tag_many(self, surfaces: Iterable[str]) -> dict[str, EntityType]:
        """Tag a batch of surfaces; convenience wrapper over :meth:`tag`."""
        return {surface: self.tag(surface) for surface in surfaces}

    def _surface_rng(self, surface: str) -> np.random.Generator:
        key = zlib.crc32(surface.encode("utf-8"))
        return np.random.default_rng(
            np.random.SeedSequence(entropy=self._seed, spawn_key=(key,))
        )
