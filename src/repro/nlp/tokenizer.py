"""A small tokenizer / normaliser shared by corpus generation and parsing.

Real web-scale extraction pipelines normalise surface strings before storing
isA pairs (lower-casing, whitespace collapsing, light punctuation stripping).
The synthetic corpus is much cleaner than the web, but the extraction engine
still goes through the same normalisation path so that typo-noise and
surface-form tests exercise realistic code.
"""

from __future__ import annotations

import re

__all__ = ["normalize", "tokenize", "detokenize"]

_WHITESPACE = re.compile(r"\s+")
_STRIP_CHARS = ".,;:!?\"'()[]"
_TOKEN = re.compile(r"[A-Za-z0-9.'-]+")


def normalize(text: str) -> str:
    """Normalise a surface form: lower-case, collapse spaces, trim edges.

    >>> normalize("  New   York. ")
    'new york'
    """
    collapsed = _WHITESPACE.sub(" ", text).strip()
    return collapsed.strip(_STRIP_CHARS + " ").lower()


def tokenize(sentence: str) -> list[str]:
    """Split a sentence into word tokens, dropping punctuation.

    A trailing period is stripped unless the token is dotted throughout
    (an abbreviation such as ``u.s.``).

    >>> tokenize("Animals such as dogs, cats and pigs.")
    ['Animals', 'such', 'as', 'dogs', 'cats', 'and', 'pigs']
    """
    tokens = []
    for token in _TOKEN.findall(sentence):
        if token.endswith(".") and "." not in token[:-1]:
            token = token.rstrip(".")
        if token:
            tokens.append(token)
    return tokens


def detokenize(tokens: list[str]) -> str:
    """Join tokens back into a plain space-separated sentence."""
    return " ".join(tokens)
