"""NLP substrate: tokenisation, coarse entity types, simulated NER."""

from .ner import SimulatedNER
from .tokenizer import detokenize, normalize, tokenize
from .types import COARSE_TYPES, EntityType

__all__ = [
    "COARSE_TYPES",
    "EntityType",
    "SimulatedNER",
    "detokenize",
    "normalize",
    "tokenize",
]
