"""Coarse entity types used by the simulated named-entity recogniser.

The paper's Type-Checking baseline (§5.3) uses the Stanford NER to assign a
coarse type to each extracted instance and flags pairs whose instance type
contradicts the target concept's expected type.  Coarse NER types are much
coarser than concepts: *Animal* and *Food* instances are both ``MISC``, so a
type checker can only catch drift that crosses coarse-type boundaries —
which is exactly why the baseline has high precision but low recall.
"""

from __future__ import annotations

import enum

__all__ = ["EntityType", "COARSE_TYPES"]


class EntityType(enum.Enum):
    """The coarse entity types a gazetteer NER can emit."""

    PERSON = "person"
    LOCATION = "location"
    ORGANIZATION = "organization"
    ARTIFACT = "artifact"
    MISC = "misc"

    def __str__(self) -> str:  # pragma: no cover - display convenience
        return self.value


#: All coarse types, in a stable order (useful for confusion matrices).
COARSE_TYPES: tuple[EntityType, ...] = tuple(EntityType)
