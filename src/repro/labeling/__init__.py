"""Seed labelling: evidence, heuristic rules, label taxonomy."""

from .evidence import EvidenceIndex
from .labels import DPLabel, SeedLabel, label_to_vector, vector_to_label
from .rules import SeedLabeler, SeedLabelSet

__all__ = [
    "DPLabel",
    "EvidenceIndex",
    "SeedLabel",
    "SeedLabelSet",
    "SeedLabeler",
    "label_to_vector",
    "vector_to_label",
]
