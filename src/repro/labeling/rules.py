"""Heuristic seed-labelling rules (§3.2.3).

* **RULE 1** — ``e`` is an evidenced correct instance of ``C`` but some of
  its sub-instances are evidenced correct instances of a concept mutually
  exclusive with ``C``  →  Intentional DP (*chicken* under *animal* whose
  sub-instances *pork*, *beef* are evidenced foods).
* **RULE 2** — ``e`` is an evidenced incorrect instance of ``C``
  →  Accidental DP (*New York* under *country*).
* **RULE 3** — ``e`` and all its sub-instances are evidenced correct
  instances of ``C``  →  non-DP.

The rules are strict by design: they label only a small fraction of the
instances, but with near-perfect precision (Fig. 5b).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..concepts.exclusion import MutualExclusionIndex
from ..kb.store import KnowledgeBase
from .evidence import EvidenceIndex
from .labels import DPLabel, SeedLabel

__all__ = ["SeedLabeler", "SeedLabelSet"]


@dataclass
class SeedLabelSet:
    """Seed labels grouped by concept."""

    by_concept: dict[str, list[SeedLabel]] = field(default_factory=dict)

    def add(self, label: SeedLabel) -> None:
        """Store one seed."""
        self.by_concept.setdefault(label.concept, []).append(label)

    def labels_for(self, concept: str) -> list[SeedLabel]:
        """Seeds of one concept."""
        return self.by_concept.get(concept, [])

    def all_labels(self) -> list[SeedLabel]:
        """Every seed across concepts."""
        return [
            label
            for labels in self.by_concept.values()
            for label in labels
        ]

    def counts(self) -> dict[DPLabel, int]:
        """Seeds per class."""
        result: dict[DPLabel, int] = {}
        for label in self.all_labels():
            result[label.label] = result.get(label.label, 0) + 1
        return result

    def __len__(self) -> int:
        return sum(len(labels) for labels in self.by_concept.values())


class SeedLabeler:
    """Applies RULES 1–3 over a knowledge base.

    ``rule3_mode`` controls the non-DP rule:

    * ``"strict"`` — the paper's wording: every sub-instance must itself be
      evidenced correct.  At web scale evidence covers most correct
      instances, so popular triggers qualify; at our corpus scale they
      almost never do, which starves the training set of exactly the
      high-score non-DPs the detector must learn.
    * ``"tolerant"`` (default) — the same intent restated for sparse
      evidence: the instance is evidenced correct and *no* sub-instance
      shows contrary (exclusive-concept) evidence.
    """

    def __init__(
        self,
        kb: KnowledgeBase,
        exclusion: MutualExclusionIndex,
        evidence: EvidenceIndex,
        rule3_mode: str = "tolerant",
    ) -> None:
        if rule3_mode not in ("strict", "tolerant"):
            raise ValueError(f"unknown rule3_mode: {rule3_mode!r}")
        self._kb = kb
        self._exclusion = exclusion
        self._evidence = evidence
        self._rule3_mode = rule3_mode

    def label_concept(self, concept: str) -> list[SeedLabel]:
        """Label the seeds of one concept."""
        labels: list[SeedLabel] = []
        correct = self._evidence.evidenced_correct(concept)
        # Every rule needs the instance either evidenced correct (RULES
        # 1/3) or extracted once after iteration 1 (RULE 2's gate);
        # anything else classifies to None without further lookups.
        late = self._kb.singleton_late_instances(concept)
        for instance in self._kb.sorted_instances(concept):
            if instance not in correct and instance not in late:
                continue
            label = self._classify(concept, instance, correct, late)
            if label is not None:
                labels.append(SeedLabel(concept, instance, label))
        return labels

    def label_all(self, concepts: list[str] | None = None) -> SeedLabelSet:
        """Label seeds for many concepts (all KB concepts by default)."""
        result = SeedLabelSet()
        names = concepts if concepts is not None else self._kb.concepts()
        for concept in names:
            for label in self.label_concept(concept):
                result.add(label)
        return result

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _classify(
        self,
        concept: str,
        instance: str,
        correct: frozenset[str],
        late: frozenset[str],
    ) -> DPLabel | None:
        # RULE 2 first: evidenced incorrect is the strongest signal and is
        # mutually exclusive with being evidenced correct.
        if instance in late and self._evidence.is_evidenced_incorrect(
            concept, instance
        ):
            return DPLabel.ACCIDENTAL
        if instance not in correct:
            return None
        subs = self._kb.sub_instance_counts(concept, instance)
        if self._subs_hit_exclusive_concept(concept, subs, correct):
            return DPLabel.INTENTIONAL  # RULE 1
        if self._rule3_mode == "tolerant":
            return DPLabel.NON_DP  # RULE 3 (sparse-evidence reading)
        if all(sub in correct for sub in subs):
            return DPLabel.NON_DP  # RULE 3 (paper verbatim)
        return None

    def _subs_hit_exclusive_concept(
        self, concept: str, subs: dict[str, int], correct: frozenset[str]
    ) -> bool:
        evidence = self._evidence
        kb = self._kb
        core = kb.core_counts(concept)
        exclusive = self._exclusion.exclusive
        verified = evidence.verified_instances(concept)
        for sub in subs:
            # A sub-instance only incriminates its trigger if the sub does
            # not itself look like a member of the target concept: a benign
            # trigger may legitimately co-occur with a polysemous bridge
            # (dog triggering chicken must not make dog an Intentional DP).
            # (Inline is_evidenced_correct(concept, sub): the caller's
            # ``correct`` set is exactly evidenced_correct(concept).)
            if sub in correct or sub in verified:
                continue
            if core.get(sub, 0) > 0:
                continue
            for other in kb.iter_concepts_with_instance(sub):
                if other == concept:
                    continue
                if not exclusive(concept, other):
                    continue
                if evidence.is_evidenced_correct(other, sub):
                    return True
        return False
