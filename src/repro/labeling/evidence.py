"""Evidenced correct / incorrect instances (§3.2.2).

* **Evidenced correct** for ``C``: the pair came from a verified source
  (optional, e.g. a Wikipedia-like sample) or was extracted from more than
  ``k`` distinct sentences in the first iteration.
* **Evidenced incorrect** for ``C``: the instance was extracted for ``C``
  exactly once, in a later iteration than the first, while being an
  evidenced *correct* instance of some concept mutually exclusive with
  ``C`` (the paper's *New York isA country* case).
"""

from __future__ import annotations

from collections.abc import Iterable

from ..concepts.exclusion import MutualExclusionIndex
from ..config import LabelingConfig
from ..kb.pair import IsAPair
from ..kb.store import KnowledgeBase

__all__ = ["EvidenceIndex"]


class EvidenceIndex:
    """Answers evidenced-correct / evidenced-incorrect queries."""

    def __init__(
        self,
        kb: KnowledgeBase,
        exclusion: MutualExclusionIndex,
        config: LabelingConfig | None = None,
        verified: Iterable[IsAPair] = (),
    ) -> None:
        self._kb = kb
        self._exclusion = exclusion
        self._config = config or LabelingConfig()
        self._verified = frozenset(verified)
        self._correct_cache: dict[str, frozenset[str]] = {}

    @property
    def threshold(self) -> int:
        """The evidence threshold ``k``."""
        return self._config.evidence_threshold_k

    def evidenced_correct(self, concept: str) -> frozenset[str]:
        """All evidenced-correct instances of a concept."""
        cached = self._correct_cache.get(concept)
        if cached is not None:
            return cached
        names = set()
        for instance in self._kb.instances_of(concept):
            if self.is_evidenced_correct(concept, instance):
                names.add(instance)
        result = frozenset(names)
        self._correct_cache[concept] = result
        return result

    def is_evidenced_correct(self, concept: str, instance: str) -> bool:
        """Verified source, or frequent (> k sentences) in iteration 1."""
        pair = IsAPair(concept, instance)
        if pair in self._verified:
            return True
        return self._kb.core_count(pair) > self._config.evidence_threshold_k

    def is_evidenced_incorrect(self, concept: str, instance: str) -> bool:
        """One late, accidental extraction of another exclusive concept's
        evidenced instance."""
        pair = IsAPair(concept, instance)
        if pair not in self._kb:
            return False
        if self._kb.count(pair) != 1:
            return False
        if self._kb.first_iteration(pair) <= 1:
            return False
        for other in self._kb.concepts_with_instance(instance):
            if other == concept:
                continue
            if not self._exclusion.exclusive(concept, other):
                continue
            if self.is_evidenced_correct(other, instance):
                return True
        return False

    def evidenced_incorrect(self, concept: str) -> frozenset[str]:
        """All evidenced-incorrect instances of a concept."""
        return frozenset(
            instance
            for instance in self._kb.instances_of(concept)
            if self.is_evidenced_incorrect(concept, instance)
        )
