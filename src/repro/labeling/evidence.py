"""Evidenced correct / incorrect instances (§3.2.2).

* **Evidenced correct** for ``C``: the pair came from a verified source
  (optional, e.g. a Wikipedia-like sample) or was extracted from more than
  ``k`` distinct sentences in the first iteration.
* **Evidenced incorrect** for ``C``: the instance was extracted for ``C``
  exactly once, in a later iteration than the first, while being an
  evidenced *correct* instance of some concept mutually exclusive with
  ``C`` (the paper's *New York isA country* case).
"""

from __future__ import annotations

from collections.abc import Iterable

from ..concepts.exclusion import MutualExclusionIndex
from ..config import LabelingConfig
from ..kb.pair import IsAPair
from ..kb.store import KnowledgeBase

__all__ = ["EvidenceIndex"]


class EvidenceIndex:
    """Answers evidenced-correct / evidenced-incorrect queries."""

    def __init__(
        self,
        kb: KnowledgeBase,
        exclusion: MutualExclusionIndex,
        config: LabelingConfig | None = None,
        verified: Iterable[IsAPair] = (),
    ) -> None:
        self._kb = kb
        self._exclusion = exclusion
        self._config = config or LabelingConfig()
        self._verified = frozenset(verified)
        self._correct_cache: dict[str, frozenset[str]] = {}

    @property
    def threshold(self) -> int:
        """The evidence threshold ``k``."""
        return self._config.evidence_threshold_k

    def evidenced_correct(self, concept: str) -> frozenset[str]:
        """All evidenced-correct instances of a concept."""
        cached = self._correct_cache.get(concept)
        if cached is not None:
            return cached
        threshold = self._config.evidence_threshold_k
        counts = self._kb.core_counts(concept)
        names = {
            instance
            for instance in self._kb.instances_of(concept)
            if counts.get(instance, 0) > threshold
            or IsAPair(concept, instance) in self._verified
        }
        result = frozenset(names)
        self._correct_cache[concept] = result
        return result

    def is_evidenced_correct(self, concept: str, instance: str) -> bool:
        """Verified source, or frequent (> k sentences) in iteration 1."""
        if instance in self.evidenced_correct(concept):
            return True
        if not self._verified:
            return False
        # Verified pairs count even when not (or no longer) in the KB.
        return IsAPair(concept, instance) in self._verified

    def is_evidenced_incorrect(self, concept: str, instance: str) -> bool:
        """One late, accidental extraction of another exclusive concept's
        evidenced instance."""
        stats = self._kb.instance_stats(concept, instance)
        if stats is None:
            return False
        count, first_iteration = stats
        if count != 1 or first_iteration <= 1:
            return False
        for other in self._kb.concepts_with_instance(instance):
            if other == concept:
                continue
            if not self._exclusion.exclusive(concept, other):
                continue
            if self.is_evidenced_correct(other, instance):
                return True
        return False

    def evidenced_incorrect(self, concept: str) -> frozenset[str]:
        """All evidenced-incorrect instances of a concept."""
        return frozenset(
            instance
            for instance in self._kb.instances_of(concept)
            if self.is_evidenced_incorrect(concept, instance)
        )
