"""Evidenced correct / incorrect instances (§3.2.2).

* **Evidenced correct** for ``C``: the pair came from a verified source
  (optional, e.g. a Wikipedia-like sample) or was extracted from more than
  ``k`` distinct sentences in the first iteration.
* **Evidenced incorrect** for ``C``: the instance was extracted for ``C``
  exactly once, in a later iteration than the first, while being an
  evidenced *correct* instance of some concept mutually exclusive with
  ``C`` (the paper's *New York isA country* case).
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping

from ..concepts.exclusion import MutualExclusionIndex
from ..config import LabelingConfig
from ..kb.pair import IsAPair
from ..kb.store import KnowledgeBase

__all__ = ["EvidenceIndex"]

_EMPTY: frozenset[str] = frozenset()


class EvidenceIndex:
    """Answers evidenced-correct / evidenced-incorrect queries."""

    def __init__(
        self,
        kb: KnowledgeBase,
        exclusion: MutualExclusionIndex,
        config: LabelingConfig | None = None,
        verified: Iterable[IsAPair] = (),
    ) -> None:
        self._kb = kb
        self._exclusion = exclusion
        self._config = config or LabelingConfig()
        self._verified = frozenset(verified)
        # concept → verified instances, so the per-instance hot paths test
        # string membership instead of constructing IsAPair keys.
        grouped: dict[str, set[str]] = {}
        for pair in self._verified:
            grouped.setdefault(pair.concept, set()).add(pair.instance)
        self._verified_by_concept: dict[str, frozenset[str]] = {
            concept: frozenset(names) for concept, names in grouped.items()
        }
        self._correct_cache: dict[str, frozenset[str]] = {}

    @property
    def threshold(self) -> int:
        """The evidence threshold ``k``."""
        return self._config.evidence_threshold_k

    @property
    def verified(self) -> frozenset[IsAPair]:
        """Pairs from the verified source (count even when not in the KB)."""
        return self._verified

    def verified_instances(self, concept: str) -> frozenset[str]:
        """Verified instances of one concept (empty set when none)."""
        return self._verified_by_concept.get(concept, _EMPTY)

    def prime_correct(self, entries: Mapping[str, frozenset[str]]) -> None:
        """Seed the evidenced-correct memo with externally cached results.

        The analysis cache carries evidenced-correct sets across detection
        refits for concepts whose KB version (and hence verified sample)
        is unchanged; a primed entry must be exactly what
        :meth:`evidenced_correct` would compute.
        """
        self._correct_cache.update(entries)

    def correct_snapshot(self) -> dict[str, frozenset[str]]:
        """The evidenced-correct results computed (or primed) so far."""
        return dict(self._correct_cache)

    def evidenced_correct(self, concept: str) -> frozenset[str]:
        """All evidenced-correct instances of a concept."""
        cached = self._correct_cache.get(concept)
        if cached is not None:
            return cached
        threshold = self._config.evidence_threshold_k
        counts = self._kb.core_counts(concept)
        verified_here = self._verified_by_concept.get(concept, frozenset())
        names = {
            instance
            for instance in self._kb.instances_of(concept)
            if counts.get(instance, 0) > threshold
            or instance in verified_here
        }
        result = frozenset(names)
        self._correct_cache[concept] = result
        return result

    def is_evidenced_correct(self, concept: str, instance: str) -> bool:
        """Verified source, or frequent (> k sentences) in iteration 1."""
        if instance in self.evidenced_correct(concept):
            return True
        # Verified pairs count even when not (or no longer) in the KB.
        verified_here = self._verified_by_concept.get(concept)
        return verified_here is not None and instance in verified_here

    def is_evidenced_incorrect(self, concept: str, instance: str) -> bool:
        """One late, accidental extraction of another exclusive concept's
        evidenced instance."""
        stats = self._kb.instance_stats(concept, instance)
        if stats is None:
            return False
        count, first_iteration = stats
        if count != 1 or first_iteration <= 1:
            return False
        for other in self._kb.iter_concepts_with_instance(instance):
            if other == concept:
                continue
            if not self._exclusion.exclusive(concept, other):
                continue
            if self.is_evidenced_correct(other, instance):
                return True
        return False

    def evidenced_incorrect(self, concept: str) -> frozenset[str]:
        """All evidenced-incorrect instances of a concept."""
        return frozenset(
            instance
            for instance in self._kb.instances_of(concept)
            if self.is_evidenced_incorrect(concept, instance)
        )
