"""DP label taxonomy."""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np

__all__ = ["DPLabel", "SeedLabel", "label_to_vector", "vector_to_label"]


class DPLabel(enum.Enum):
    """The three detector classes of §3 (order fixes the y-vector layout)."""

    INTENTIONAL = "intentional"
    ACCIDENTAL = "accidental"
    NON_DP = "non_dp"

    @property
    def is_dp(self) -> bool:
        """True for either DP class."""
        return self is not DPLabel.NON_DP


_ORDER = (DPLabel.INTENTIONAL, DPLabel.ACCIDENTAL, DPLabel.NON_DP)


def label_to_vector(label: DPLabel) -> np.ndarray:
    """One-hot encoding per §3.3.2 ([1,0,0] / [0,1,0] / [0,0,1])."""
    vector = np.zeros(3, dtype=float)
    vector[_ORDER.index(label)] = 1.0
    return vector


def vector_to_label(vector: np.ndarray) -> DPLabel:
    """Decode a prediction vector by arg-max."""
    return _ORDER[int(np.argmax(vector))]


@dataclass(frozen=True)
class SeedLabel:
    """An automatically labelled training seed."""

    concept: str
    instance: str
    label: DPLabel
