"""Incremental extraction sessions with drift-triggered cleaning.

An :class:`IngestSession` wraps the incremental extractor, the shared
analysis substrate and the DP cleaner into a long-running service loop.
Per batch it:

1. extracts only the new sentences (riding the incremental visible
   snapshot and the versioned KB/score/analysis caches);
2. updates drift telemetry — the fraction of the batch's new pairs whose
   instance also lives under a mutually exclusive concept, read from the
   shared :class:`~repro.concepts.exclusion.MutualExclusionIndex`;
3. asks the :class:`~repro.service.policy.IngestPolicy` whether a
   DP-cleaning pass is due (staleness or drift), and runs one if so.

Cleaning passes are **self-contained**: each pass gets a fresh detection
callback, so the detector embedding is frozen across the pass's rounds
(exactly as in batch cleaning) but refitted per pass.  That makes every
pass a pure function of (KB, corpus, config) — the property both
invariants ride on:

* *batch equivalence*: the whole corpus in one batch with cleaning
  forced reproduces ``Pipeline.extract()`` + ``DPCleaner.clean()``
  bit-identically;
* *crash resume*: ``checkpoint + journal replay`` (re-running the cheap
  extraction, re-applying journaled rollback ops, never refitting a
  detector) reaches a bit-identical KB versus an uninterrupted session.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from collections.abc import Callable, Iterable

from ..analysis.cache import AnalysisCache
from ..cleaning.dp_cleaner import DetectFn, DPCleaner
from ..config import PipelineConfig
from ..corpus.corpus import Corpus, sentence_to_json
from ..corpus.sentence import Sentence
from ..errors import ServiceError
from ..extraction.engine import BatchExtraction, IncrementalExtractor
from ..kb.pair import IsAPair
from ..kb.store import KnowledgeBase
from ..runtime.context import NULL_CONTEXT, RunContext
from ..runtime.events import (
    BatchExtracted,
    BatchIngested,
    CleaningCompleted,
    CleaningTriggered,
    DriftMeasured,
    SessionResumed,
)
from .checkpoint import CheckpointStore
from .journal import JournalingRollbackEngine, replay_clean_ops
from .policy import IngestPolicy, PolicyMonitor

__all__ = ["DriftStats", "CleaningReport", "BatchReport", "IngestSession"]


@dataclass(frozen=True)
class DriftStats:
    """Drift telemetry for one batch."""

    new_pairs: int
    conflicted: int
    fraction: float
    #: concept → [new pairs, conflicted pairs] for this batch.
    per_concept: dict[str, list[int]] = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "new_pairs": self.new_pairs,
            "conflicted": self.conflicted,
            "fraction": self.fraction,
            "per_concept": self.per_concept,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "DriftStats":
        return cls(
            new_pairs=payload["new_pairs"],
            conflicted=payload["conflicted"],
            fraction=payload["fraction"],
            per_concept={
                concept: list(counts)
                for concept, counts in payload["per_concept"].items()
            },
        )


@dataclass(frozen=True)
class CleaningReport:
    """What one drift-triggered cleaning pass did."""

    reason: str
    removed_pairs: int
    records_rolled_back: int
    rounds: int
    #: per-round counters (round_index, intentional/accidental DPs, ...).
    round_stats: list[dict] = field(default_factory=list)

    def to_dict(self) -> dict:
        return {
            "reason": self.reason,
            "removed_pairs": self.removed_pairs,
            "records_rolled_back": self.records_rolled_back,
            "rounds": self.rounds,
            "round_stats": self.round_stats,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "CleaningReport":
        return cls(
            reason=payload["reason"],
            removed_pairs=payload["removed_pairs"],
            records_rolled_back=payload["records_rolled_back"],
            rounds=payload["rounds"],
            round_stats=list(payload["round_stats"]),
        )


@dataclass(frozen=True)
class BatchReport:
    """Everything one ingested batch did to the session."""

    seq: int
    index: int
    sentences_seen: int
    sentences_new: int
    core_resolved: int
    ambiguous_resolved: int
    new_pairs: int
    total_pairs: int
    iterations_run: int
    drift: DriftStats
    cleaning: CleaningReport | None = None

    def to_dict(self) -> dict:
        return {
            "seq": self.seq,
            "index": self.index,
            "sentences_seen": self.sentences_seen,
            "sentences_new": self.sentences_new,
            "core_resolved": self.core_resolved,
            "ambiguous_resolved": self.ambiguous_resolved,
            "new_pairs": self.new_pairs,
            "total_pairs": self.total_pairs,
            "iterations_run": self.iterations_run,
            "drift": self.drift.to_dict(),
            "cleaning": self.cleaning.to_dict() if self.cleaning else None,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "BatchReport":
        cleaning = payload.get("cleaning")
        return cls(
            seq=payload["seq"],
            index=payload["index"],
            sentences_seen=payload["sentences_seen"],
            sentences_new=payload["sentences_new"],
            core_resolved=payload["core_resolved"],
            ambiguous_resolved=payload["ambiguous_resolved"],
            new_pairs=payload["new_pairs"],
            total_pairs=payload["total_pairs"],
            iterations_run=payload["iterations_run"],
            drift=DriftStats.from_dict(payload["drift"]),
            cleaning=CleaningReport.from_dict(cleaning) if cleaning else None,
        )


class IngestSession:
    """A durable streaming ingestion session over one growing KB.

    Parameters
    ----------
    config:
        The full pipeline configuration (extraction, similarity and
        cleaning sections are used).
    detect_factory:
        Zero-argument callable returning a fresh detection callback for
        one cleaning pass — typically ``pipeline.detect_fn`` (see
        :meth:`repro.experiments.pipeline.Pipeline.session`).
    policy:
        Cleaning trigger thresholds; defaults to :class:`IngestPolicy`.
    analysis:
        The analysis cache shared with the detection callbacks, so drift
        telemetry reads the same exclusion index detection refreshes.
    checkpoint_dir:
        Where to journal batches and write snapshots.  ``None`` runs an
        ephemeral in-memory session.
    checkpoint_every:
        Snapshot cadence in batches (0 = only on explicit
        :meth:`checkpoint` calls; the journal alone already makes the
        session durable).
    resume:
        Rebuild state from ``checkpoint_dir`` before accepting batches.
    context:
        The :class:`~repro.runtime.context.RunContext` to emit through.
        The session *requires* a live event bus (its cleaning triggers
        ride on published events), so when this is omitted — or the
        stateless null context is passed — a private context is minted.
    """

    def __init__(
        self,
        *,
        config: PipelineConfig,
        detect_factory: Callable[[], DetectFn],
        policy: IngestPolicy | None = None,
        analysis: AnalysisCache | None = None,
        checkpoint_dir: str | Path | None = None,
        checkpoint_every: int = 0,
        resume: bool = False,
        context: RunContext | None = None,
    ) -> None:
        self._config = config
        self._detect_factory = detect_factory
        self._policy = policy or IngestPolicy()
        self._analysis = analysis or AnalysisCache(
            similarity=config.similarity
        )
        if context is None or context is NULL_CONTEXT:
            context = RunContext(config)
        self._ctx = context
        self._monitor = PolicyMonitor(context.bus)
        self._extractor = IncrementalExtractor(
            config.extraction, context=context
        )
        self._store = (
            CheckpointStore(checkpoint_dir) if checkpoint_dir else None
        )
        self._checkpoint_every = checkpoint_every
        self._seq = 0
        self._last_snapshot_seq = 0
        self._reports: list[BatchReport] = []
        if resume:
            if self._store is None:
                raise ServiceError("resume requires a checkpoint_dir")
            self._restore()

    # ------------------------------------------------------------------
    # State access
    # ------------------------------------------------------------------
    @property
    def kb(self) -> KnowledgeBase:
        """The session's growing knowledge base."""
        return self._extractor.kb

    @property
    def policy(self) -> IngestPolicy:
        """The cleaning trigger policy in effect."""
        return self._policy

    @property
    def context(self) -> RunContext:
        """The run context the session emits through."""
        return self._ctx

    @property
    def monitor(self) -> PolicyMonitor:
        """The bus-driven telemetry accumulator behind the triggers."""
        return self._monitor

    @property
    def reports(self) -> list[BatchReport]:
        """Per-batch reports in ingest order (replayed ones included)."""
        return list(self._reports)

    @property
    def batches_ingested(self) -> int:
        """Number of committed batches (a resumed session counts replays)."""
        return len(self._reports)

    @property
    def cleanings(self) -> int:
        """Number of cleaning passes run (or replayed) so far."""
        return self._monitor.cleanings

    @property
    def staleness(self) -> int:
        """New sentences ingested since the last cleaning pass."""
        return self._monitor.staleness

    def corpus(self) -> Corpus:
        """The accumulated de-duplicated corpus."""
        return self._extractor.corpus()

    def drift_totals(self) -> dict[str, list[int]]:
        """Cumulative per-concept [new pairs, conflicted] telemetry."""
        return {
            concept: list(counts)
            for concept, counts in self._monitor.drift_totals.items()
        }

    def stats(self) -> dict:
        """A summary of the session so far."""
        return {
            "batches": self.batches_ingested,
            "cleanings": self._monitor.cleanings,
            "pairs": len(self.kb),
            "removed_pairs": len(self.kb.removed_pairs()),
            "unresolved": len(self._extractor.unresolved_sids()),
            "staleness": self._monitor.staleness,
            "drift_history": [r.drift.fraction for r in self._reports],
        }

    # ------------------------------------------------------------------
    # Ingest
    # ------------------------------------------------------------------
    def ingest(
        self,
        sentences: Corpus | Iterable[Sentence],
        force_clean: bool = False,
    ) -> BatchReport:
        """Ingest one batch; extract, measure drift, maybe clean; commit."""
        ctx = self._ctx
        with ctx.span("ingest.batch", seq=self._seq + 1) as span:
            batch = self._extractor.ingest(list(sentences))
            new_sentences = self._new_batch_sentences(batch)
            span.add("sentences_seen", batch.sentences_seen)
            span.add("sentences_new", batch.sentences_new)
            span.add("new_pairs", len(batch.new_pairs))
            span.add("sentences_skipped", batch.sentences_skipped)
            span.add("index_hits", batch.index_hits)
            ctx.emit(
                BatchExtracted(
                    index=batch.index,
                    sentences_seen=batch.sentences_seen,
                    sentences_new=batch.sentences_new,
                    new_pairs=len(batch.new_pairs),
                    total_pairs=batch.total_pairs,
                    iterations_run=batch.iterations_run,
                )
            )
            drift = self._drift_stats(batch)
            ctx.emit(
                DriftMeasured(
                    index=batch.index,
                    new_pairs=drift.new_pairs,
                    conflicted=drift.conflicted,
                    fraction=drift.fraction,
                    per_concept=tuple(
                        (concept, counts[0], counts[1])
                        for concept, counts in sorted(
                            drift.per_concept.items()
                        )
                    ),
                )
            )
            decision = self._monitor.decide(self._policy, forced=force_clean)
            cleaning = None
            clean_ops: list[list] = []
            if decision.clean:
                ctx.emit(
                    CleaningTriggered(
                        reason=decision.reason,
                        staleness=decision.staleness,
                        drift=decision.drift,
                    )
                )
                cleaning, clean_ops = self._clean(decision.reason)
                ctx.emit(
                    CleaningCompleted(
                        rounds=cleaning.rounds,
                        pairs_removed=cleaning.removed_pairs,
                        records_rolled_back=cleaning.records_rolled_back,
                        reason=decision.reason,
                    )
                )
            self._seq += 1
            report = BatchReport(
                seq=self._seq,
                index=batch.index,
                sentences_seen=batch.sentences_seen,
                sentences_new=batch.sentences_new,
                core_resolved=batch.core_resolved,
                ambiguous_resolved=batch.ambiguous_resolved,
                new_pairs=len(batch.new_pairs),
                total_pairs=batch.total_pairs,
                iterations_run=batch.iterations_run,
                drift=drift,
                cleaning=cleaning,
            )
            self._reports.append(report)
            if self._store is not None:
                entry = {
                    "seq": self._seq,
                    "type": "batch",
                    "sentences": [sentence_to_json(s) for s in new_sentences],
                    "report": report.to_dict(),
                }
                if clean_ops:
                    entry["clean_ops"] = clean_ops
                self._store.journal.append(entry)
                due = (
                    self._checkpoint_every > 0
                    and self._seq - self._last_snapshot_seq
                    >= self._checkpoint_every
                )
                if due:
                    self.checkpoint()
            ctx.emit(self._ingested_event(report, replayed=False))
        return report

    def _ingested_event(
        self, report: BatchReport, replayed: bool
    ) -> BatchIngested:
        cleaning = report.cleaning
        return BatchIngested(
            seq=report.seq,
            index=report.index,
            sentences_seen=report.sentences_seen,
            sentences_new=report.sentences_new,
            new_pairs=report.new_pairs,
            total_pairs=report.total_pairs,
            drift_fraction=report.drift.fraction,
            cleaned=cleaning is not None,
            clean_reason=cleaning.reason if cleaning else None,
            removed_pairs=cleaning.removed_pairs if cleaning else 0,
            replayed=replayed,
        )

    def _new_batch_sentences(self, batch: BatchExtraction) -> list[Sentence]:
        """The batch's sentences that survived session-wide dedup.

        The extractor appends exactly the deduplicated survivors to its
        accumulated corpus, so they are the trailing ``sentences_new``
        entries — the only sentences the journal needs to carry.
        """
        if batch.sentences_new == 0:
            return []
        return list(self._extractor.corpus().sentences[-batch.sentences_new:])

    # ------------------------------------------------------------------
    # Drift telemetry
    # ------------------------------------------------------------------
    def _drift_stats(self, batch: BatchExtraction) -> DriftStats:
        kb = self._extractor.kb
        if not batch.new_pairs:
            return DriftStats(new_pairs=0, conflicted=0, fraction=0.0)
        exclusion = self._analysis.exclusion(kb)
        per_concept: dict[str, list[int]] = {}
        conflicted = 0
        for pair in batch.new_pairs:
            counts = per_concept.setdefault(pair.concept, [0, 0])
            counts[0] += 1
            if pair in kb and exclusion.count_exclusive_containing(
                kb, pair.concept, pair.instance
            ):
                counts[1] += 1
                conflicted += 1
        return DriftStats(
            new_pairs=len(batch.new_pairs),
            conflicted=conflicted,
            fraction=conflicted / len(batch.new_pairs),
            per_concept=per_concept,
        )

    # ------------------------------------------------------------------
    # Cleaning
    # ------------------------------------------------------------------
    def _clean(self, reason: str) -> tuple[CleaningReport, list[list]]:
        kb = self._extractor.kb
        engines: list[JournalingRollbackEngine] = []

        def factory(target: KnowledgeBase) -> JournalingRollbackEngine:
            engine = JournalingRollbackEngine(target)
            engines.append(engine)
            return engine

        cleaner = DPCleaner(
            self._detect_factory(),
            self._config.cleaning,
            engine_factory=factory,
            context=self._ctx,
        )
        version_before = kb.version
        result = cleaner.clean(kb, self._extractor.corpus())
        self._extractor.resync_visible(
            kb.dirty_concepts_since(version_before)
        )
        ops = engines[0].ops if engines else []
        report = CleaningReport(
            reason=reason,
            removed_pairs=result.num_removed,
            records_rolled_back=result.records_rolled_back,
            rounds=result.rounds,
            round_stats=[
                {
                    "round_index": stats.round_index,
                    "intentional_dps": stats.intentional_dps,
                    "accidental_dps": stats.accidental_dps,
                    "records_rolled_back": stats.records_rolled_back,
                    "pairs_removed": stats.pairs_removed,
                    "sentence_checks": len(stats.sentence_checks),
                }
                for stats in result.details.get("rounds", [])
            ],
        )
        return report, ops

    # ------------------------------------------------------------------
    # Durability
    # ------------------------------------------------------------------
    def checkpoint(self) -> None:
        """Write a snapshot now (and truncate the covered journal)."""
        if self._store is None:
            raise ServiceError("session has no checkpoint_dir")
        self._store.save_snapshot(
            seq=self._seq,
            kb=self._extractor.kb,
            sentences=self._extractor._sentences,
            meta={
                "iteration": self._extractor.iteration,
                "batches": self._extractor.batches,
                "pool_sids": list(self._extractor.unresolved_sids()),
                "since_clean": self._monitor.staleness,
                "cleanings": self._monitor.cleanings,
                "reports": [r.to_dict() for r in self._reports],
            },
        )
        self._last_snapshot_seq = self._seq

    def _restore(self) -> None:
        """Resume: load the snapshot, then replay the journal tail."""
        assert self._store is not None
        snapshot = self._store.load_snapshot()
        if snapshot is not None:
            kb, sentences, meta = snapshot
            self._extractor = IncrementalExtractor(
                self._config.extraction, kb=kb, context=self._ctx
            )
            self._extractor.restore(
                sentences,
                meta["pool_sids"],
                meta["iteration"],
                meta["batches"],
            )
            self._monitor.restore(
                staleness=meta["since_clean"],
                cleanings=meta["cleanings"],
            )
            self._reports = [
                BatchReport.from_dict(r) for r in meta["reports"]
            ]
            for report in self._reports:
                self._monitor.fold(report.drift.per_concept)
            self._seq = meta["seq"]
            self._last_snapshot_seq = meta["seq"]
        for entry in self._store.journal.entries(after_seq=self._seq):
            self._replay_entry(entry)
        self._ctx.emit(
            SessionResumed(
                batches=len(self._reports),
                cleanings=self._monitor.cleanings,
                total_pairs=len(self.kb),
            )
        )

    def _replay_entry(self, entry: dict) -> None:
        if entry.get("type") != "batch":
            raise ServiceError(
                f"unknown journal entry type {entry.get('type')!r}"
            )
        report = BatchReport.from_dict(entry["report"])
        sentences = self._store.load_sentences(entry["sentences"])
        batch = self._extractor.ingest(sentences)
        if batch.total_pairs != report.total_pairs:
            raise ServiceError(
                f"journal replay diverged at seq {entry['seq']}: "
                f"extraction produced {batch.total_pairs} pairs, the "
                f"journal recorded {report.total_pairs} — was the session "
                "restarted with a different configuration?"
            )
        # Replay publishes the same events live ingestion does, so the
        # policy monitor (and any other subscriber) rebuilds its state
        # from the bus rather than from private replay bookkeeping.
        ctx = self._ctx
        ctx.emit(
            BatchExtracted(
                index=batch.index,
                sentences_seen=batch.sentences_seen,
                sentences_new=batch.sentences_new,
                new_pairs=len(batch.new_pairs),
                total_pairs=batch.total_pairs,
                iterations_run=batch.iterations_run,
            )
        )
        ctx.emit(
            DriftMeasured(
                index=report.index,
                new_pairs=report.drift.new_pairs,
                conflicted=report.drift.conflicted,
                fraction=report.drift.fraction,
                per_concept=tuple(
                    (concept, counts[0], counts[1])
                    for concept, counts in sorted(
                        report.drift.per_concept.items()
                    )
                ),
            )
        )
        kb = self._extractor.kb
        if report.cleaning is not None:
            version_before = kb.version
            replay_clean_ops(kb, entry.get("clean_ops", []))
            self._extractor.resync_visible(
                kb.dirty_concepts_since(version_before)
            )
            ctx.emit(
                CleaningCompleted(
                    rounds=report.cleaning.rounds,
                    pairs_removed=report.cleaning.removed_pairs,
                    records_rolled_back=(
                        report.cleaning.records_rolled_back
                    ),
                    reason=report.cleaning.reason,
                )
            )
        self._seq = entry["seq"]
        self._reports.append(report)
        ctx.emit(self._ingested_event(report, replayed=True))

    def removed_pairs(self) -> frozenset[IsAPair]:
        """Pairs removed by the session's cleaning passes so far."""
        return self.kb.removed_pairs()
