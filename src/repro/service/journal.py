"""The session redo journal.

One JSON line per committed batch.  An entry is the *commit point* of its
batch: it is appended (and fsynced) only after the batch has been fully
applied in memory, so on resume the journal is replayed entry by entry
and whatever was in flight when the process died is simply absent.  A
torn final line — the classic crash-during-append artifact — is detected
and discarded; a corrupt line *followed by* intact entries means real
data loss and fails loudly instead.

Entries carry a monotonic ``seq``.  Snapshots record the ``seq`` they
cover, and replay skips entries at or below it, so a crash between
"snapshot written" and "journal truncated" never double-applies.

Cleaning passes are journaled as their **semantic rollback operations**
(the pair rollbacks and record rollbacks the cleaner requested, in
order), not as detector output: cascades re-derive deterministically from
the KB state, so replaying the operations through a fresh
:class:`~repro.kb.rollback.RollbackEngine` reproduces the exact mutation
sequence — including version counters — without refitting a detector.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from collections.abc import Iterable, Iterator

from ..errors import ServiceError
from ..kb.pair import IsAPair
from ..kb.rollback import RollbackEngine, RollbackResult
from ..kb.store import KnowledgeBase

__all__ = ["Journal", "JournalingRollbackEngine", "replay_clean_ops"]


class JournalingRollbackEngine:
    """A rollback engine that records the operations it is asked to run.

    Wraps (rather than subclasses) :class:`RollbackEngine` so only the
    *top-level* requests are recorded — ``rollback_pair`` internally
    cascades through ``rollback_records``, and those cascades must be
    re-derived at replay time, not replayed twice.
    """

    def __init__(self, kb: KnowledgeBase) -> None:
        self._engine = RollbackEngine(kb)
        self.ops: list[list] = []

    def rollback_pair(self, pair: IsAPair) -> RollbackResult:
        self.ops.append(["pair", pair.concept, pair.instance])
        return self._engine.rollback_pair(pair)

    def rollback_records(self, rids: Iterable[int]) -> RollbackResult:
        rids = list(rids)
        self.ops.append(["records", rids])
        return self._engine.rollback_records(rids)


def replay_clean_ops(kb: KnowledgeBase, ops: Iterable[list]) -> None:
    """Re-apply journaled cleaning operations to a knowledge base."""
    engine = RollbackEngine(kb)
    for op in ops:
        kind = op[0]
        if kind == "pair":
            engine.rollback_pair(IsAPair(op[1], op[2]))
        elif kind == "records":
            engine.rollback_records(op[1])
        else:
            raise ServiceError(f"unknown journaled cleaning op {kind!r}")


class Journal:
    """Append-only JSONL journal with fsync commits and torn-tail repair."""

    def __init__(self, path: str | Path) -> None:
        self._path = Path(path)

    @property
    def path(self) -> Path:
        """The journal file location."""
        return self._path

    def append(self, entry: dict) -> None:
        """Commit one entry durably (write + flush + fsync)."""
        if "seq" not in entry:
            raise ServiceError("journal entries must carry a seq")
        line = json.dumps(entry, separators=(",", ":"))
        with open(self._path, "a", encoding="utf-8") as handle:
            handle.write(line + "\n")
            handle.flush()
            os.fsync(handle.fileno())

    def entries(self, after_seq: int = 0) -> Iterator[dict]:
        """Replay committed entries with ``seq > after_seq`` in order.

        A torn final line is dropped silently (the batch never committed);
        corruption anywhere else raises :class:`ServiceError`.
        """
        if not self._path.exists():
            return
        with open(self._path, encoding="utf-8") as handle:
            lines = handle.read().splitlines()
        last_index = max(
            (i for i, line in enumerate(lines) if line.strip()), default=-1
        )
        for index, line in enumerate(lines):
            line = line.strip()
            if not line:
                continue
            try:
                entry = json.loads(line)
                seq = entry["seq"]
            except (json.JSONDecodeError, TypeError, KeyError) as exc:
                if index == last_index:
                    return  # torn tail: the entry never committed
                raise ServiceError(
                    f"corrupt journal entry at {self._path}:{index + 1} "
                    f"with committed entries after it: {exc}"
                ) from exc
            if seq > after_seq:
                yield entry

    def reset(self) -> None:
        """Drop every entry (called after a covering snapshot landed)."""
        with open(self._path, "w", encoding="utf-8") as handle:
            handle.flush()
            os.fsync(handle.fileno())

    def truncate_last_entry(self) -> bool:
        """Remove the final committed entry (test/ops hook for torn writes).

        Returns ``True`` when an entry was removed.  Used by crash-drill
        tests to simulate a batch whose journal append never completed.
        """
        if not self._path.exists():
            return False
        with open(self._path, encoding="utf-8") as handle:
            lines = [line for line in handle.read().splitlines() if line.strip()]
        if not lines:
            return False
        with open(self._path, "w", encoding="utf-8") as handle:
            for line in lines[:-1]:
                handle.write(line + "\n")
            handle.flush()
            os.fsync(handle.fileno())
        return True
