"""Streaming ingestion service.

The paper's pipeline is batch-oriented: corpus in, cleaned KB out.  This
package turns it into a long-running service where documents arrive in
batches.  An :class:`IngestSession` extracts each batch incrementally,
tracks per-concept drift telemetry, and schedules DP-cleaning passes off
two signals — document-count staleness and a measured drift score
(:class:`IngestPolicy`).  A redo journal plus periodic KB snapshots
(:class:`CheckpointStore`, :class:`Journal`) make sessions durable: a
killed session resumes from ``checkpoint + journal replay`` and reaches a
bit-identical knowledge base versus an uninterrupted run.
"""

from .checkpoint import CheckpointStore
from .journal import Journal, JournalingRollbackEngine, replay_clean_ops
from .policy import CleanDecision, IngestPolicy, PolicyMonitor
from .session import BatchReport, CleaningReport, DriftStats, IngestSession

__all__ = [
    "BatchReport",
    "CheckpointStore",
    "CleanDecision",
    "CleaningReport",
    "DriftStats",
    "IngestPolicy",
    "IngestSession",
    "Journal",
    "JournalingRollbackEngine",
    "PolicyMonitor",
    "replay_clean_ops",
]
