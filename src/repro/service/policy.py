"""When to pay for a cleaning pass: staleness and drift triggers.

Related drift-management designs schedule expensive re-processing off two
independent signals: a **scheduled** trigger (N documents since the last
full pass, which costs nothing to evaluate and guards against slow,
unnoticed drift) and a **measured** trigger (a drift score computed from
the batch that just arrived).  We mirror that split: staleness counts new
sentences since the last clean; drift is the fraction of the batch's new
pairs that landed in mutually-exclusive concepts — exactly the paper's
``f2`` conflict signal, read from the shared
:class:`~repro.concepts.exclusion.MutualExclusionIndex`.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..runtime.events import (
    BatchExtracted,
    CleaningCompleted,
    DriftMeasured,
    EventBus,
)

__all__ = ["CleanDecision", "IngestPolicy", "PolicyMonitor"]


@dataclass(frozen=True)
class CleanDecision:
    """Whether (and why) a cleaning pass should run after a batch."""

    clean: bool
    reason: str | None
    staleness: int
    drift: float


@dataclass(frozen=True)
class IngestPolicy:
    """Trigger thresholds for drift-aware cleaning scheduling.

    Parameters
    ----------
    staleness_threshold:
        Clean when at least this many new (de-duplicated) sentences were
        ingested since the last cleaning pass.  ``0`` cleans after every
        batch; ``None`` disables the scheduled trigger.
    drift_threshold:
        Clean when the batch drift score — the fraction of the batch's
        new pairs whose instance also lives under a mutually exclusive
        concept — reaches this value.  ``None`` disables the drift
        trigger.
    min_new_pairs:
        The drift fraction is noise on tiny batches; it only counts once
        a batch contributes at least this many new pairs.
    """

    staleness_threshold: int | None = 5000
    drift_threshold: float | None = 0.05
    min_new_pairs: int = 20

    def __post_init__(self) -> None:
        if (
            self.staleness_threshold is not None
            and self.staleness_threshold < 0
        ):
            raise ValueError("staleness_threshold must be >= 0 or None")
        if self.drift_threshold is not None and not (
            0.0 <= self.drift_threshold <= 1.0
        ):
            raise ValueError("drift_threshold must be in [0, 1] or None")
        if self.min_new_pairs < 0:
            raise ValueError("min_new_pairs must be >= 0")

    def decide(
        self,
        *,
        staleness: int,
        drift: float,
        new_pairs: int,
        forced: bool = False,
    ) -> CleanDecision:
        """Evaluate the triggers for one just-ingested batch.

        The scheduled trigger is checked first (it is the cheap,
        content-independent signal); drift only fires on batches with
        enough new pairs for the fraction to mean anything.
        """
        reason = None
        if forced:
            reason = "forced"
        elif (
            self.staleness_threshold is not None
            and staleness >= self.staleness_threshold
        ):
            reason = "staleness"
        elif (
            self.drift_threshold is not None
            and new_pairs >= self.min_new_pairs
            and drift >= self.drift_threshold
        ):
            reason = "drift"
        return CleanDecision(
            clean=reason is not None,
            reason=reason,
            staleness=staleness,
            drift=drift,
        )

    @classmethod
    def every_batch(cls) -> "IngestPolicy":
        """A policy that cleans after every batch (batch-mode equivalence)."""
        return cls(staleness_threshold=0, drift_threshold=None)

    @classmethod
    def never(cls) -> "IngestPolicy":
        """A policy that never triggers (cleaning only when forced)."""
        return cls(staleness_threshold=None, drift_threshold=None)


class PolicyMonitor:
    """Bus-driven accumulator feeding the policy's trigger inputs.

    Subscribes to the session's event bus and derives everything
    :meth:`IngestPolicy.decide` needs from published events —
    :class:`~repro.runtime.events.BatchExtracted` grows staleness,
    :class:`~repro.runtime.events.DriftMeasured` records the batch drift
    score and folds per-concept totals, and
    :class:`~repro.runtime.events.CleaningCompleted` resets staleness.
    The policy itself stays a pure threshold table and the session holds
    no private trigger state: anything else on the bus (a dashboard, a
    test) sees exactly the numbers the triggers fire on.
    """

    def __init__(self, bus: EventBus) -> None:
        self.staleness = 0
        self.cleanings = 0
        self.last_drift = 0.0
        self.last_new_pairs = 0
        self.drift_totals: dict[str, list[int]] = {}
        self._unsubscribe = [
            bus.subscribe(BatchExtracted, self._on_batch),
            bus.subscribe(DriftMeasured, self._on_drift),
            bus.subscribe(CleaningCompleted, self._on_cleaned),
        ]

    def _on_batch(self, event: BatchExtracted) -> None:
        self.staleness += event.sentences_new

    def _on_drift(self, event: DriftMeasured) -> None:
        self.last_drift = event.fraction
        self.last_new_pairs = event.new_pairs
        for concept, new, conflicted in event.per_concept:
            totals = self.drift_totals.setdefault(concept, [0, 0])
            totals[0] += new
            totals[1] += conflicted

    def _on_cleaned(self, event: CleaningCompleted) -> None:
        self.staleness = 0
        self.cleanings += 1

    def decide(
        self, policy: IngestPolicy, forced: bool = False
    ) -> CleanDecision:
        """Evaluate ``policy`` against the accumulated telemetry."""
        return policy.decide(
            staleness=self.staleness,
            drift=self.last_drift,
            new_pairs=self.last_new_pairs,
            forced=forced,
        )

    def restore(self, *, staleness: int, cleanings: int) -> None:
        """Reset the counters a snapshot carries directly."""
        self.staleness = staleness
        self.cleanings = cleanings

    def fold(self, per_concept: dict[str, list[int]]) -> None:
        """Fold a restored report's per-concept drift into the totals."""
        for concept, counts in per_concept.items():
            totals = self.drift_totals.setdefault(concept, [0, 0])
            totals[0] += counts[0]
            totals[1] += counts[1]

    def close(self) -> None:
        """Detach from the bus."""
        for unsubscribe in self._unsubscribe:
            unsubscribe()
        self._unsubscribe = []
