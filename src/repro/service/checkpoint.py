"""Durable session checkpoints: KB snapshot + corpus + session meta.

Layout of a checkpoint directory::

    journal.jsonl        redo journal (see repro.service.journal)
    CURRENT              name of the active snapshot directory
    snapshot-<seq>/      one complete snapshot
        META.json        session state at seq (+ checkpoint format stamp)
        kb.jsonl         the knowledge base (repro.kb.serialize format)
        corpus.jsonl     accumulated de-duplicated sentences

Snapshots are written to a temp directory, fsynced, renamed into place
and only then published by atomically rewriting ``CURRENT`` — a crash at
any point leaves either the old snapshot or the new one, never a torn
mix.  The journal is truncated after publication; if the process dies in
between, replay's ``seq`` guard skips the already-covered entries.
"""

from __future__ import annotations

import json
import os
import shutil
from pathlib import Path
from collections.abc import Sequence

from ..corpus.corpus import Corpus, sentence_from_json, sentence_to_json
from ..corpus.sentence import Sentence
from ..errors import ServiceError
from ..kb.serialize import load_kb, save_kb
from ..kb.store import KnowledgeBase
from .journal import Journal

__all__ = ["CheckpointStore", "CHECKPOINT_VERSION"]

#: Version of the checkpoint directory layout and META schema.
CHECKPOINT_VERSION = 1


def _fsync_dir(path: Path) -> None:
    fd = os.open(path, os.O_RDONLY)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


class CheckpointStore:
    """Owns one checkpoint directory: snapshots plus the redo journal."""

    def __init__(self, directory: str | Path) -> None:
        self._dir = Path(directory)
        self._dir.mkdir(parents=True, exist_ok=True)
        self.journal = Journal(self._dir / "journal.jsonl")

    @property
    def directory(self) -> Path:
        """The checkpoint directory."""
        return self._dir

    def has_state(self) -> bool:
        """True when there is anything to resume from."""
        return (self._dir / "CURRENT").exists() or (
            self.journal.path.exists()
            and self.journal.path.stat().st_size > 0
        )

    # ------------------------------------------------------------------
    # Snapshots
    # ------------------------------------------------------------------
    def save_snapshot(
        self,
        *,
        seq: int,
        kb: KnowledgeBase,
        sentences: Sequence[Sentence],
        meta: dict,
    ) -> None:
        """Write and publish a snapshot covering journal entries ≤ seq."""
        name = f"snapshot-{seq}"
        tmp = self._dir / (name + ".tmp")
        if tmp.exists():
            shutil.rmtree(tmp)
        tmp.mkdir()
        save_kb(kb, tmp / "kb.jsonl")
        with open(tmp / "corpus.jsonl", "w", encoding="utf-8") as handle:
            for sentence in sentences:
                handle.write(json.dumps(sentence_to_json(sentence)) + "\n")
        payload = dict(meta)
        payload["checkpoint_version"] = CHECKPOINT_VERSION
        payload["seq"] = seq
        (tmp / "META.json").write_text(
            json.dumps(payload, indent=2), encoding="utf-8"
        )
        for item in tmp.iterdir():
            with open(item, "rb") as handle:
                os.fsync(handle.fileno())
        final = self._dir / name
        if final.exists():
            shutil.rmtree(final)
        os.rename(tmp, final)
        _fsync_dir(self._dir)
        # Publish: CURRENT flips atomically to the new snapshot.
        pointer = self._dir / "CURRENT.tmp"
        pointer.write_text(name + "\n", encoding="utf-8")
        with open(pointer, "rb") as handle:
            os.fsync(handle.fileno())
        os.replace(pointer, self._dir / "CURRENT")
        _fsync_dir(self._dir)
        # The journal is now fully covered; entries ≤ seq are dead either way.
        self.journal.reset()
        for stale in self._dir.glob("snapshot-*"):
            if stale.name != name and stale.is_dir():
                shutil.rmtree(stale)

    def load_snapshot(
        self,
    ) -> tuple[KnowledgeBase, list[Sentence], dict] | None:
        """Load the published snapshot, or ``None`` when there is none."""
        pointer = self._dir / "CURRENT"
        if not pointer.exists():
            return None
        name = pointer.read_text(encoding="utf-8").strip()
        snapshot = self._dir / name
        if not snapshot.is_dir():
            raise ServiceError(
                f"checkpoint {self._dir} points at missing snapshot {name!r}"
            )
        try:
            meta = json.loads(
                (snapshot / "META.json").read_text(encoding="utf-8")
            )
        except (OSError, json.JSONDecodeError) as exc:
            raise ServiceError(f"bad snapshot META in {snapshot}: {exc}") from exc
        version = meta.get("checkpoint_version")
        if version != CHECKPOINT_VERSION:
            raise ServiceError(
                f"{snapshot} uses checkpoint format {version!r}; this "
                f"reader understands {CHECKPOINT_VERSION}"
            )
        kb = load_kb(snapshot / "kb.jsonl")
        corpus = Corpus.load_jsonl(snapshot / "corpus.jsonl")
        return kb, list(corpus.sentences), meta

    def load_sentences(self, payload: list[dict]) -> list[Sentence]:
        """Decode journal-entry sentences."""
        return [sentence_from_json(record) for record in payload]
