"""Cleaning strategies: DP-based cleaning plus the §5.3 baselines."""

from .base import BaseCleaner, CleaningResult
from .baselines import (
    MutualExclusionCleaner,
    PRDualRankCleaner,
    RWRankCleaner,
    TypeCheckingCleaner,
)
from .dp_cleaner import DPCleaner, RoundStats
from .intentional import SentenceCheck, check_extraction, score_sentence

__all__ = [
    "BaseCleaner",
    "CleaningResult",
    "DPCleaner",
    "MutualExclusionCleaner",
    "PRDualRankCleaner",
    "RWRankCleaner",
    "RoundStats",
    "SentenceCheck",
    "TypeCheckingCleaner",
    "check_extraction",
    "score_sentence",
]
