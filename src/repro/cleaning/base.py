"""Cleaner interface and result container.

Every cleaning strategy *mutates* the knowledge base it is given (as the
paper's system does) and reports what it removed.  Experiments that compare
cleaners re-run the deterministic extraction to get a fresh knowledge base
per cleaner.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field

from ..corpus.corpus import Corpus
from ..kb.pair import IsAPair
from ..kb.store import KnowledgeBase

__all__ = ["CleaningResult", "BaseCleaner"]


@dataclass
class CleaningResult:
    """What one cleaning run removed."""

    method: str
    removed_pairs: frozenset[IsAPair] = frozenset()
    records_rolled_back: int = 0
    rounds: int = 1
    details: dict = field(default_factory=dict)

    @property
    def num_removed(self) -> int:
        """Number of pairs removed from the knowledge base."""
        return len(self.removed_pairs)

    def removed_under(self, concept: str) -> frozenset[str]:
        """Instances removed under one concept."""
        return frozenset(
            pair.instance
            for pair in self.removed_pairs
            if pair.concept == concept
        )


class BaseCleaner(ABC):
    """A cleaning strategy over a knowledge base."""

    name: str = "abstract"

    @abstractmethod
    def clean(self, kb: KnowledgeBase, corpus: Corpus) -> CleaningResult:
        """Remove suspect pairs from ``kb`` (in place) and report them."""

    @staticmethod
    def _result(
        method: str,
        before: frozenset[IsAPair],
        kb: KnowledgeBase,
        records_rolled_back: int = 0,
        rounds: int = 1,
        details: dict | None = None,
    ) -> CleaningResult:
        """Build a result from the removed-pair delta."""
        removed = kb.removed_pairs() - before
        return CleaningResult(
            method=method,
            removed_pairs=frozenset(removed),
            records_rolled_back=records_rolled_back,
            rounds=rounds,
            details=details or {},
        )
