"""PRDual-Rank cleaning (Fang & Chang, WSDM 2011 — §5.3 baseline).

The original ranks patterns and tuples by propagating *precision* and
*recall* scores across their bipartite co-occurrence graph.  Following the
paper's adaptation ("changing tuples and patterns into isA pairs and
sentences respectively"), we propagate over the bipartite graph of
extraction records (sentences) and isA pairs:

* precision flows **down**: a sentence is as precise as the pairs it
  produced; a pair is as precise as the sentences producing it —
  anchored at evidenced core pairs (precision 1);
* recall flows **up**: seed pairs carry recall mass; a sentence
  accumulates the recall of its pairs; a pair accumulates sentence recall
  normalised by fan-out.

Pairs are ranked by the F1 of the two scores and everything below a
threshold learned from the seeds is removed — like RW-Rank, a global
ranking with a hard cut.
"""

from __future__ import annotations

from ...corpus.corpus import Corpus
from ...kb.pair import IsAPair
from ...kb.store import KnowledgeBase
from ...labeling.evidence import EvidenceIndex
from ...labeling.rules import SeedLabelSet
from ..base import BaseCleaner, CleaningResult
from .rw_rank import learn_relative_threshold

__all__ = ["PRDualRankCleaner"]


class PRDualRankCleaner(BaseCleaner):
    """Dual precision/recall propagation over the record–pair graph."""

    name = "prdualrank"

    def __init__(
        self,
        seeds: SeedLabelSet,
        evidence: EvidenceIndex,
        iterations: int = 8,
    ) -> None:
        if iterations < 1:
            raise ValueError("iterations must be >= 1")
        self._seeds = seeds
        self._evidence = evidence
        self._iterations = iterations

    def clean(self, kb: KnowledgeBase, corpus: Corpus) -> CleaningResult:
        before = kb.removed_pairs()
        f1_scores = self._dual_scores(kb)
        # Normalise per concept so one relative threshold applies everywhere.
        by_concept: dict[str, dict[str, float]] = {}
        for pair, value in f1_scores.items():
            by_concept.setdefault(pair.concept, {})[pair.instance] = value
        for concept, scores in by_concept.items():
            total = sum(scores.values())
            if total > 0:
                by_concept[concept] = {
                    name: value / total for name, value in scores.items()
                }
        multiplier = learn_relative_threshold(by_concept, self._seeds)
        for concept, scores in by_concept.items():
            n = len(scores)
            if n < 3:
                continue
            threshold = multiplier / n
            for instance, score in scores.items():
                if score < threshold:
                    pair = IsAPair(concept, instance)
                    if pair in kb:
                        kb.remove_pair(pair)
        return self._result(
            self.name, before, kb, details={"multiplier": multiplier}
        )

    # ------------------------------------------------------------------
    # Score propagation
    # ------------------------------------------------------------------
    def _dual_scores(self, kb: KnowledgeBase) -> dict[IsAPair, float]:
        seeds: dict[IsAPair, float] = {}
        for concept in kb.concepts():
            for instance in self._evidence.evidenced_correct(concept):
                seeds[IsAPair(concept, instance)] = 1.0
        precision = dict(seeds)
        recall = dict(seeds)
        for _ in range(self._iterations):
            record_precision: dict[int, float] = {}
            record_recall: dict[int, float] = {}
            for record in kb.records():
                # Triggers play the "pattern" role: a sentence inherits
                # quality from the knowledge that resolved it as well as
                # from what it produced.
                linked = record.produced + record.triggers
                if not linked:
                    continue
                record_precision[record.rid] = sum(
                    precision.get(pair, 0.0) for pair in linked
                ) / len(linked)
                record_recall[record.rid] = sum(
                    recall.get(pair, 0.0) for pair in linked
                )
            new_precision: dict[IsAPair, float] = {}
            new_recall: dict[IsAPair, float] = {}
            for pair in kb.pairs():
                records = kb.records_for_pair(pair)
                if records:
                    new_precision[pair] = sum(
                        record_precision.get(r.rid, 0.0) for r in records
                    ) / len(records)
                    new_recall[pair] = sum(
                        record_recall.get(r.rid, 0.0)
                        / max(1, len(r.produced))
                        for r in records
                    )
            for pair, value in seeds.items():
                new_precision[pair] = max(new_precision.get(pair, 0.0), value)
                new_recall[pair] = max(new_recall.get(pair, 0.0), value)
            precision, recall = new_precision, new_recall
        max_recall = max(recall.values(), default=1.0) or 1.0
        scores: dict[IsAPair, float] = {}
        for pair in kb.pairs():
            p = precision.get(pair, 0.0)
            r = recall.get(pair, 0.0) / max_recall
            scores[pair] = 0.0 if p + r == 0 else 2 * p * r / (p + r)
        return scores
