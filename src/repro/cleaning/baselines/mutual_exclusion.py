"""Mutual Exclusion cleaning (MEx, Curran et al. 2007 — §5.3 baseline).

An instance extracted under two mutually exclusive concepts cannot belong
to both; the pair with the weaker evidence (lower count; later iteration
breaks ties) is removed.  High precision, low recall: it only sees errors
that were *also* extracted under their true concept.
"""

from __future__ import annotations

from ...concepts.exclusion import MutualExclusionIndex
from ...corpus.corpus import Corpus
from ...kb.pair import IsAPair
from ...kb.store import KnowledgeBase
from ..base import BaseCleaner, CleaningResult

__all__ = ["MutualExclusionCleaner"]


class MutualExclusionCleaner(BaseCleaner):
    """Remove the weaker pair of every exclusive cross-extraction."""

    name = "mex"

    def __init__(self, exclusion_factory=None) -> None:
        self._exclusion_factory = exclusion_factory or MutualExclusionIndex

    def clean(self, kb: KnowledgeBase, corpus: Corpus) -> CleaningResult:
        before = kb.removed_pairs()
        exclusion = self._exclusion_factory(kb)
        to_remove: set[IsAPair] = set()
        for concept in sorted(kb.concepts()):
            for instance in sorted(kb.instances_of(concept)):
                pair = IsAPair(concept, instance)
                if pair in to_remove:
                    continue
                for other in sorted(kb.concepts_with_instance(instance)):
                    if other <= concept:
                        continue
                    if not exclusion.exclusive(concept, other):
                        continue
                    other_pair = IsAPair(other, instance)
                    to_remove.add(self._weaker(kb, pair, other_pair))
        for pair in sorted(to_remove):
            if pair in kb:
                kb.remove_pair(pair)
        return self._result(self.name, before, kb)

    @staticmethod
    def _weaker(kb: KnowledgeBase, a: IsAPair, b: IsAPair) -> IsAPair:
        count_a, count_b = kb.count(a), kb.count(b)
        if count_a != count_b:
            return a if count_a < count_b else b
        # Equal evidence: the later extraction is the accidental one.
        if kb.first_iteration(a) != kb.first_iteration(b):
            return a if kb.first_iteration(a) > kb.first_iteration(b) else b
        return max(a, b)
