"""Type-Checking cleaning (TCh, Pasca et al. / Carlson et al. — §5.3).

The paper runs the Stanford NER over extracted instances and removes pairs
whose entity type contradicts the concept's expected type.  We use the
:class:`~repro.nlp.SimulatedNER` substrate: each concept's expected type is
the majority NER tag of its most-evidenced core instances, and any instance
tagged differently is removed.

Coarse types give the baseline its paper profile: cross-type drift
(person ← media character) is caught with high precision, same-type drift
(animal ← food, both MISC; country ← city, both LOCATION) is invisible —
hence the low recall of Table 3.
"""

from __future__ import annotations

from ...corpus.corpus import Corpus
from ...kb.pair import IsAPair
from ...kb.store import KnowledgeBase
from ...nlp.ner import SimulatedNER
from ...nlp.types import EntityType
from ..base import BaseCleaner, CleaningResult

__all__ = ["TypeCheckingCleaner"]


class TypeCheckingCleaner(BaseCleaner):
    """Remove pairs whose NER type contradicts the concept's type."""

    name = "tch"

    def __init__(
        self,
        ner: SimulatedNER,
        top_core: int = 30,
        min_agreement: float = 0.6,
    ) -> None:
        if not 0.0 < min_agreement <= 1.0:
            raise ValueError("min_agreement must be in (0, 1]")
        self._ner = ner
        self._top_core = top_core
        self._min_agreement = min_agreement

    def clean(self, kb: KnowledgeBase, corpus: Corpus) -> CleaningResult:
        before = kb.removed_pairs()
        flagged: list[IsAPair] = []
        for concept in sorted(kb.concepts()):
            expected = self.expected_type(kb, concept)
            if expected is None or expected is EntityType.MISC:
                # A MISC-typed class (animal, food, product…) gives the
                # checker nothing to contradict — the structural reason
                # type checking misses most drift.
                continue
            for instance in sorted(kb.instances_of(concept)):
                tag = self._ner.tag(instance)
                if tag is EntityType.MISC:
                    continue  # unrecognised entity: no evidence either way
                if tag is not expected:
                    flagged.append(IsAPair(concept, instance))
        for pair in flagged:
            if pair in kb:
                kb.remove_pair(pair)
        return self._result(self.name, before, kb)

    def expected_type(
        self, kb: KnowledgeBase, concept: str
    ) -> EntityType | None:
        """Majority NER tag over the concept's most-evidenced core.

        Returns ``None`` when the core is empty or the vote is too split
        to trust (the cleaner then leaves the concept alone).
        """
        core = sorted(
            kb.core_instances(concept),
            key=lambda name: -kb.count(IsAPair(concept, name)),
        )[: self._top_core]
        if not core:
            return None
        votes: dict[EntityType, int] = {}
        for instance in core:
            tag = self._ner.tag(instance)
            votes[tag] = votes.get(tag, 0) + 1
        winner, count = max(votes.items(), key=lambda item: item[1])
        if count / len(core) < self._min_agreement:
            return None
        return winner
