"""Random-Walk-Rank cleaning (RW-Rank, §5.3).

Per concept, instances are ranked by their random-walk score and everything
below a learned threshold is removed.  The threshold is a multiple of the
uniform score ``1/n`` (so it transfers across concepts of different sizes)
and is learned from the automatically labelled seeds: the multiplier that
best separates error seeds from correct seeds by F1.

This is the paper's demonstration that even a good ranking model makes a
blunt cleaner: to reach useful error recall the threshold must also cut
away a mass of correct tail instances.
"""

from __future__ import annotations

import numpy as np

from ...corpus.corpus import Corpus
from ...kb.pair import IsAPair
from ...kb.store import KnowledgeBase
from ...labeling.labels import DPLabel
from ...labeling.rules import SeedLabelSet
from ...ranking.random_walk import RandomWalkRanker
from ..base import BaseCleaner, CleaningResult

__all__ = ["RWRankCleaner", "learn_relative_threshold"]

_CANDIDATE_MULTIPLIERS = np.concatenate([
    np.linspace(0.02, 1.0, 25), np.linspace(1.1, 3.0, 10),
])


def learn_relative_threshold(
    scored: dict[str, dict[str, float]],
    seeds: SeedLabelSet,
) -> float:
    """Best score-vs-uniform multiplier separating seed errors from good."""
    rows: list[tuple[float, bool]] = []  # (relative score, is_error)
    for concept, scores in scored.items():
        n = len(scores)
        if n == 0:
            continue
        uniform = 1.0 / n
        for seed in seeds.labels_for(concept):
            score = scores.get(seed.instance)
            if score is None:
                continue
            rows.append((score / uniform, seed.label is DPLabel.ACCIDENTAL))
    if not rows:
        return 0.5
    relative = np.array([rel for rel, _ in rows], dtype=float)
    is_error = np.array([err for _, err in rows], dtype=bool)
    # One comparison matrix covers every candidate at once: below[m, i] is
    # True when row i falls under multiplier m.
    below = relative[None, :] < _CANDIDATE_MULTIPLIERS[:, None]
    tp = (below & is_error[None, :]).sum(axis=1).astype(float)
    fp = (below & ~is_error[None, :]).sum(axis=1).astype(float)
    fn = (~below & is_error[None, :]).sum(axis=1).astype(float)
    with np.errstate(divide="ignore", invalid="ignore"):
        precision = tp / (tp + fp)
        recall = tp / (tp + fn)
        f1 = np.where(tp > 0, 2 * precision * recall / (precision + recall), -1.0)
    best_f1 = -1.0
    best = 0.5
    for multiplier, score in zip(_CANDIDATE_MULTIPLIERS, f1):
        if score > best_f1 and score >= 0:
            best_f1 = float(score)
            best = float(multiplier)
    return best


class RWRankCleaner(BaseCleaner):
    """Threshold cleaner over per-concept random-walk scores."""

    name = "rw_rank"

    def __init__(
        self,
        seeds: SeedLabelSet,
        ranker: RandomWalkRanker | None = None,
    ) -> None:
        self._seeds = seeds
        self._ranker = ranker or RandomWalkRanker()

    def clean(self, kb: KnowledgeBase, corpus: Corpus) -> CleaningResult:
        before = kb.removed_pairs()
        scored = self._ranker.score_all(kb)
        multiplier = learn_relative_threshold(scored, self._seeds)
        removed = 0
        for concept, scores in scored.items():
            n = len(scores)
            if n < 3:
                continue
            threshold = multiplier / n
            for instance, score in scores.items():
                if score < threshold:
                    pair = IsAPair(concept, instance)
                    if pair in kb:
                        kb.remove_pair(pair)
                        removed += 1
        return self._result(
            self.name, before, kb, details={"multiplier": multiplier}
        )
