"""The four comparison cleaners of §5.3."""

from .mutual_exclusion import MutualExclusionCleaner
from .prdualrank import PRDualRankCleaner
from .rw_rank import RWRankCleaner, learn_relative_threshold
from .type_checking import TypeCheckingCleaner

__all__ = [
    "MutualExclusionCleaner",
    "PRDualRankCleaner",
    "RWRankCleaner",
    "TypeCheckingCleaner",
    "learn_relative_threshold",
]
