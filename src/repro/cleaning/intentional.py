"""Checking extractions triggered by Intentional DPs (§4.1, Eq. 21).

An Intentional DP is a *correct* instance, so it is never dropped; instead
every sentence whose resolution it triggered is re-scored.  For sentence
``s`` with candidate concepts ``Cs`` and instances ``Es``::

    Score(s, C) = Σ_{e' ∈ Es}  score(C, e') / Σ_{C' ∈ Cs} score(C', e')

with ``score`` the random-walk score of the pair.  If the concept the
extractor chose does not achieve the highest score, the extraction is a
drifting error and is rolled back (the paper's worked Example 1: the
*food/animal* sentence scores 2.556 vs 0.441 and the *animal* reading is
rolled back).
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Mapping

from ..corpus.sentence import Sentence

__all__ = ["SentenceCheck", "score_sentence", "check_extraction"]


@dataclass(frozen=True)
class SentenceCheck:
    """Outcome of re-scoring one DP-triggered sentence."""

    sid: int
    chosen_concept: str
    trigger_instance: str
    scores: tuple[tuple[str, float], ...]
    is_drifting: bool


def score_sentence(
    sentence: Sentence,
    scores: Mapping[str, Mapping[str, float]],
) -> dict[str, float]:
    """Eq. 21 for every candidate concept of a sentence."""
    result: dict[str, float] = {concept: 0.0 for concept in sentence.concepts}
    rows = [(concept, scores.get(concept, {})) for concept in sentence.concepts]
    for instance in sentence.instances:
        denominator = 0.0
        for _, row in rows:
            denominator += row.get(instance, 0.0)
        if denominator <= 0:
            continue
        for concept, row in rows:
            result[concept] += row.get(instance, 0.0) / denominator
    return result


def check_extraction(
    sentence: Sentence,
    chosen_concept: str,
    trigger_instance: str,
    scores: Mapping[str, Mapping[str, float]],
) -> SentenceCheck:
    """Decide whether a DP-triggered extraction should roll back."""
    concept_scores = score_sentence(sentence, scores)
    best = max(concept_scores.values(), default=0.0)
    chosen = concept_scores.get(chosen_concept, 0.0)
    return SentenceCheck(
        sid=sentence.sid,
        chosen_concept=chosen_concept,
        trigger_instance=trigger_instance,
        scores=tuple(sorted(concept_scores.items())),
        is_drifting=chosen < best,
    )
