"""Checking extractions triggered by Intentional DPs (§4.1, Eq. 21).

An Intentional DP is a *correct* instance, so it is never dropped; instead
every sentence whose resolution it triggered is re-scored.  For sentence
``s`` with candidate concepts ``Cs`` and instances ``Es``::

    Score(s, C) = Σ_{e' ∈ Es}  score(C, e') / Σ_{C' ∈ Cs} score(C', e')

with ``score`` the random-walk score of the pair.  If the concept the
extractor chose does not achieve the highest score, the extraction is a
drifting error and is rolled back (the paper's worked Example 1: the
*food/animal* sentence scores 2.556 vs 0.441 and the *animal* reading is
rolled back).
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Mapping

from ..corpus.sentence import Sentence

__all__ = ["SentenceCheck", "score_sentence", "build_check", "check_extraction"]


@dataclass(frozen=True)
class SentenceCheck:
    """Outcome of re-scoring one DP-triggered sentence."""

    sid: int
    chosen_concept: str
    trigger_instance: str
    scores: tuple[tuple[str, float], ...]
    is_drifting: bool


def score_sentence(
    sentence: Sentence,
    scores: Mapping[str, Mapping[str, float]],
) -> dict[str, float]:
    """Eq. 21 for every candidate concept of a sentence."""
    concepts = sentence.concepts
    empty: dict[str, float] = {}
    if len(concepts) == 2:
        # Same float-op order as the generic path below, specialised for
        # the overwhelmingly common two-candidate sentence.
        first = scores.get(concepts[0], empty).get
        second = scores.get(concepts[1], empty).get
        total_a = 0.0
        total_b = 0.0
        for instance in sentence.instances:
            value_a = first(instance, 0.0)
            value_b = second(instance, 0.0)
            denominator = value_a + value_b
            if denominator <= 0:
                continue
            total_a += value_a / denominator
            total_b += value_b / denominator
        return {concepts[0]: total_a, concepts[1]: total_b}
    rows = [scores.get(concept, empty) for concept in concepts]
    totals = [0.0] * len(rows)
    for instance in sentence.instances:
        values = [row.get(instance, 0.0) for row in rows]
        denominator = 0.0
        for value in values:
            denominator += value
        if denominator <= 0:
            continue
        for i, value in enumerate(values):
            totals[i] += value / denominator
    return dict(zip(concepts, totals))


def build_check(
    sid: int,
    concept_scores: Mapping[str, float],
    chosen_concept: str,
    trigger_instance: str,
) -> SentenceCheck:
    """Assemble the verdict from an already-scored sentence.

    Eq. 21 scores a sentence once for *all* its candidate concepts;
    callers checking several extractions of the same sentence share the
    scoring and derive each verdict here.
    """
    best = max(concept_scores.values(), default=0.0)
    chosen = concept_scores.get(chosen_concept, 0.0)
    return SentenceCheck(
        sid=sid,
        chosen_concept=chosen_concept,
        trigger_instance=trigger_instance,
        scores=tuple(sorted(concept_scores.items())),
        is_drifting=chosen < best,
    )


def check_extraction(
    sentence: Sentence,
    chosen_concept: str,
    trigger_instance: str,
    scores: Mapping[str, Mapping[str, float]],
) -> SentenceCheck:
    """Decide whether a DP-triggered extraction should roll back."""
    return build_check(
        sentence.sid,
        score_sentence(sentence, scores),
        chosen_concept,
        trigger_instance,
    )
