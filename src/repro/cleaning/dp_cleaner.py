"""DP-based cleaning (§4): the paper's primary contribution.

Each cleaning round:

1. a detection callback classifies every (concept, instance) — in the full
   pipeline this is a freshly fitted :class:`~repro.learning.DPDetector`;
2. **Accidental DPs** are dropped and everything they triggered rolls back
   (cascading, §4.2);
3. for every sentence triggered by an **Intentional DP**, Eq. 21 re-scores
   the candidate concepts with current random-walk scores; losing
   extractions roll back (cascading).

Rounds repeat — removing early-iteration DPs exposes and removes the later
DPs they fed — until a round finds nothing to clean or the round cap is
reached.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from collections.abc import Callable, Mapping
from operator import attrgetter

from ..concepts.exclusion import MutualExclusionIndex
from ..config import CleaningConfig
from ..corpus.corpus import Corpus
from ..kb.pair import IsAPair
from ..kb.rollback import RollbackEngine
from ..kb.store import KnowledgeBase
from ..labeling.labels import DPLabel
from ..ranking.random_walk import RandomWalkRanker
from ..runtime.context import NULL_CONTEXT, RunContext
from ..runtime.events import CleaningRound
from .base import BaseCleaner, CleaningResult
from .intentional import SentenceCheck, build_check, score_sentence

__all__ = ["DPCleaner", "RoundStats", "DetectFn"]

#: concept → instance → label for the current knowledge base.
DetectFn = Callable[[KnowledgeBase], Mapping[str, Mapping[str, DPLabel]]]

#: Sort key matching IsAPair's natural (concept, instance) ordering
#: without paying per-comparison tuple construction in the hot loops.
_PAIR_KEY = attrgetter("concept", "instance")


@dataclass
class RoundStats:
    """What one cleaning round did."""

    round_index: int
    intentional_dps: int = 0
    accidental_dps: int = 0
    records_rolled_back: int = 0
    pairs_removed: int = 0
    sentence_checks: list[SentenceCheck] = field(default_factory=list)


class DPCleaner(BaseCleaner):
    """Iterative DP-based cleaning with cascading rollback."""

    name = "dp_cleaning"

    def __init__(
        self,
        detect_fn: DetectFn,
        config: CleaningConfig | None = None,
        ranker: RandomWalkRanker | None = None,
        use_cache: bool = True,
        engine_factory: Callable[[KnowledgeBase], RollbackEngine] | None = None,
        context: RunContext | None = None,
    ) -> None:
        self._detect_fn = detect_fn
        self._config = config or CleaningConfig()
        # A pipeline-minted detection callback carries the run's context
        # (see Pipeline.detect_fn); inheriting it puts the cleaner's
        # spans/events on the same trace and — crucially — resolves the
        # shared per-KB MutualExclusionIndex through the same registry,
        # so one session can never hold two divergent indexes.
        if context is None:
            context = getattr(detect_fn, "context", None)
        self._ctx = context or NULL_CONTEXT
        # The streaming service journals cleaning outcomes by injecting a
        # rollback engine that records the semantic operations it is asked
        # to perform (see repro.service.journal); anything exposing
        # rollback_pair/rollback_records with RollbackEngine semantics
        # qualifies.
        self._engine_factory = engine_factory or RollbackEngine
        # The cleaner issues two score_all calls per round over a KB it
        # mutates incrementally; the ranker's mutation-versioned cache
        # (see Ranker.score_all) re-ranks only the concepts the rollbacks
        # touched.  ``use_cache=False`` forces full re-ranking every call.
        # A detection callback may publish the ranker it scores with (see
        # Pipeline.detect_fn); sharing it shares the warm score cache.
        if ranker is None and use_cache:
            ranker = getattr(detect_fn, "ranker", None)
        self._ranker = ranker or RandomWalkRanker(cache=use_cache)
        self._use_cache = use_cache
        # Eq. 21 sentence scorings carried across rounds: keyed by sid,
        # valid while every candidate concept's KB version is unchanged
        # (the ranker's versioned cache then guarantees identical score
        # rows, so the recomputation would be bit-identical).  Entries are
        # ``(candidate concepts, their versions at scoring, scores)``;
        # stale entries are pruned in one pass per round so the check loop
        # hits the memo with a plain dict get.
        self._check_memo: dict[
            int, tuple[tuple[str, ...], tuple[int, ...], dict[str, float]]
        ] = {}

    def clean(self, kb: KnowledgeBase, corpus: Corpus) -> CleaningResult:
        before = kb.removed_pairs()
        by_sid = corpus.by_sid()
        self._check_memo = {}
        engine = self._engine_factory(kb)
        rounds: list[RoundStats] = []
        total_rolled = 0
        ctx = self._ctx
        with ctx.span("clean", method=self.name) as span:
            for round_index in range(
                1, self._config.max_cleaning_rounds + 1
            ):
                with ctx.span(
                    "clean.round", round=round_index
                ) as round_span:
                    stats = self._run_round(kb, by_sid, engine, round_index)
                    round_span.add("intentional_dps", stats.intentional_dps)
                    round_span.add("accidental_dps", stats.accidental_dps)
                    round_span.add("pairs_removed", stats.pairs_removed)
                    round_span.add(
                        "records_rolled_back", stats.records_rolled_back
                    )
                    round_span.add(
                        "sentence_checks", len(stats.sentence_checks)
                    )
                rounds.append(stats)
                total_rolled += stats.records_rolled_back
                ctx.emit(
                    CleaningRound(
                        round_index=round_index,
                        intentional_dps=stats.intentional_dps,
                        accidental_dps=stats.accidental_dps,
                        pairs_removed=stats.pairs_removed,
                        records_rolled_back=stats.records_rolled_back,
                        sentence_checks=len(stats.sentence_checks),
                    )
                )
                if (
                    stats.pairs_removed == 0
                    and stats.records_rolled_back == 0
                ):
                    break
            span.add("rounds", len(rounds))
            span.add("records_rolled_back", total_rolled)
        return self._result(
            self.name,
            before,
            kb,
            records_rolled_back=total_rolled,
            rounds=len(rounds),
            details={"rounds": rounds},
        )

    # ------------------------------------------------------------------
    # One round
    # ------------------------------------------------------------------
    def _run_round(
        self,
        kb: KnowledgeBase,
        by_sid: Mapping[int, "object"],
        engine: RollbackEngine,
        round_index: int,
    ) -> RoundStats:
        stats = RoundStats(round_index=round_index)
        detections = self._detect_fn(kb)
        intentional: list[IsAPair] = []
        accidental: list[IsAPair] = []
        acc_label = DPLabel.ACCIDENTAL
        int_label = DPLabel.INTENTIONAL
        for concept, labels in detections.items():
            alive = kb.instance_view(concept)
            for instance, label in labels.items():
                if label is acc_label:
                    if instance in alive:
                        accidental.append(IsAPair(concept, instance))
                elif label is int_label:
                    if instance in alive:
                        intentional.append(IsAPair(concept, instance))
        stats.accidental_dps = len(accidental)
        stats.intentional_dps = len(intentional)

        # Scores for Eq. 21 checks and for the weaker-side test below.
        # The canonical per-KB exclusion index lives in the run context's
        # shared-resource registry: the detection callback registers the
        # index it just built/refreshed over this very KB (see
        # Pipeline.detect_fn), and resolving it here guarantees detection
        # and the cleaner's guards consult the *same* index.  The callback
        # attribute remains as a fallback for bare callbacks without a
        # context; only when neither side published one is a fresh index
        # built (and registered, so later rounds and co-components share
        # it).
        exclusion = self._ctx.resources.get("exclusion", kb)
        if exclusion is not None:
            # No-op when the detection callback just refreshed it; brings
            # a registry entry from an earlier round up to date otherwise
            # (refresh == rebuild is pinned by the concepts property
            # tests).
            exclusion.refresh()
        if exclusion is None and self._use_cache:
            exclusion = getattr(self._detect_fn, "exclusion_index", None)
        if exclusion is None:
            exclusion = MutualExclusionIndex(kb)
            self._ctx.resources.put("exclusion", kb, exclusion)
        relevant = {pair.concept for pair in intentional}
        relevant.update(pair.concept for pair in accidental)
        for pair in accidental:
            relevant.update(
                exclusion.exclusive_concepts_containing(
                    kb, pair.concept, pair.instance
                )
            )
        scores = self._ranker.score_all(kb, sorted(relevant))

        def relative_score(concept: str, instance: str) -> float:
            concept_scores = scores.get(concept, {})
            if not concept_scores:
                return 0.0
            return concept_scores.get(instance, 0.0) * len(concept_scores)

        # Accidental DPs: drop the pair + everything it activated.
        # Two definition-level guards protect against detector false
        # positives (whose cascades would nuke correct knowledge):
        # Property 3 — a real Accidental DP rests on one or two sentences;
        # Definition 4 — it is an instance of *another* class accidentally
        # extracted here, so it must appear under a mutually exclusive
        # concept.
        for pair in sorted(accidental, key=_PAIR_KEY):
            if pair not in kb:
                continue  # removed by an earlier cascade this round
            well_evidenced = kb.count(pair) > self._config.accidental_max_count
            elsewhere = exclusion.exclusive_concepts_containing(
                kb, pair.concept, pair.instance
            )
            # Weaker-side test: the accidental home must score worse than
            # the instance's true home (cf. the paper's New York example:
            # strong under city, one stray sentence under country).
            own = relative_score(pair.concept, pair.instance)
            weaker_side = any(
                relative_score(other, pair.instance) > own
                for other in elsewhere
            )
            if well_evidenced or not weaker_side:
                # Not droppable as accidental — but the detector still
                # considers it a DP, and Eq. 21 arbitration is safe on
                # correct triggers, so check its sentences instead.
                intentional.append(pair)
                continue
            result = engine.rollback_pair(pair)
            stats.records_rolled_back += result.num_records
            stats.pairs_removed += result.num_pairs

        # Intentional DPs: keep the pair, re-score what it triggered.
        # Eq. 21 needs scores for *every* candidate concept of the checked
        # sentences (not just the DP's own concept), and the accidental
        # rollbacks above changed the graph, so re-rank now.
        checkable: list[tuple[IsAPair, int]] = []
        candidate_concepts: set[str] = set()
        for pair in sorted(intentional, key=_PAIR_KEY):
            if pair not in kb:
                continue
            for record in kb.records_triggered_by(pair):
                sentence = by_sid.get(record.sid)
                if sentence is None:
                    continue
                checkable.append((pair, record.rid))
                candidate_concepts.update(sentence.concepts)
        check_scores = self._ranker.score_all(kb, sorted(candidate_concepts))
        # The KB is stable until the rollback below, so concept versions
        # are round constants: prune stale memo entries once up front and
        # the check loop hits the memo with a plain dict get.
        memo = self._check_memo
        use_memo = self._use_cache
        versions: dict[str, int] = {}
        if use_memo and memo:
            concept_version = kb.concept_version
            for sid in list(memo):
                names, stamped, _ = memo[sid]
                for name, stamp in zip(names, stamped):
                    current = versions.get(name)
                    if current is None:
                        current = concept_version(name)
                        versions[name] = current
                    if current != stamp:
                        del memo[sid]
                        break
        to_roll: list[int] = []
        seen_records: set[int] = set()
        # Several DPs can trigger records of the same sentence; Eq. 21
        # scores a sentence once for all its candidate concepts, so both
        # the scoring (per sid) and the verdict (per sid + chosen
        # concept) are shared, restamped with the trigger at hand.
        checked: dict[tuple[int, str], SentenceCheck] = {}
        round_scores: dict[int, dict[str, float]] = {}
        for pair, rid in checkable:
            if rid in seen_records:
                continue
            seen_records.add(rid)
            record = kb.record(rid)
            if not record.active:
                continue
            key = (record.sid, record.concept)
            check = checked.get(key)
            if check is None:
                sid = record.sid
                concept_scores = round_scores.get(sid)
                if concept_scores is None:
                    entry = memo.get(sid) if use_memo else None
                    if entry is not None:
                        concept_scores = entry[2]
                    else:
                        sentence = by_sid[sid]
                        concept_scores = score_sentence(sentence, check_scores)
                        if use_memo:
                            names = sentence.concepts
                            stamped = []
                            for name in names:
                                current = versions.get(name)
                                if current is None:
                                    current = kb.concept_version(name)
                                    versions[name] = current
                                stamped.append(current)
                            memo[sid] = (
                                names, tuple(stamped), concept_scores
                            )
                    round_scores[sid] = concept_scores
                check = build_check(
                    sid, concept_scores, record.concept, pair.instance
                )
                checked[key] = check
            elif check.trigger_instance != pair.instance:
                check = replace(check, trigger_instance=pair.instance)
            stats.sentence_checks.append(check)
            if check.is_drifting:
                to_roll.append(rid)
        if to_roll:
            result = engine.rollback_records(sorted(set(to_roll)))
            stats.records_rolled_back += result.num_records
            stats.pairs_removed += result.num_pairs
        return stats
