"""Per-concept trigger graphs.

§3.1 of the paper: "we build a random walk graph for each target class,
where each instance under the class is taken as a node, and each sentence
parsing [is] represented as edges pointing from an instance to its
triggered sub-instances".  Restart mass sits on the iteration-1 (core)
instances, weighted by their core evidence.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..kb.pair import IsAPair
from ..kb.store import KnowledgeBase

__all__ = ["ConceptGraph", "build_concept_graph"]


@dataclass(frozen=True)
class ConceptGraph:
    """Trigger graph of one concept.

    ``nodes`` is a stable-ordered tuple of instance names; ``edges`` maps a
    node index to ``{successor index: weight}``; ``restart`` is the
    (unnormalised) restart weight per node — positive exactly on core
    instances.
    """

    concept: str
    nodes: tuple[str, ...]
    edges: dict[int, dict[int, float]]
    restart: tuple[float, ...]

    @property
    def size(self) -> int:
        """Number of nodes."""
        return len(self.nodes)

    def index_of(self, instance: str) -> int | None:
        """Node index for an instance (``None`` if absent)."""
        return self._index.get(instance)

    @property
    def _index(self) -> dict[str, int]:
        cached = getattr(self, "_index_cache", None)
        if cached is None:
            cached = {name: i for i, name in enumerate(self.nodes)}
            object.__setattr__(self, "_index_cache", cached)
        return cached

    def total_edge_weight(self) -> float:
        """Sum of all edge weights (diagnostics)."""
        return sum(w for row in self.edges.values() for w in row.values())


def build_concept_graph(kb: KnowledgeBase, concept: str) -> ConceptGraph:
    """Build the trigger graph for one concept from KB provenance."""
    nodes = tuple(sorted(kb.instances_of(concept)))
    index = {name: i for i, name in enumerate(nodes)}
    edges: dict[int, dict[int, float]] = {}
    for record in kb.records():
        if record.concept != concept or record.is_root:
            continue
        for trigger in record.trigger_instances:
            source = index.get(trigger)
            if source is None:
                continue
            row = edges.setdefault(source, {})
            for e in record.instances:
                target = index.get(e)
                if target is None or e == trigger:
                    continue
                row[target] = row.get(target, 0.0) + 1.0
    restart = tuple(
        float(kb.core_count(IsAPair(concept, name))) for name in nodes
    )
    return ConceptGraph(concept=concept, nodes=nodes, edges=edges, restart=restart)
