"""Per-concept trigger graphs.

§3.1 of the paper: "we build a random walk graph for each target class,
where each instance under the class is taken as a node, and each sentence
parsing [is] represented as edges pointing from an instance to its
triggered sub-instances".  Restart mass sits on the iteration-1 (core)
instances, weighted by their core evidence.

Graphs are stored in CSR form (``indptr``/``indices``/``data``) so the
random-walk kernel runs in O(E) per power-iteration step, and
:func:`build_concept_graphs` reads each concept's provenance through the
KB's per-concept record index, so building a batch costs O(records of
those concepts) — not O(all records × concepts).
"""

from __future__ import annotations

import weakref
from dataclasses import dataclass, field
from collections.abc import Iterable, Mapping

import numpy as np

from ..kb.store import KnowledgeBase

# kb → {concept: (concept_version, graph)}.  Graphs are immutable and a
# pure function of the concept's KB state, so any consumer (several
# rankers may hold the same KB) can share one build per concept version.
_GRAPH_CACHE: "weakref.WeakKeyDictionary[KnowledgeBase, dict]" = (
    weakref.WeakKeyDictionary()
)

# kb → {concept: (list_length, codes array, rids array)} — materialised
# views of the KB's append-only edge-occurrence lists.  Only re-converted
# when the list has grown (it never shrinks).
_EDGE_ARRAY_CACHE: "weakref.WeakKeyDictionary[KnowledgeBase, dict]" = (
    weakref.WeakKeyDictionary()
)

__all__ = ["ConceptGraph", "build_concept_graph", "build_concept_graphs"]


@dataclass(frozen=True, eq=False)
class ConceptGraph:
    """Trigger graph of one concept, in CSR form.

    ``nodes`` is a stable-ordered tuple of instance names; row ``i`` of the
    adjacency holds the out-edges of node ``i``: its targets are
    ``indices[indptr[i]:indptr[i + 1]]`` with weights in the matching slice
    of ``data``.  ``restart`` is the (unnormalised) restart weight per
    node — positive exactly on core instances.
    """

    concept: str
    nodes: tuple[str, ...]
    indptr: np.ndarray
    indices: np.ndarray
    data: np.ndarray
    restart: np.ndarray
    _index_cache: dict[str, int] | None = field(
        default=None, repr=False, compare=False
    )
    _edges_cache: dict[int, dict[int, float]] | None = field(
        default=None, repr=False, compare=False
    )

    @property
    def size(self) -> int:
        """Number of nodes."""
        return len(self.nodes)

    @property
    def num_edges(self) -> int:
        """Number of distinct directed edges."""
        return int(self.indices.shape[0])

    def index_of(self, instance: str) -> int | None:
        """Node index for an instance (``None`` if absent)."""
        return self._index.get(instance)

    @property
    def _index(self) -> dict[str, int]:
        cached = self._index_cache
        if cached is None:
            cached = {name: i for i, name in enumerate(self.nodes)}
            object.__setattr__(self, "_index_cache", cached)
        return cached

    @property
    def edges(self) -> dict[int, dict[int, float]]:
        """Adjacency as ``{source: {target: weight}}`` (materialised lazily).

        Compatibility/diagnostics view over the CSR arrays; the kernels
        never touch it.
        """
        cached = self._edges_cache
        if cached is None:
            cached = {}
            for source in range(self.size):
                start, stop = self.indptr[source], self.indptr[source + 1]
                if start == stop:
                    continue
                cached[source] = {
                    int(t): float(w)
                    for t, w in zip(
                        self.indices[start:stop], self.data[start:stop]
                    )
                }
            object.__setattr__(self, "_edges_cache", cached)
        return cached

    def total_edge_weight(self) -> float:
        """Sum of all edge weights (diagnostics)."""
        return float(self.data.sum())

    @classmethod
    def from_edge_dict(
        cls,
        concept: str,
        nodes: tuple[str, ...],
        edges: Mapping[int, Mapping[int, float]],
        restart: Iterable[float],
    ) -> "ConceptGraph":
        """Build a graph from the dict-of-dicts adjacency form."""
        triplets = sorted(
            (source, target, float(weight))
            for source, row in edges.items()
            for target, weight in row.items()
        )
        n = len(nodes)
        sources = np.fromiter(
            (t[0] for t in triplets), dtype=np.intp, count=len(triplets)
        )
        indptr = np.zeros(n + 1, dtype=np.intp)
        np.add.at(indptr, sources + 1, 1)
        np.cumsum(indptr, out=indptr)
        return cls(
            concept=concept,
            nodes=nodes,
            indptr=indptr,
            indices=np.fromiter(
                (t[1] for t in triplets), dtype=np.intp, count=len(triplets)
            ),
            data=np.fromiter(
                (t[2] for t in triplets), dtype=float, count=len(triplets)
            ),
            restart=np.asarray(tuple(restart), dtype=float),
        )


def build_concept_graphs(
    kb: KnowledgeBase, concepts: Iterable[str]
) -> dict[str, ConceptGraph]:
    """Build the trigger graphs of many concepts in one batch.

    Each concept's edges come from the KB's per-concept record index, so
    the batch touches only the provenance of the requested concepts — a
    cache-driven rebuild of a few dirty concepts does not pay for the
    whole record table.
    """
    names = list(dict.fromkeys(concepts))
    cache = _GRAPH_CACHE.setdefault(kb, {})
    arrays = _EDGE_ARRAY_CACHE.setdefault(kb, {})
    graphs: dict[str, ConceptGraph] = {}
    for concept in names:
        version = kb.concept_version(concept)
        cached = cache.get(concept)
        if cached is not None and cached[0] == version:
            graphs[concept] = cached[1]
            continue
        nodes = tuple(sorted(kb.instances_of(concept)))
        n = len(nodes)
        index = {name: i for i, name in enumerate(nodes)}
        codes_list, rids_list = kb.edge_occurrences(concept)
        entry = arrays.get(concept)
        if entry is None or entry[0] != len(codes_list):
            entry = (
                len(codes_list),
                np.array(codes_list, dtype=np.int64),
                np.array(rids_list, dtype=np.int64),
            )
            arrays[concept] = entry
        _, codes_all, rids_all = entry
        if codes_all.size:
            # Keep occurrences from active records whose endpoints are
            # both still alive; remap stable ids to node positions and
            # merge duplicates (np.unique also CSR-sorts the codes).
            codes = codes_all[kb.record_active_flags()[rids_all]]
            ids = kb.instance_id_map(concept)
            positions = np.full(len(ids), -1, dtype=np.int64)
            for name, i in index.items():
                positions[ids[name]] = i
            source_pos = positions[codes >> 32]
            target_pos = positions[codes & 0xFFFFFFFF]
            valid = (source_pos >= 0) & (target_pos >= 0)
            merged, counts = np.unique(
                source_pos[valid] * n + target_pos[valid], return_counts=True
            )
        else:
            merged = np.empty(0, dtype=np.int64)
            counts = np.empty(0, dtype=np.int64)
        sources = merged // n if n else merged
        indptr = np.zeros(n + 1, dtype=np.intp)
        np.add.at(indptr, sources + 1, 1)
        np.cumsum(indptr, out=indptr)
        core = kb.core_counts(concept)
        graphs[concept] = ConceptGraph(
            concept=concept,
            nodes=nodes,
            indptr=indptr,
            indices=(merged - sources * n).astype(np.intp),
            data=counts.astype(float),
            restart=np.array(
                [float(core.get(name, 0)) for name in nodes], dtype=float
            ),
        )
        cache[concept] = (version, graphs[concept])
    return graphs


def build_concept_graph(kb: KnowledgeBase, concept: str) -> ConceptGraph:
    """Build the trigger graph for one concept from KB provenance."""
    return build_concept_graphs(kb, (concept,))[concept]
