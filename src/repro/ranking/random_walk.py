"""The Random-Walk-with-Restart ranking model (§3.1, §5.2).

The paper's chosen scorer (after Tong et al., ICDM 2006): the score of an
instance is the stationary probability of a walk over the directed trigger
graph that restarts — with probability 0.15 per step — at the iteration-1
(core) instances, weighted by their core evidence.  Drift errors are only
reachable through (rare) trigger chains out of the core, so they score low
even when frequent; that is the advantage over the Frequency model.
"""

from __future__ import annotations

import numpy as np

from ..kb.store import KnowledgeBase
from .base import Ranker, register_ranker
from .graph import ConceptGraph, build_concept_graph

__all__ = ["RandomWalkRanker", "random_walk_scores"]


def random_walk_scores(
    graph: ConceptGraph,
    restart_probability: float = 0.15,
    max_iterations: int = 100,
    tolerance: float = 1e-12,
) -> dict[str, float]:
    """Run RWR over a prebuilt concept graph."""
    n = graph.size
    if n == 0:
        return {}
    restart = np.asarray(graph.restart, dtype=float)
    if restart.sum() <= 0:
        # No core instances (degenerate concept): restart uniformly.
        restart = np.full(n, 1.0)
    restart = restart / restart.sum()
    transition = np.zeros((n, n), dtype=float)
    for source, row in graph.edges.items():
        total = sum(row.values())
        for target, w in row.items():
            transition[source, target] = w / total
    dangling = transition.sum(axis=1) <= 0
    p = restart.copy()
    for _ in range(max_iterations):
        # Walkers on dangling nodes restart deterministically.
        dangling_mass = p[dangling].sum()
        updated = (1.0 - restart_probability) * (
            transition.T @ p + dangling_mass * restart
        ) + restart_probability * restart
        if np.abs(updated - p).sum() < tolerance:
            p = updated
            break
        p = updated
    return {name: float(p[i]) for i, name in enumerate(graph.nodes)}


@register_ranker
class RandomWalkRanker(Ranker):
    """RWR from the core, over the directed trigger graph."""

    name = "random_walk"

    def __init__(
        self,
        restart_probability: float = 0.15,
        max_iterations: int = 100,
        tolerance: float = 1e-12,
    ) -> None:
        if not 0.0 < restart_probability < 1.0:
            raise ValueError("restart_probability must be in (0, 1)")
        self._restart = restart_probability
        self._max_iterations = max_iterations
        self._tolerance = tolerance

    def score(self, kb: KnowledgeBase, concept: str) -> dict[str, float]:
        graph = build_concept_graph(kb, concept)
        return random_walk_scores(
            graph,
            restart_probability=self._restart,
            max_iterations=self._max_iterations,
            tolerance=self._tolerance,
        )
