"""The Random-Walk-with-Restart ranking model (§3.1, §5.2).

The paper's chosen scorer (after Tong et al., ICDM 2006): the score of an
instance is the stationary probability of a walk over the directed trigger
graph that restarts — with probability 0.15 per step — at the iteration-1
(core) instances, weighted by their core evidence.  Drift errors are only
reachable through (rare) trigger chains out of the core, so they score low
even when frequent; that is the advantage over the Frequency model.

The kernel is sparse: each power-iteration step costs O(E) (one gather and
one scatter over the CSR arrays) instead of the dense O(n²) matrix-vector
product, which :func:`random_walk_scores_dense` retains as a test oracle.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor

import numpy as np
from scipy import sparse

from ..kb.store import KnowledgeBase
from ..runtime.context import NULL_CONTEXT, RunContext
from .base import Ranker, register_ranker
from .graph import ConceptGraph, build_concept_graphs

__all__ = [
    "RandomWalkRanker",
    "random_walk_scores",
    "random_walk_scores_dense",
]


def _normalised_restart(graph: ConceptGraph) -> np.ndarray:
    restart = np.asarray(graph.restart, dtype=float)
    if restart.sum() <= 0:
        # No core instances (degenerate concept): restart uniformly.
        restart = np.full(graph.size, 1.0)
    return restart / restart.sum()


def random_walk_scores(
    graph: ConceptGraph,
    restart_probability: float = 0.15,
    max_iterations: int = 100,
    tolerance: float = 1e-12,
) -> dict[str, float]:
    """Run RWR over a prebuilt concept graph (sparse, O(E) per step)."""
    n = graph.size
    if n == 0:
        return {}
    restart = _normalised_restart(graph)
    sources = np.repeat(np.arange(n), np.diff(graph.indptr))
    out_weight = np.bincount(sources, weights=graph.data, minlength=n)
    dangling = out_weight <= 0
    # Row-normalised edge weights (the per-source transition probabilities).
    transition = graph.data / out_weight[sources] if len(sources) else graph.data
    targets = graph.indices
    p = restart.copy()
    for _ in range(max_iterations):
        # Walkers on dangling nodes restart deterministically.
        dangling_mass = p[dangling].sum()
        propagated = np.bincount(
            targets, weights=p[sources] * transition, minlength=n
        )
        updated = (1.0 - restart_probability) * (
            propagated + dangling_mass * restart
        ) + restart_probability * restart
        if np.abs(updated - p).sum() < tolerance:
            p = updated
            break
        p = updated
    return {name: float(p[i]) for i, name in enumerate(graph.nodes)}


def _random_walk_scores_union(
    graphs: list[ConceptGraph],
    restart_probability: float,
    max_iterations: int,
    tolerance: float,
) -> list[dict[str, float]]:
    """Solve many disjoint graphs in one block-diagonal power iteration.

    The graphs never interact (the union adjacency is block-diagonal, the
    restart is normalised per block, dangling mass redistributes within its
    own block), so each block's iterates match a standalone solve; a block
    is frozen the first iteration its own residual clears the tolerance,
    preserving standalone early-stopping.  Batching amortises the numpy
    call overhead of a step over every concept, which is what makes
    scoring hundreds of small graphs cheap.
    """
    solutions: list[dict[str, float] | None] = [
        {} if graph.size == 0 else None for graph in graphs
    ]
    blocks = [graph for graph in graphs if graph.size]
    count = len(blocks)
    if count == 0:
        return [solution or {} for solution in solutions]
    sizes = np.array([graph.size for graph in blocks], dtype=np.intp)
    starts = np.zeros(count + 1, dtype=np.intp)
    np.cumsum(sizes, out=starts[1:])
    total = int(starts[-1])
    keep = 1.0 - restart_probability
    restart = np.concatenate([_normalised_restart(graph) for graph in blocks])
    sources = np.concatenate(
        [
            starts[i] + np.repeat(np.arange(graph.size), np.diff(graph.indptr))
            for i, graph in enumerate(blocks)
        ]
    )
    targets = np.concatenate(
        [starts[i] + graph.indices for i, graph in enumerate(blocks)]
    )
    data = np.concatenate([graph.data for graph in blocks])
    out_weight = np.bincount(sources, weights=data, minlength=total)
    transition = data / out_weight[sources] if len(sources) else data
    dangling = np.nonzero(out_weight <= 0)[0]
    block_of = np.repeat(np.arange(count), sizes)
    dangling_block = block_of[dangling]
    # One CSR matrix with M[target, source] = P(source → target); a matvec
    # is then the propagation step for every block at once.
    propagate = sparse.csr_matrix(
        (transition, (targets, sources)), shape=(total, total)
    )
    segment_starts = starts[:-1]
    p = restart.copy()
    result = np.empty(total)
    done = np.zeros(count, dtype=bool)
    for _ in range(max_iterations):
        dangling_mass = np.bincount(
            dangling_block, weights=p[dangling], minlength=count
        )
        updated = propagate @ p
        updated *= keep
        # (1-α)·(propagated + mass·restart) + α·restart, with the two
        # restart terms folded into one per-block coefficient.
        coefficient = keep * dangling_mass + restart_probability
        updated += coefficient[block_of] * restart
        p -= updated
        np.abs(p, out=p)
        residual = np.add.reduceat(p, segment_starts)
        converged = ~done & (residual < tolerance)
        if converged.any():
            for block in np.nonzero(converged)[0]:
                segment = slice(starts[block], starts[block + 1])
                result[segment] = updated[segment]
            done[converged] = True
        p = updated
        if done.all():
            break
    for block in np.nonzero(~done)[0]:
        segment = slice(starts[block], starts[block + 1])
        result[segment] = p[segment]
    solved = iter(
        dict(zip(graph.nodes, result[starts[i] : starts[i + 1]].tolist()))
        for i, graph in enumerate(blocks)
    )
    return [
        next(solved) if solution is None else solution
        for solution in solutions
    ]


def random_walk_scores_dense(
    graph: ConceptGraph,
    restart_probability: float = 0.15,
    max_iterations: int = 100,
    tolerance: float = 1e-12,
) -> dict[str, float]:
    """The original dense O(n²) RWR implementation (test oracle)."""
    n = graph.size
    if n == 0:
        return {}
    restart = _normalised_restart(graph)
    transition = np.zeros((n, n), dtype=float)
    for source, row in graph.edges.items():
        total = sum(row.values())
        for target, w in row.items():
            transition[source, target] = w / total
    dangling = transition.sum(axis=1) <= 0
    p = restart.copy()
    for _ in range(max_iterations):
        dangling_mass = p[dangling].sum()
        updated = (1.0 - restart_probability) * (
            transition.T @ p + dangling_mass * restart
        ) + restart_probability * restart
        if np.abs(updated - p).sum() < tolerance:
            p = updated
            break
        p = updated
    return {name: float(p[i]) for i, name in enumerate(graph.nodes)}


@register_ranker
class RandomWalkRanker(Ranker):
    """RWR from the core, over the directed trigger graph.

    ``workers`` (opt-in) fans the per-concept solves of a batch out over a
    thread pool; results are merged in the caller's concept order, so the
    output is deterministic regardless of scheduling.  ``cache`` controls
    the mutation-versioned score cache inherited from :class:`Ranker`.
    """

    name = "random_walk"

    def __init__(
        self,
        restart_probability: float = 0.15,
        max_iterations: int = 100,
        tolerance: float = 1e-12,
        workers: int = 1,
        cache: bool = True,
        context: RunContext | None = None,
    ) -> None:
        if not 0.0 < restart_probability < 1.0:
            raise ValueError("restart_probability must be in (0, 1)")
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self._restart = restart_probability
        self._max_iterations = max_iterations
        self._tolerance = tolerance
        self._workers = workers
        self.cache_scores = cache
        self.context = context or NULL_CONTEXT

    def _solve(self, graph: ConceptGraph) -> dict[str, float]:
        # Route through the batch kernel so a solo solve (thread fan-out,
        # cache refresh of one concept) is bit-identical to the same
        # concept solved inside any batch.
        return _random_walk_scores_union(
            [graph],
            restart_probability=self._restart,
            max_iterations=self._max_iterations,
            tolerance=self._tolerance,
        )[0]

    def score(self, kb: KnowledgeBase, concept: str) -> dict[str, float]:
        return self._score_batch(kb, [concept])[concept]

    def _score_batch(
        self, kb: KnowledgeBase, concepts: list[str]
    ) -> dict[str, dict[str, float]]:
        with self.context.span(
            "rank.batch", concepts=len(concepts), workers=self._workers
        ) as span:
            graphs = build_concept_graphs(kb, concepts)
            ordered = [graphs[concept] for concept in concepts]
            span.add("nodes", sum(graph.size for graph in ordered))
            if self._workers > 1 and len(ordered) > 1:
                with ThreadPoolExecutor(max_workers=self._workers) as pool:
                    solved = list(pool.map(self._solve, ordered))
            else:
                solved = _random_walk_scores_union(
                    ordered,
                    restart_probability=self._restart,
                    max_iterations=self._max_iterations,
                    tolerance=self._tolerance,
                )
            return dict(zip(concepts, solved))
