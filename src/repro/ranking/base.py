"""Ranker protocol and registry (§5.2 of the paper)."""

from __future__ import annotations

from abc import ABC, abstractmethod

from ..errors import RankingError
from ..kb.store import KnowledgeBase

__all__ = ["Ranker", "RANKERS", "register_ranker", "get_ranker"]


class Ranker(ABC):
    """Assigns each instance of a concept a goodness score.

    Scores are comparable within a concept; all three paper models
    normalise to a probability distribution over the concept's instances.
    """

    name: str = "abstract"

    @abstractmethod
    def score(self, kb: KnowledgeBase, concept: str) -> dict[str, float]:
        """Score every alive instance of ``concept``."""

    def score_all(
        self, kb: KnowledgeBase, concepts: list[str] | None = None
    ) -> dict[str, dict[str, float]]:
        """Score several concepts (all KB concepts by default)."""
        names = concepts if concepts is not None else kb.concepts()
        return {concept: self.score(kb, concept) for concept in names}


RANKERS: dict[str, type[Ranker]] = {}


def register_ranker(cls: type[Ranker]) -> type[Ranker]:
    """Class decorator adding a ranker to the registry."""
    if not cls.name or cls.name == "abstract":
        raise RankingError(f"ranker {cls.__name__} must define a name")
    RANKERS[cls.name] = cls
    return cls


def get_ranker(name: str, **kwargs) -> Ranker:
    """Instantiate a registered ranker by name."""
    try:
        cls = RANKERS[name]
    except KeyError:
        known = ", ".join(sorted(RANKERS))
        raise RankingError(f"unknown ranker {name!r} (known: {known})") from None
    return cls(**kwargs)
