"""Ranker protocol and registry (§5.2 of the paper)."""

from __future__ import annotations

import weakref
from abc import ABC, abstractmethod

from ..errors import RankingError
from ..kb.store import KnowledgeBase
from ..runtime.context import NULL_CONTEXT, RunContext

__all__ = ["Ranker", "RANKERS", "register_ranker", "get_ranker"]


class Ranker(ABC):
    """Assigns each instance of a concept a goodness score.

    Scores are comparable within a concept; all three paper models
    normalise to a probability distribution over the concept's instances.

    :meth:`score_all` keeps a **mutation-versioned cache**: per knowledge
    base (weakly referenced) it remembers each concept's scores together
    with the KB's :meth:`~repro.kb.store.KnowledgeBase.concept_version` at
    scoring time, and re-scores only the concepts mutated since.  All
    ranking models are per-concept local — a concept's scores depend only
    on that concept's pairs and records — which is what makes the
    per-concept dirty tracking sound.  Set ``cache_scores = False`` on an
    instance to disable reuse.
    """

    name: str = "abstract"

    #: class-level default; instances may override (e.g. via a constructor
    #: ``cache=`` parameter).
    cache_scores: bool = True

    #: instrumentation context; instances may override (e.g. via a
    #: constructor ``context=`` parameter).  Observation only — never
    #: changes scores.
    context: RunContext = NULL_CONTEXT

    @abstractmethod
    def score(self, kb: KnowledgeBase, concept: str) -> dict[str, float]:
        """Score every alive instance of ``concept``."""

    def _score_batch(
        self, kb: KnowledgeBase, concepts: list[str]
    ) -> dict[str, dict[str, float]]:
        """Score a batch of concepts (hook for single-pass implementations)."""
        return {concept: self.score(kb, concept) for concept in concepts}

    def score_all(
        self, kb: KnowledgeBase, concepts: list[str] | None = None
    ) -> dict[str, dict[str, float]]:
        """Score several concepts (all KB concepts by default).

        With caching enabled (the default), only concepts the KB reports as
        mutated since their last scoring are recomputed.
        """
        names = list(concepts) if concepts is not None else kb.concepts()
        if not self.cache_scores:
            return self._score_batch(kb, names)
        caches = self.__dict__.get("_score_caches")
        if caches is None:
            caches = weakref.WeakKeyDictionary()
            self.__dict__["_score_caches"] = caches
        cache = caches.get(kb)
        if cache is None:
            cache = {}
            caches[kb] = cache
        stale = []
        versions = {}
        for concept in names:
            version = kb.concept_version(concept)
            entry = cache.get(concept)
            if entry is None or entry[0] != version:
                stale.append(concept)
                versions[concept] = version
        ctx = self.context
        ctx.count("rank.cache.hit", len(names) - len(stale))
        ctx.count("rank.cache.miss", len(stale))
        if stale:
            fresh = self._score_batch(kb, stale)
            for concept in stale:
                cache[concept] = (versions[concept], fresh[concept])
        return {concept: cache[concept][1] for concept in names}


RANKERS: dict[str, type[Ranker]] = {}


def register_ranker(cls: type[Ranker]) -> type[Ranker]:
    """Class decorator adding a ranker to the registry."""
    if not cls.name or cls.name == "abstract":
        raise RankingError(f"ranker {cls.__name__} must define a name")
    RANKERS[cls.name] = cls
    return cls


def get_ranker(name: str, **kwargs) -> Ranker:
    """Instantiate a registered ranker by name."""
    try:
        cls = RANKERS[name]
    except KeyError:
        known = ", ".join(sorted(RANKERS))
        raise RankingError(f"unknown ranker {name!r} (known: {known})") from None
    return cls(**kwargs)
