"""The Frequency ranking model (§5.2 baseline).

Scores are proportional to how many distinct sentences produced the pair —
the paper's straw-man: frequency is a poor error signal because drift
errors can be more frequent than obscure correct instances.
"""

from __future__ import annotations

from ..kb.pair import IsAPair
from ..kb.store import KnowledgeBase
from .base import Ranker, register_ranker

__all__ = ["FrequencyRanker"]


@register_ranker
class FrequencyRanker(Ranker):
    """Score ∝ evidence count, normalised per concept."""

    name = "frequency"

    def score(self, kb: KnowledgeBase, concept: str) -> dict[str, float]:
        instances = kb.instances_of(concept)
        counts = {
            name: float(kb.count(IsAPair(concept, name))) for name in instances
        }
        total = sum(counts.values())
        if total <= 0:
            return {name: 0.0 for name in instances}
        return {name: value / total for name, value in counts.items()}
