"""The PageRank ranking model (§5.2 baseline).

Per the paper: "do page rank based on the same graph with the one used for
random walk, except that the edges are undirected", with teleporting
probability 0.15 (damping 0.85) and uniform teleport — no restart
preference for core instances, which is exactly why it underperforms the
random-walk model.  Like the random-walk kernel, the iteration is sparse:
the symmetrised edge list is gathered/scattered directly, O(E) per step.
"""

from __future__ import annotations

import numpy as np

from ..kb.store import KnowledgeBase
from .base import Ranker, register_ranker
from .graph import ConceptGraph, build_concept_graphs

__all__ = ["PageRankRanker"]


@register_ranker
class PageRankRanker(Ranker):
    """Undirected PageRank over the per-concept trigger graph."""

    name = "pagerank"

    def __init__(
        self,
        teleport: float = 0.15,
        max_iterations: int = 100,
        tolerance: float = 1e-10,
    ) -> None:
        if not 0.0 < teleport < 1.0:
            raise ValueError("teleport must be in (0, 1)")
        self._teleport = teleport
        self._max_iterations = max_iterations
        self._tolerance = tolerance

    def score(self, kb: KnowledgeBase, concept: str) -> dict[str, float]:
        return self._score_batch(kb, [concept])[concept]

    def _score_batch(
        self, kb: KnowledgeBase, concepts: list[str]
    ) -> dict[str, dict[str, float]]:
        graphs = build_concept_graphs(kb, concepts)
        return {concept: self._solve(graphs[concept]) for concept in concepts}

    def _solve(self, graph: ConceptGraph) -> dict[str, float]:
        n = graph.size
        if n == 0:
            return {}
        # Symmetrise the trigger graph: every directed edge contributes its
        # weight in both directions.
        directed_sources = np.repeat(np.arange(n), np.diff(graph.indptr))
        sources = np.concatenate([directed_sources, graph.indices])
        targets = np.concatenate([graph.indices, directed_sources])
        weights = np.concatenate([graph.data, graph.data])
        out = np.bincount(sources, weights=weights, minlength=n)
        dangling = out <= 0
        transition = weights / out[sources] if len(sources) else weights
        rank = np.full(n, 1.0 / n)
        uniform = np.full(n, 1.0 / n)
        for _ in range(self._max_iterations):
            dangling_mass = rank[dangling].sum()
            propagated = np.bincount(
                targets, weights=rank[sources] * transition, minlength=n
            )
            updated = (1.0 - self._teleport) * (
                propagated + dangling_mass * uniform
            ) + self._teleport * uniform
            if np.abs(updated - rank).sum() < self._tolerance:
                rank = updated
                break
            rank = updated
        return {name: float(rank[i]) for i, name in enumerate(graph.nodes)}
