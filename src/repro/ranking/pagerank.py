"""The PageRank ranking model (§5.2 baseline).

Per the paper: "do page rank based on the same graph with the one used for
random walk, except that the edges are undirected", with teleporting
probability 0.15 (damping 0.85) and uniform teleport — no restart
preference for core instances, which is exactly why it underperforms the
random-walk model.
"""

from __future__ import annotations

import numpy as np

from ..kb.store import KnowledgeBase
from .base import Ranker, register_ranker
from .graph import build_concept_graph

__all__ = ["PageRankRanker"]


@register_ranker
class PageRankRanker(Ranker):
    """Undirected PageRank over the per-concept trigger graph."""

    name = "pagerank"

    def __init__(
        self,
        teleport: float = 0.15,
        max_iterations: int = 100,
        tolerance: float = 1e-10,
    ) -> None:
        if not 0.0 < teleport < 1.0:
            raise ValueError("teleport must be in (0, 1)")
        self._teleport = teleport
        self._max_iterations = max_iterations
        self._tolerance = tolerance

    def score(self, kb: KnowledgeBase, concept: str) -> dict[str, float]:
        graph = build_concept_graph(kb, concept)
        n = graph.size
        if n == 0:
            return {}
        # Symmetrise the trigger graph.
        weight = np.zeros((n, n), dtype=float)
        for source, row in graph.edges.items():
            for target, w in row.items():
                weight[source, target] += w
                weight[target, source] += w
        out = weight.sum(axis=1)
        dangling = out <= 0
        transition = np.zeros_like(weight)
        nonzero = ~dangling
        transition[nonzero] = weight[nonzero] / out[nonzero, None]
        rank = np.full(n, 1.0 / n)
        uniform = np.full(n, 1.0 / n)
        for _ in range(self._max_iterations):
            dangling_mass = rank[dangling].sum()
            updated = (1.0 - self._teleport) * (
                transition.T @ rank + dangling_mass * uniform
            ) + self._teleport * uniform
            if np.abs(updated - rank).sum() < self._tolerance:
                rank = updated
                break
            rank = updated
        return {name: float(rank[i]) for i, name in enumerate(graph.nodes)}
