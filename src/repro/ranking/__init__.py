"""Instance-ranking models: frequency, PageRank, random walk with restart."""

from .base import RANKERS, Ranker, get_ranker, register_ranker
from .frequency import FrequencyRanker
from .graph import ConceptGraph, build_concept_graph
from .pagerank import PageRankRanker
from .random_walk import RandomWalkRanker, random_walk_scores

__all__ = [
    "ConceptGraph",
    "FrequencyRanker",
    "PageRankRanker",
    "RANKERS",
    "RandomWalkRanker",
    "Ranker",
    "build_concept_graph",
    "get_ranker",
    "random_walk_scores",
    "register_ranker",
]
