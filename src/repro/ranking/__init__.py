"""Instance-ranking models: frequency, PageRank, random walk with restart."""

from .base import RANKERS, Ranker, get_ranker, register_ranker
from .frequency import FrequencyRanker
from .graph import ConceptGraph, build_concept_graph, build_concept_graphs
from .pagerank import PageRankRanker
from .random_walk import (
    RandomWalkRanker,
    random_walk_scores,
    random_walk_scores_dense,
)

__all__ = [
    "ConceptGraph",
    "FrequencyRanker",
    "PageRankRanker",
    "RANKERS",
    "RandomWalkRanker",
    "Ranker",
    "build_concept_graph",
    "build_concept_graphs",
    "get_ranker",
    "random_walk_scores",
    "random_walk_scores_dense",
    "register_ranker",
]
