"""Command-line interface: ``repro run <experiment>`` / ``python -m repro``.

Examples
--------
Run one experiment at the default paper scale::

    repro run table3

Run everything quickly on a smaller world::

    repro run all --scale 2 --sentences 12000

List available experiments::

    repro list

Stream a corpus through a durable ingestion session::

    repro ingest corpus.jsonl --batch-size 500 --checkpoint-dir state/
    repro ingest corpus.jsonl --checkpoint-dir state/ --resume
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

from .corpus.corpus import Corpus
from .experiments.pipeline import Pipeline, experiment_config
from .experiments.registry import experiment_names, run_experiment
from .runtime.events import BatchIngested, SessionResumed
from .service.policy import IngestPolicy
from .world.presets import paper_world

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of 'Overcoming Semantic Drift in Information "
            "Extraction' (EDBT 2014)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)
    runner = sub.add_parser("run", help="run one experiment (or 'all')")
    runner.add_argument(
        "experiment",
        choices=experiment_names() + ["all"],
        help="table/figure to regenerate",
    )
    runner.add_argument(
        "--scale", type=float, default=4.0,
        help="world size multiplier (default 4.0)",
    )
    runner.add_argument(
        "--sentences", type=int, default=24_000,
        help="corpus size (default 24000)",
    )
    runner.add_argument(
        "--seed", type=int, default=20140324, help="experiment seed",
    )
    runner.add_argument(
        "--output", type=str, default=None,
        help="directory to write <experiment>.json / <experiment>.txt into",
    )
    runner.add_argument(
        "--trace", type=str, default=None,
        help=(
            "JSONL file to export the run's span tree to (with 'all', one "
            "file per experiment, suffixed with the experiment name)"
        ),
    )
    sub.add_parser("list", help="list available experiments")
    ingest = sub.add_parser(
        "ingest",
        help="stream a corpus through a durable ingestion session",
    )
    ingest.add_argument(
        "corpus", nargs="?", default=None,
        help=(
            "JSONL corpus to ingest (written by Corpus.dump_jsonl); omit "
            "to generate a synthetic corpus from --scale/--sentences/--seed"
        ),
    )
    ingest.add_argument(
        "--batch-size", type=int, default=500,
        help="sentences per batch (default 500)",
    )
    ingest.add_argument(
        "--staleness", type=int, default=5000,
        help=(
            "clean after this many new sentences since the last pass "
            "(default 5000; -1 disables the scheduled trigger)"
        ),
    )
    ingest.add_argument(
        "--drift-threshold", type=float, default=0.05,
        help=(
            "clean when a batch's drift fraction reaches this value "
            "(default 0.05; -1 disables the drift trigger)"
        ),
    )
    ingest.add_argument(
        "--min-new-pairs", type=int, default=20,
        help="drift only counts on batches with this many new pairs",
    )
    ingest.add_argument(
        "--checkpoint-dir", type=str, default=None,
        help="journal + snapshot directory (omit for an ephemeral session)",
    )
    ingest.add_argument(
        "--checkpoint-every", type=int, default=1,
        help="snapshot cadence in batches (0 = journal only; default 1)",
    )
    ingest.add_argument(
        "--resume", action="store_true",
        help="resume from --checkpoint-dir and skip already-ingested batches",
    )
    ingest.add_argument(
        "--scale", type=float, default=4.0,
        help="world size multiplier (default 4.0)",
    )
    ingest.add_argument(
        "--sentences", type=int, default=24_000,
        help="synthetic corpus size when no corpus path is given",
    )
    ingest.add_argument(
        "--seed", type=int, default=20140324, help="pipeline seed",
    )
    ingest.add_argument(
        "--trace", type=str, default=None,
        help="JSONL file to export the session's span tree to",
    )
    return parser


def _make_pipeline(args: argparse.Namespace) -> Pipeline:
    preset = paper_world(seed=args.seed, scale=args.scale)
    config = experiment_config(
        num_sentences=args.sentences,
        seed=args.seed,
        profiles=preset.profiles,
    )
    return Pipeline(preset=preset, config=config)


def _print_resumed(event: SessionResumed) -> None:
    if event.batches:
        print(f"resumed: {event.batches} batches already ingested")


def _print_batch(event: BatchIngested) -> None:
    if event.replayed:
        return
    line = (
        f"batch {event.index}: +{event.sentences_new} sentences, "
        f"+{event.new_pairs} pairs, drift {event.drift_fraction:.3f}"
    )
    if event.cleaned:
        line += (
            f" -> cleaned ({event.clean_reason}): "
            f"-{event.removed_pairs} pairs"
        )
    print(line)


def _run_ingest(args: argparse.Namespace) -> int:
    if args.resume and not args.checkpoint_dir:
        print("error: --resume requires --checkpoint-dir", file=sys.stderr)
        return 2
    pipeline = _make_pipeline(args)
    if args.trace:
        pipeline.context.ensure_tracer()
    # The per-batch progress lines are rendered off the session's event
    # bus — the CLI is just one more subscriber to the same telemetry the
    # cleaning policy consumes.  Subscribe before the session is built so
    # the resume notice (emitted during restore) is seen too.
    bus = pipeline.context.bus
    bus.subscribe(SessionResumed, _print_resumed)
    bus.subscribe(BatchIngested, _print_batch)
    corpus = (
        Corpus.load_jsonl(args.corpus) if args.corpus else pipeline.corpus()
    )
    policy = IngestPolicy(
        staleness_threshold=(
            None if args.staleness < 0 else args.staleness
        ),
        drift_threshold=(
            None if args.drift_threshold < 0 else args.drift_threshold
        ),
        min_new_pairs=args.min_new_pairs,
    )
    session = pipeline.session(
        policy=policy,
        checkpoint_dir=args.checkpoint_dir,
        checkpoint_every=args.checkpoint_every,
        resume=args.resume,
    )
    skip = session.batches_ingested
    for index, batch in enumerate(corpus.batches(args.batch_size)):
        if index < skip:
            continue
        session.ingest(batch)
    if args.checkpoint_dir:
        session.checkpoint()
    if args.trace:
        pipeline.context.export_trace(args.trace)
    print(json.dumps(session.stats(), indent=2))
    return 0


def main(argv: list[str] | None = None) -> int:
    """CLI entry point."""
    args = build_parser().parse_args(argv)
    if args.command == "list":
        for name in experiment_names():
            print(name)
        return 0
    if args.command == "ingest":
        return _run_ingest(args)
    names = experiment_names() if args.experiment == "all" else [args.experiment]
    output_dir = Path(args.output) if args.output else None
    if output_dir is not None:
        output_dir.mkdir(parents=True, exist_ok=True)
    trace_path = Path(args.trace) if getattr(args, "trace", None) else None
    for name in names:
        pipeline = _make_pipeline(args)
        if trace_path is not None:
            pipeline.context.ensure_tracer()
        started = time.time()
        result = run_experiment(name, pipeline=pipeline)
        elapsed = time.time() - started
        if trace_path is not None:
            target = trace_path
            if len(names) > 1:
                target = trace_path.with_name(
                    f"{trace_path.stem}-{name}{trace_path.suffix}"
                )
            pipeline.context.export_trace(target)
        print(f"== {result.title} ==")
        print(result.text)
        print(f"[{name} finished in {elapsed:.1f}s]")
        print()
        if output_dir is not None:
            (output_dir / f"{name}.txt").write_text(
                f"{result.title}\n{result.text}\n", encoding="utf-8"
            )
            (output_dir / f"{name}.json").write_text(
                json.dumps(
                    {"name": result.name, "title": result.title,
                     "seconds": round(elapsed, 2), "data": result.data},
                    indent=2, default=str,
                ),
                encoding="utf-8",
            )
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
