"""Command-line interface: ``repro run <experiment>`` / ``python -m repro``.

Examples
--------
Run one experiment at the default paper scale::

    repro run table3

Run everything quickly on a smaller world::

    repro run all --scale 2 --sentences 12000

List available experiments::

    repro list
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

from .experiments.pipeline import Pipeline, experiment_config
from .experiments.registry import experiment_names, run_experiment
from .world.presets import paper_world

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of 'Overcoming Semantic Drift in Information "
            "Extraction' (EDBT 2014)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)
    runner = sub.add_parser("run", help="run one experiment (or 'all')")
    runner.add_argument(
        "experiment",
        choices=experiment_names() + ["all"],
        help="table/figure to regenerate",
    )
    runner.add_argument(
        "--scale", type=float, default=4.0,
        help="world size multiplier (default 4.0)",
    )
    runner.add_argument(
        "--sentences", type=int, default=24_000,
        help="corpus size (default 24000)",
    )
    runner.add_argument(
        "--seed", type=int, default=20140324, help="experiment seed",
    )
    runner.add_argument(
        "--output", type=str, default=None,
        help="directory to write <experiment>.json / <experiment>.txt into",
    )
    sub.add_parser("list", help="list available experiments")
    return parser


def _make_pipeline(args: argparse.Namespace) -> Pipeline:
    preset = paper_world(seed=args.seed, scale=args.scale)
    config = experiment_config(
        num_sentences=args.sentences,
        seed=args.seed,
        profiles=preset.profiles,
    )
    return Pipeline(preset=preset, config=config)


def main(argv: list[str] | None = None) -> int:
    """CLI entry point."""
    args = build_parser().parse_args(argv)
    if args.command == "list":
        for name in experiment_names():
            print(name)
        return 0
    names = experiment_names() if args.experiment == "all" else [args.experiment]
    output_dir = Path(args.output) if args.output else None
    if output_dir is not None:
        output_dir.mkdir(parents=True, exist_ok=True)
    for name in names:
        pipeline = _make_pipeline(args)
        started = time.time()
        result = run_experiment(name, pipeline=pipeline)
        elapsed = time.time() - started
        print(f"== {result.title} ==")
        print(result.text)
        print(f"[{name} finished in {elapsed:.1f}s]")
        print()
        if output_dir is not None:
            (output_dir / f"{name}.txt").write_text(
                f"{result.title}\n{result.text}\n", encoding="utf-8"
            )
            (output_dir / f"{name}.json").write_text(
                json.dumps(
                    {"name": result.name, "title": result.title,
                     "seconds": round(elapsed, 2), "data": result.data},
                    indent=2, default=str,
                ),
                encoding="utf-8",
            )
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
