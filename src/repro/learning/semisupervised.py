"""Single-concept semi-supervised detector (Eq. 15).

Minimises::

    Σᵢ ||Wᵀx̃ᵢ − yᵢ||² + λ( Tr(Wᵀ A W) + β ||W||²_F )

whose closed-form solution in row convention is::

    W = (X_lᵀ X_l + λA + λβI)⁻¹ X_lᵀ Y

This is the "Semi-Supervised" row of Table 4 — manifold-regularised but
without the cross-concept ℓ2,1 coupling.
"""

from __future__ import annotations

import numpy as np

from ..errors import LearningError
from ..runtime.context import NULL_CONTEXT, RunContext
from .training_data import ConceptTrainingData

__all__ = ["solve_semisupervised"]


def solve_semisupervised(
    data: ConceptTrainingData,
    lam: float,
    beta: float,
    context: RunContext | None = None,
) -> np.ndarray:
    """Closed-form W (r × 3) for one concept."""
    ctx = context or NULL_CONTEXT
    r = data.x.shape[1]
    if data.n_labeled == 0:
        raise LearningError(
            f"concept {data.concept!r} has no labelled seeds; use the "
            "pooled fallback detector"
        )
    with ctx.span("detector.fit.concept", concept=data.concept) as span:
        span.add("labelled_rows", data.n_labeled)
        xl, y = data.weighted_rows()
        lhs = xl.T @ xl + lam * data.a + lam * beta * np.eye(r)
        rhs = xl.T @ y
        return np.linalg.solve(lhs, rhs)
