"""DP-detector learning: kernel PCA, Algorithm 1, baselines."""

from .adhoc import AdHocDetector
from .decision_tree import DecisionTreeClassifier
from .detector import DETECTION_METHODS, DetectorRefitCache, DPDetector
from .embedding import FrozenEmbedding
from .kernels import get_kernel, linear_kernel, polynomial_kernel, rbf_kernel
from .kpca import KernelPCA
from .local_predictor import knn_indices, local_laplacian, manifold_matrix
from .multitask import MultiTaskResult, MultiTaskTrainer
from .random_forest import RandomForestClassifier
from .semisupervised import solve_semisupervised
from .training_data import ConceptTrainingData, build_training_data

__all__ = [
    "AdHocDetector",
    "ConceptTrainingData",
    "DETECTION_METHODS",
    "DPDetector",
    "DecisionTreeClassifier",
    "DetectorRefitCache",
    "FrozenEmbedding",
    "KernelPCA",
    "MultiTaskResult",
    "MultiTaskTrainer",
    "RandomForestClassifier",
    "build_training_data",
    "get_kernel",
    "knn_indices",
    "linear_kernel",
    "local_laplacian",
    "manifold_matrix",
    "polynomial_kernel",
    "rbf_kernel",
    "solve_semisupervised",
]
