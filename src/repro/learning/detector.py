"""DP detector facade (§3.3 + the Table 4 baselines).

One entry point covers every detection method the paper evaluates:

* ``multitask`` — kernel PCA + semi-supervised multi-task least squares
  (Algorithm 1), the paper's method;
* ``semisupervised`` — the same without cross-concept coupling (Eq. 15);
* ``supervised`` — a random forest on the raw features, pooled across
  concepts (the conventional baseline);
* ``adhoc1`` … ``adhoc4`` — single-property threshold detectors.

Concepts whose seed set is empty (a third of concepts in the paper) fall
back to a *pooled* detector trained on the union of all seeds — the
practical necessity the paper's multi-task motivation points at.
"""

from __future__ import annotations

from collections.abc import Callable, Mapping

import numpy as np

from ..config import DetectorConfig
from ..errors import LearningError, NotFittedError
from ..features.matrix import ConceptMatrix
from ..labeling.labels import DPLabel
from ..labeling.rules import SeedLabelSet
from ..rng import generator_from
from ..runtime.context import NULL_CONTEXT, RunContext
from ..runtime.events import DetectorFitted, WarmStartReused
from .adhoc import AdHocDetector
from .embedding import FrozenEmbedding
from .multitask import MultiTaskTrainer
from .local_predictor import manifold_matrices
from .random_forest import RandomForestClassifier
from .semisupervised import solve_semisupervised
from .training_data import ConceptTrainingData, build_training_data

__all__ = ["DPDetector", "DetectorRefitCache", "DETECTION_METHODS"]

DETECTION_METHODS = (
    "multitask",
    "semisupervised",
    "supervised",
    "adhoc1",
    "adhoc2",
    "adhoc3",
    "adhoc4",
)

_CLASS_ORDER = (DPLabel.INTENTIONAL, DPLabel.ACCIDENTAL, DPLabel.NON_DP)


class DetectorRefitCache:
    """Per-knowledge-base reuse of transforms and manifolds across refits.

    Entries are validated by **object identity**: the analysis cache hands
    back the *same* :class:`ConceptMatrix` object when a concept's
    dependency versions are unchanged, so ``entry matrix is matrix``
    proves the raw features are byte-identical and the cached transform —
    and the manifold regulariser derived from it — are exact.  The cache
    is cleared whenever the embedding object changes, since transforms
    are only comparable under one basis.
    """

    __slots__ = ("embedding", "transforms", "manifolds")

    def __init__(self) -> None:
        self.embedding: FrozenEmbedding | None = None
        self.transforms: dict[str, tuple[ConceptMatrix, np.ndarray]] = {}
        self.manifolds: dict[str, tuple[np.ndarray, np.ndarray]] = {}


class DPDetector:
    """Classifies every (concept, instance) as Intentional / Accidental / non-DP."""

    def __init__(
        self,
        config: DetectorConfig | None = None,
        method: str = "multitask",
        seed: int | np.random.Generator | None = None,
        context: RunContext | None = None,
    ) -> None:
        if method not in DETECTION_METHODS:
            known = ", ".join(DETECTION_METHODS)
            raise LearningError(f"unknown method {method!r} (known: {known})")
        self._config = config or DetectorConfig()
        self._method = method
        self._ctx = context or NULL_CONTEXT
        self._rng = generator_from(seed)
        self._matrices: dict[str, ConceptMatrix] = {}
        self._transformed: dict[str, np.ndarray] = {}
        self._weights: dict[str, np.ndarray] = {}
        self._pooled_weight: np.ndarray | None = None
        self._forest: RandomForestClassifier | None = None
        self._adhoc: AdHocDetector | None = None
        self._embedding: FrozenEmbedding | None = None
        self._datasets: dict[str, ConceptTrainingData] = {}
        self.accuracy_history: list[float] = []
        self.objective_history: list[float] = []
        self._fitted = False

    @property
    def method(self) -> str:
        """The detection method in use."""
        return self._method

    @property
    def embedding(self) -> FrozenEmbedding | None:
        """The embedding used (fitted here or supplied; kernel methods only)."""
        return self._embedding

    @property
    def concept_weights(self) -> dict[str, np.ndarray]:
        """Fitted per-concept weights (for warm-starting a later refit)."""
        return dict(self._weights)

    # ------------------------------------------------------------------
    # Fitting
    # ------------------------------------------------------------------
    def fit(
        self,
        matrices: Mapping[str, ConceptMatrix],
        seeds: SeedLabelSet,
        eval_fn: Callable[["DPDetector"], float] | None = None,
        *,
        embedding: FrozenEmbedding | None = None,
        refit_cache: DetectorRefitCache | None = None,
        initial_weights: Mapping[str, np.ndarray] | None = None,
    ) -> "DPDetector":
        """Train on per-concept matrices and automatically labelled seeds.

        ``eval_fn`` (multitask only) is called after each training
        iteration with the partially trained detector; its return values
        populate :attr:`accuracy_history` (Fig. 5c).

        ``embedding`` reuses an already-fitted standardisation + KPCA
        basis instead of fitting one on the supplied matrices — the
        cleaning loop freezes round one's embedding for later rounds.
        ``refit_cache`` reuses per-concept transforms and manifold
        regularisers for matrices *object-identical* to a previous fit
        (bit-exact by construction).  ``initial_weights`` warm-starts the
        multi-task optimisation (opt-in; may change results).
        """
        self._matrices = dict(matrices)
        if not self._matrices:
            raise LearningError("no concept matrices supplied")
        ctx = self._ctx
        with ctx.span(
            "detector.fit", method=self._method, concepts=len(self._matrices)
        ) as span:
            if self._method in ("supervised",) or self._method.startswith(
                "adhoc"
            ):
                self._fit_raw_baseline(seeds)
                self._fitted = True
                return self
            transforms_reused = self._embed(embedding, refit_cache)
            manifolds_reused = self._build_datasets(seeds, refit_cache)
            labelled = [d for d in self._datasets.values() if d.n_labeled > 0]
            if not labelled:
                raise LearningError("no concept has labelled seeds")
            span.set(labelled_concepts=len(labelled))
            if initial_weights:
                ctx.emit(WarmStartReused(concepts=len(initial_weights)))
            with ctx.span("detector.pooled"):
                self._fit_pooled(labelled)
            if self._method == "multitask":
                trainer = MultiTaskTrainer(
                    lam=self._config.lam,
                    beta=self._config.beta,
                    gamma=self._config.gamma,
                    iterations=self._config.training_iterations,
                    tolerance=self._config.tolerance,
                    seed=self._rng,
                )
                wrapped = None
                if eval_fn is not None:
                    wrapped = self._wrap_eval(eval_fn)
                with ctx.span("detector.train", method="multitask") as tspan:
                    result = trainer.fit(
                        labelled,
                        eval_fn=wrapped,
                        initial_weights=initial_weights,
                    )
                    tspan.add("iterations", len(result.objective_history))
                self._weights = result.weights
                self.objective_history = result.objective_history
                self.accuracy_history = result.accuracy_history
            else:  # semisupervised: independent closed forms
                with ctx.span("detector.train", method="semisupervised"):
                    self._weights = {
                        d.concept: solve_semisupervised(
                            d,
                            lam=self._config.lam,
                            beta=self._config.beta,
                            context=ctx,
                        )
                        for d in labelled
                    }
            self._fitted = True
            ctx.emit(
                DetectorFitted(
                    method=self._method,
                    concepts=len(self._matrices),
                    labelled_concepts=len(labelled),
                    warm_started=bool(initial_weights),
                    transforms_reused=transforms_reused,
                    manifolds_reused=manifolds_reused,
                )
            )
        return self

    # ------------------------------------------------------------------
    # Prediction
    # ------------------------------------------------------------------
    def predict_concept(self, concept: str) -> dict[str, DPLabel]:
        """Label every instance of one concept."""
        if not self._fitted:
            raise NotFittedError("DPDetector")
        matrix = self._matrices.get(concept)
        if matrix is None:
            raise LearningError(f"concept {concept!r} was not fitted")
        if matrix.size == 0:
            return {}
        if self._method == "supervised":
            classes = self._forest.predict(matrix.x)
            return {
                name: _CLASS_ORDER[int(c)]
                for name, c in zip(matrix.instances, classes)
            }
        if self._method.startswith("adhoc"):
            labels = self._adhoc.predict(matrix.x)
            return dict(zip(matrix.instances, labels))
        weight = self._weights.get(concept, self._pooled_weight)
        scores = self._transformed[concept] @ weight
        if self._config.non_dp_bias:
            # High-recall operating point: handicap the non-DP class so
            # borderline instances are surfaced as DP candidates.  The
            # DP cleaner's definition-level guards and Eq. 21 arbitration
            # absorb the extra false positives.
            scores[:, 2] -= self._config.non_dp_bias
        choices = np.argmax(scores, axis=1)
        return {
            name: _CLASS_ORDER[choice]
            for name, choice in zip(matrix.instances, choices)
        }

    def predict_all(self) -> dict[str, dict[str, DPLabel]]:
        """Labels for every fitted concept."""
        return {
            concept: self.predict_concept(concept) for concept in self._matrices
        }

    def detected_dps(self, concept: str) -> dict[str, DPLabel]:
        """Only the instances flagged as DPs under a concept."""
        return {
            name: label
            for name, label in self.predict_concept(concept).items()
            if label.is_dp
        }

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _embed(
        self,
        embedding: FrozenEmbedding | None,
        cache: DetectorRefitCache | None,
    ) -> int:
        with self._ctx.span("detector.embed") as span:
            fitted_here = embedding is None
            if embedding is None:
                embedding = FrozenEmbedding.fit(
                    self._matrices, self._config, seed=self._rng
                )
            span.set(fitted=fitted_here)
            self._embedding = embedding
            if cache is not None and cache.embedding is not embedding:
                # Transforms are only comparable under one basis.
                cache.embedding = embedding
                cache.transforms.clear()
                cache.manifolds.clear()
            # Projection stays per concept: the blocks fit in cache,
            # whereas a pooled kernel-matrix transform thrashes on its own
            # temporaries.
            self._transformed = {}
            reused = 0
            for concept, matrix in self._matrices.items():
                entry = (
                    cache.transforms.get(concept) if cache is not None else None
                )
                if entry is not None and entry[0] is matrix:
                    transformed = entry[1]
                    reused += 1
                else:
                    transformed = embedding.transform(matrix.x)
                    if cache is not None:
                        cache.transforms[concept] = (matrix, transformed)
                self._transformed[concept] = transformed
            span.add("transforms_reused", reused)
            span.add(
                "transforms_computed", len(self._matrices) - reused
            )
        return reused

    def _build_datasets(
        self, seeds: SeedLabelSet, cache: DetectorRefitCache | None = None
    ) -> int:
        class_weights = None
        if self._config.class_balance:
            counts = seeds.counts()
            totals = np.array(
                [max(1, counts.get(label, 0)) for label in _CLASS_ORDER],
                dtype=float,
            )
            class_weights = totals.sum() / (3.0 * totals)
        # Only concepts with seed labels ever enter training (pooled or
        # multi-task); seed-less ones are predicted with the pooled weight
        # and need no dataset — and, above all, no manifold regulariser,
        # the most expensive per-concept artefact.
        with_seeds = [
            (concept, matrix)
            for concept, matrix in self._matrices.items()
            if matrix.size != 0 and seeds.labels_for(concept)
        ]
        # Resolve manifold regularisers first: cached ones by transform
        # identity, the rest in one batched computation.
        with self._ctx.span("detector.datasets") as span:
            manifolds: dict[str, np.ndarray] = {}
            pending: dict[str, np.ndarray] = {}
            for concept, matrix in with_seeds:
                transformed = self._transformed[concept]
                if cache is not None:
                    entry = cache.manifolds.get(concept)
                    if entry is not None and entry[0] is transformed:
                        manifolds[concept] = entry[1]
                        continue
                pending[concept] = transformed
            if pending:
                fresh = manifold_matrices(
                    pending, self._config.k_neighbors, self._config.local_reg
                )
                for concept, a in fresh.items():
                    manifolds[concept] = a
                    if cache is not None:
                        cache.manifolds[concept] = (pending[concept], a)
            reused = len(with_seeds) - len(pending)
            span.add("manifolds_reused", reused)
            span.add("manifolds_computed", len(pending))
            self._datasets = {}
            for concept, matrix in with_seeds:
                self._datasets[concept] = build_training_data(
                    matrix,
                    self._transformed[concept],
                    seeds.labels_for(concept),
                    k_neighbors=self._config.k_neighbors,
                    local_reg=self._config.local_reg,
                    class_weights=class_weights,
                    a=manifolds[concept],
                )
        return reused

    def _fit_pooled(self, labelled: list[ConceptTrainingData]) -> None:
        """Fallback detector for concepts without their own seeds."""
        weighted = [d.weighted_rows() for d in labelled]
        x_rows = np.vstack([x for x, _ in weighted])
        y_rows = np.vstack([y for _, y in weighted])
        r = x_rows.shape[1]
        mean_a = np.zeros((r, r))
        for data in labelled:
            mean_a += data.a
        mean_a /= len(labelled)
        lam, beta = self._config.lam, self._config.beta
        lhs = x_rows.T @ x_rows + lam * mean_a + lam * beta * np.eye(r)
        self._pooled_weight = np.linalg.solve(lhs, x_rows.T @ y_rows)

    def _fit_raw_baseline(self, seeds: SeedLabelSet) -> None:
        rows = []
        classes = []
        for concept, matrix in self._matrices.items():
            index = {name: i for i, name in enumerate(matrix.instances)}
            for seed in seeds.labels_for(concept):
                row = index.get(seed.instance)
                if row is None:
                    continue
                rows.append(matrix.x[row])
                classes.append(_CLASS_ORDER.index(seed.label))
        if not rows:
            raise LearningError("no seeds align with the supplied matrices")
        x = np.vstack(rows)
        y = np.array(classes, dtype=int)
        if self._method == "supervised":
            self._forest = RandomForestClassifier(
                n_trees=50, max_depth=8, seed=self._rng
            )
            self._forest.fit(x, y)
        else:
            property_id = int(self._method[-1])
            is_dp = y != _CLASS_ORDER.index(DPLabel.NON_DP)
            self._adhoc = AdHocDetector(property_id).fit(x, is_dp)

    def _wrap_eval(
        self, eval_fn: Callable[["DPDetector"], float]
    ) -> Callable[[Mapping[str, np.ndarray]], float]:
        def wrapped(weights: Mapping[str, np.ndarray]) -> float:
            self._weights = dict(weights)
            if self._pooled_weight is None and weights:
                self._pooled_weight = next(iter(weights.values()))
            self._fitted = True
            return eval_fn(self)

        return wrapped
