"""A bagged random forest (the Supervised row of Table 4).

The paper: "a conventional Supervised Learning method (using Random
Forest, which is observed as a good classifier to our task)".
"""

from __future__ import annotations

import numpy as np

from ..errors import LearningError, NotFittedError
from ..rng import generator_from
from .decision_tree import DecisionTreeClassifier

__all__ = ["RandomForestClassifier"]


class RandomForestClassifier:
    """Bootstrap-aggregated CART trees with per-node feature subsampling."""

    def __init__(
        self,
        n_trees: int = 50,
        max_depth: int | None = None,
        min_samples_split: int = 2,
        max_features: int | str | None = "sqrt",
        seed: int | np.random.Generator | None = None,
    ) -> None:
        if n_trees < 1:
            raise LearningError("n_trees must be >= 1")
        self._n_trees = n_trees
        self._max_depth = max_depth
        self._min_samples_split = min_samples_split
        self._max_features = max_features
        self._rng = generator_from(seed)
        self._trees: list[DecisionTreeClassifier] = []
        self._n_classes = 0

    def fit(self, x: np.ndarray, y: np.ndarray) -> "RandomForestClassifier":
        """Fit on rows ``x`` with integer class labels ``y``."""
        x = np.asarray(x, dtype=float)
        y = np.asarray(y, dtype=int)
        if x.shape[0] == 0:
            raise LearningError("cannot fit a forest on empty data")
        self._n_classes = int(y.max()) + 1
        n, d = x.shape
        max_features = self._resolve_max_features(d)
        self._trees = []
        for _ in range(self._n_trees):
            rows = self._rng.integers(0, n, size=n)
            tree = DecisionTreeClassifier(
                max_depth=self._max_depth,
                min_samples_split=self._min_samples_split,
                max_features=max_features,
                rng=self._rng,
            )
            tree.fit(x[rows], y[rows])
            self._trees.append(tree)
        return self

    def predict_proba(self, x: np.ndarray) -> np.ndarray:
        """Mean of per-tree class probabilities."""
        if not self._trees:
            raise NotFittedError("RandomForestClassifier")
        x = np.asarray(x, dtype=float)
        total = np.zeros((x.shape[0], self._n_classes))
        for tree in self._trees:
            proba = tree.predict_proba(x)
            # A bootstrap sample may miss the largest class label, leaving
            # the tree with fewer output columns; pad them with zeros.
            total[:, : proba.shape[1]] += proba
        return total / len(self._trees)

    def predict(self, x: np.ndarray) -> np.ndarray:
        """Arg-max class per row."""
        return self.predict_proba(x).argmax(axis=1)

    def _resolve_max_features(self, d: int) -> int | None:
        if self._max_features is None:
            return None
        if self._max_features == "sqrt":
            return max(1, int(np.sqrt(d)))
        if isinstance(self._max_features, int):
            return max(1, min(self._max_features, d))
        raise LearningError(
            f"unsupported max_features: {self._max_features!r}"
        )
