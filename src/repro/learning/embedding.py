"""Frozen feature embedding shared across detection refits.

The detector z-scores the pooled raw features and projects them through a
kernel-PCA basis fitted on a pooled sample (§3.3.1).  Both the
standardisation statistics and the basis are *global* — they move whenever
any concept's features move — so recomputing them per cleaning round would
force a full refit even when one concept changed.  Instead the cleaning
loop fits the embedding once, on the first detection, and **freezes** it
for subsequent rounds: per-concept transforms stay deterministic functions
of the concept's own raw features, which is what makes the analysis
cache's per-concept transform reuse bit-exact.  (The cleaner removes a few
percent of rows per round; the round-one statistics remain representative.)
"""

from __future__ import annotations

from collections.abc import Mapping

import numpy as np

from ..config import DetectorConfig
from ..errors import LearningError
from ..features.matrix import ConceptMatrix
from .kpca import KernelPCA

__all__ = ["FrozenEmbedding"]


class FrozenEmbedding:
    """Z-scoring statistics plus a fitted kernel-PCA basis."""

    def __init__(
        self, mean: np.ndarray, std: np.ndarray, kpca: KernelPCA
    ) -> None:
        self.mean = mean
        self.std = std
        self.kpca = kpca

    @property
    def n_components(self) -> int:
        """Dimensionality of the embedded space."""
        return self.kpca.n_components

    @classmethod
    def fit(
        cls,
        matrices: Mapping[str, ConceptMatrix],
        config: DetectorConfig,
        seed: int | np.random.Generator | None = None,
    ) -> "FrozenEmbedding":
        """Fit statistics and basis on the pooled concept matrices."""
        blocks = [m.x for m in matrices.values() if m.size > 0]
        if not blocks:
            raise LearningError("no non-empty concept matrices to embed")
        pooled = np.vstack(blocks)
        # Features live on very different scales (f2 counts vs. 1e-3 walk
        # probabilities); z-score them so no dimension dominates the kernel.
        mean = pooled.mean(axis=0)
        std = np.maximum(pooled.std(axis=0), 1e-9)
        kpca = KernelPCA.fit_on_sample(
            (pooled - mean) / std,
            n_components=config.kpca_components,
            kernel=config.kpca_kernel,
            gamma=config.kpca_gamma,
            sample_size=config.kpca_sample_size,
            seed=seed,
        )
        return cls(mean=mean, std=std, kpca=kpca)

    def transform(self, x: np.ndarray) -> np.ndarray:
        """Embed raw feature rows (deterministic, row-independent)."""
        return self.kpca.transform((x - self.mean) / self.std)
