"""Concept-Adaptive Drift Detection — Algorithm 1 (§3.3.2).

Trains all concepts' DP detectors jointly by minimising Eq. 18::

    Σ_c ||X_l_cᵀ W_c − Y_c||²_F
      + λ( Σ_c Tr(W_cᵀ A_c W_c) + β ||W||_{2,1} + γ ||W||²_F )

where ``W`` stacks every detector side by side (r × 3t) and the ℓ2,1 norm
over its rows couples feature usage across concepts.  Each outer iteration
updates the re-weighting matrix ``D`` (``D_ii = 1 / (2‖wⁱ‖)``) and then
every ``W_c`` in closed form (Eq. 20); Theorem 1 of the paper guarantees
the objective decreases monotonically, which a regression test asserts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Callable, Mapping

import numpy as np

from ..errors import LearningError
from ..rng import generator_from
from .training_data import ConceptTrainingData

__all__ = ["MultiTaskResult", "MultiTaskTrainer"]

_EPS = 1e-12


@dataclass
class MultiTaskResult:
    """Trained detectors plus the optimisation trace."""

    weights: dict[str, np.ndarray]
    objective_history: list[float] = field(default_factory=list)
    accuracy_history: list[float] = field(default_factory=list)
    iterations_run: int = 0
    converged: bool = False


class MultiTaskTrainer:
    """Runs Algorithm 1 over a set of per-concept training bundles."""

    def __init__(
        self,
        lam: float = 0.1,
        beta: float = 0.1,
        gamma: float = 0.01,
        iterations: int = 20,
        tolerance: float = 1e-6,
        seed: int | np.random.Generator | None = None,
    ) -> None:
        if iterations < 1:
            raise LearningError("iterations must be >= 1")
        self._lam = lam
        self._beta = beta
        self._gamma = gamma
        self._iterations = iterations
        self._tolerance = tolerance
        self._rng = generator_from(seed)

    def fit(
        self,
        datasets: list[ConceptTrainingData],
        eval_fn: Callable[[Mapping[str, np.ndarray]], float] | None = None,
        initial_weights: Mapping[str, np.ndarray] | None = None,
    ) -> MultiTaskResult:
        """Train every concept's detector jointly.

        ``eval_fn`` (optional) receives the current weights after each
        iteration and returns an accuracy — the trace behind Fig. 5c.
        ``initial_weights`` (optional) warm-starts concepts it covers
        from a previous round's solution instead of the random init; the
        optimisation still converges (the objective decrease of Theorem 1
        is init-independent) but iterates — and with a finite iteration
        budget, results — may differ, so callers keep it opt-in.
        """
        trainable = [d for d in datasets if d.n_labeled > 0]
        if not trainable:
            raise LearningError("no concept has labelled seeds")
        r = trainable[0].x.shape[1]
        for data in trainable:
            if data.x.shape[1] != r:
                raise LearningError(
                    "all concepts must share one transformed feature space"
                )
        weights = {}
        for d in trainable:
            given = None
            if initial_weights is not None:
                given = initial_weights.get(d.concept)
            if given is not None and given.shape == (r, 3):
                weights[d.concept] = np.array(given, dtype=float)
            else:
                weights[d.concept] = 0.01 * self._rng.standard_normal((r, 3))
        result = MultiTaskResult(weights=weights)
        previous = np.inf
        for iteration in range(1, self._iterations + 1):
            d_diag = self._update_d(weights, r)
            for data in trainable:
                weights[data.concept] = self._solve_concept(data, d_diag)
            objective = self._objective(trainable, weights)
            result.objective_history.append(objective)
            if eval_fn is not None:
                result.accuracy_history.append(float(eval_fn(weights)))
            result.iterations_run = iteration
            if abs(previous - objective) <= self._tolerance * max(
                1.0, abs(previous)
            ):
                result.converged = True
                break
            previous = objective
        return result

    # ------------------------------------------------------------------
    # Algorithm internals
    # ------------------------------------------------------------------
    def _update_d(
        self, weights: Mapping[str, np.ndarray], r: int
    ) -> np.ndarray:
        """``D_ii = 1 / (2 ||wⁱ||)`` over rows of the stacked W (r × 3t)."""
        stacked = np.hstack([weights[c] for c in sorted(weights)])
        row_norms = np.sqrt((stacked * stacked).sum(axis=1))
        return 1.0 / (2.0 * np.maximum(row_norms, _EPS))

    def _solve_concept(
        self, data: ConceptTrainingData, d_diag: np.ndarray
    ) -> np.ndarray:
        """Eq. 20 in row convention (with optional per-row loss weights)."""
        r = data.x.shape[1]
        xl, y = data.weighted_rows()
        lhs = (
            xl.T @ xl
            + self._lam * data.a
            + self._lam * self._beta * np.diag(d_diag)
            + self._lam * self._gamma * np.eye(r)
        )
        return np.linalg.solve(lhs, xl.T @ y)

    def _objective(
        self,
        datasets: list[ConceptTrainingData],
        weights: Mapping[str, np.ndarray],
    ) -> float:
        loss = 0.0
        manifold = 0.0
        for data in datasets:
            w = weights[data.concept]
            xl, y = data.weighted_rows()
            residual = xl @ w - y
            loss += float((residual * residual).sum())
            manifold += float(np.trace(w.T @ data.a @ w))
        stacked = np.hstack([weights[c] for c in sorted(weights)])
        l21 = float(np.sqrt((stacked * stacked).sum(axis=1)).sum())
        frob = float((stacked * stacked).sum())
        return loss + self._lam * (manifold + self._beta * l21 + self._gamma * frob)
