"""Kernel PCA (§3.3.1).

The paper transforms the four raw features into a Hilbert-space
representation via full-rank kernel PCA so that no single dimension (in
practice the mutual-exclusion count ``f2``, which the labelling rules are
biased towards) dominates the detector.

One deliberate deviation, documented in DESIGN.md: the basis is fitted on
a *pooled sample across concepts* rather than per concept.  The multi-task
coupling of §3.3.2 requires all concepts' detectors to live in the same
feature space; a shared basis is the consistent reading.
"""

from __future__ import annotations

import numpy as np
from scipy import linalg as scipy_linalg

from ..errors import LearningError, NotFittedError
from ..rng import generator_from
from .kernels import get_kernel

__all__ = ["KernelPCA"]


class KernelPCA:
    """Kernel principal component analysis with a centred kernel."""

    def __init__(
        self,
        n_components: int = 8,
        kernel: str = "rbf",
        gamma: float | None = None,
    ) -> None:
        if n_components < 1:
            raise LearningError("n_components must be >= 1")
        self._n_components = n_components
        self._kernel_name = kernel
        self._kernel = get_kernel(kernel)
        self._gamma = gamma
        self._fit_x: np.ndarray | None = None
        self._alphas: np.ndarray | None = None
        self._column_means: np.ndarray | None = None
        self._total_mean: float = 0.0

    @property
    def n_components(self) -> int:
        """Number of components retained after fitting (may shrink)."""
        if self._alphas is None:
            return self._n_components
        return self._alphas.shape[1]

    def fit(self, x: np.ndarray) -> "KernelPCA":
        """Fit the basis on sample rows ``x`` (n × d)."""
        if x.ndim != 2 or x.shape[0] < 2:
            raise LearningError("KernelPCA.fit needs at least two samples")
        self._fit_x = np.asarray(x, dtype=float)
        n = self._fit_x.shape[0]
        k = self._kernel(self._fit_x, self._fit_x, self._gamma)
        self._column_means = k.mean(axis=0)
        self._total_mean = float(k.mean())
        centred = (
            k
            - self._column_means[None, :]
            - self._column_means[:, None]
            + self._total_mean
        )
        # Only the top ``n_components`` eigenpairs are ever kept, so ask
        # LAPACK for just that slice instead of the full spectrum.
        low = max(0, n - self._n_components)
        eigenvalues, eigenvectors = scipy_linalg.eigh(
            centred, subset_by_index=(low, n - 1)
        )
        eigenvalues = eigenvalues[::-1]
        eigenvectors = eigenvectors[:, ::-1]
        keep = min(self._n_components, int((eigenvalues > 1e-10).sum()))
        if keep < 1:
            raise LearningError("kernel matrix has no positive eigenvalues")
        # Normalise so projections have unit-eigenvalue scaling.
        self._alphas = eigenvectors[:, :keep] / np.sqrt(eigenvalues[:keep])
        return self

    def transform(self, x: np.ndarray) -> np.ndarray:
        """Project rows of ``x`` onto the fitted components."""
        if self._alphas is None or self._fit_x is None:
            raise NotFittedError("KernelPCA")
        x = np.asarray(x, dtype=float)
        if x.size == 0:
            return np.zeros((0, self.n_components))
        k = self._kernel(x, self._fit_x, self._gamma)
        row_means = k.mean(axis=1, keepdims=True)
        # Centre in place (the kernel matrix is ours): same operation
        # order as `k - col - row + total`, without the temporaries.
        k -= self._column_means[None, :]
        k -= row_means
        k += self._total_mean
        return k @ self._alphas

    def fit_transform(self, x: np.ndarray) -> np.ndarray:
        """Fit on ``x`` and return its projection."""
        return self.fit(x).transform(x)

    @classmethod
    def fit_on_sample(
        cls,
        x: np.ndarray,
        n_components: int = 8,
        kernel: str = "rbf",
        gamma: float | None = None,
        sample_size: int = 600,
        seed: int | np.random.Generator | None = None,
    ) -> "KernelPCA":
        """Fit on a random row sample (keeps the eigenproblem small)."""
        rng = generator_from(seed)
        if x.shape[0] > sample_size:
            picked = rng.choice(x.shape[0], size=sample_size, replace=False)
            x = x[np.sort(picked)]
        return cls(n_components=n_components, kernel=kernel, gamma=gamma).fit(x)
