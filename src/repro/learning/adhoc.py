"""Ad-hoc single-property detectors (Table 4 rows 1–4).

Each detector thresholds exactly one of the four features, with the
threshold learned from the seed labels (best F1 on DP-vs-non-DP over a
quantile grid) — the paper's "designed based on an individual property
with a well-learned threshold".

A single property cannot tell Intentional from Accidental DPs, so flagged
instances are assigned a kind with the natural secondary heuristic: a DP
whose own random-walk score is high is a correct instance of the class
(Intentional); a low score marks an Accidental DP.
"""

from __future__ import annotations

import numpy as np

from ..errors import LearningError
from ..labeling.labels import DPLabel

__all__ = ["AdHocDetector"]

#: For each property: (feature index, flag side). ``low`` flags instances
#: whose feature is *below* the threshold, ``high`` above.
_PROPERTY_RULES = {
    1: (0, "low"),   # f1: DPs trigger distributions unlike the class
    2: (1, "high"),  # f2: membership in mutually exclusive concepts
    3: (2, "low"),   # f3: accidental DPs have weak evidence
    4: (3, "low"),   # f4: DP-triggered extractions have weak evidence
}


class AdHocDetector:
    """Threshold detector over one DP property."""

    def __init__(self, property_id: int) -> None:
        if property_id not in _PROPERTY_RULES:
            raise LearningError("property_id must be 1, 2, 3 or 4")
        self.property_id = property_id
        self._feature, self._side = _PROPERTY_RULES[property_id]
        self._threshold: float | None = None
        self._score_split: float = 0.0

    @property
    def threshold(self) -> float:
        """The learned threshold (raises before fit)."""
        if self._threshold is None:
            raise LearningError("detector is not fitted")
        return self._threshold

    def fit(self, x: np.ndarray, is_dp: np.ndarray) -> "AdHocDetector":
        """Learn the threshold maximising DP-detection F1 on seeds."""
        x = np.asarray(x, dtype=float)
        is_dp = np.asarray(is_dp, dtype=bool)
        if x.shape[0] == 0:
            raise LearningError("cannot fit on empty seed data")
        values = x[:, self._feature]
        candidates = np.unique(
            np.quantile(values, np.linspace(0.02, 0.98, 49))
        )
        best_f1 = -1.0
        best_threshold = float(np.median(values))
        for candidate in candidates:
            flagged = self._flag(values, candidate)
            f1 = _binary_f1(flagged, is_dp)
            if f1 > best_f1:
                best_f1 = f1
                best_threshold = float(candidate)
        self._threshold = best_threshold
        scores = x[:, 2]
        self._score_split = float(np.median(scores[is_dp])) if is_dp.any() else 0.0
        return self

    def predict(self, x: np.ndarray) -> list[DPLabel]:
        """Label every row of ``x``."""
        if self._threshold is None:
            raise LearningError("detector is not fitted")
        x = np.asarray(x, dtype=float)
        flagged = self._flag(x[:, self._feature], self._threshold)
        labels = []
        for i, is_dp in enumerate(flagged):
            if not is_dp:
                labels.append(DPLabel.NON_DP)
            elif x[i, 2] > self._score_split:
                labels.append(DPLabel.INTENTIONAL)
            else:
                labels.append(DPLabel.ACCIDENTAL)
        return labels

    def _flag(self, values: np.ndarray, threshold: float) -> np.ndarray:
        if self._side == "low":
            return values < threshold
        return values > threshold


def _binary_f1(predicted: np.ndarray, actual: np.ndarray) -> float:
    tp = float((predicted & actual).sum())
    fp = float((predicted & ~actual).sum())
    fn = float((~predicted & actual).sum())
    if tp == 0:
        return 0.0
    precision = tp / (tp + fp)
    recall = tp / (tp + fn)
    return 2 * precision * recall / (precision + recall)
