"""A small CART decision tree (Gini impurity).

scikit-learn is not available offline, so the paper's supervised baseline
(Random Forest, §5.4) is built from scratch on top of this tree.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import LearningError, NotFittedError

__all__ = ["DecisionTreeClassifier"]


@dataclass
class _Node:
    prediction: np.ndarray  # class-probability vector
    feature: int = -1
    threshold: float = 0.0
    left: "_Node | None" = None
    right: "_Node | None" = None

    @property
    def is_leaf(self) -> bool:
        return self.left is None


def _gini(counts: np.ndarray) -> float:
    total = counts.sum()
    if total <= 0:
        return 0.0
    p = counts / total
    return float(1.0 - (p * p).sum())


class DecisionTreeClassifier:
    """Binary-split CART tree over dense features.

    Parameters
    ----------
    max_depth:
        Depth cap (``None`` = unbounded).
    min_samples_split:
        Minimum node size eligible for a split.
    max_features:
        Features considered per split (``None`` = all) — randomised per
        node when an ``rng`` is given, which is what the forest relies on.
    """

    def __init__(
        self,
        max_depth: int | None = None,
        min_samples_split: int = 2,
        max_features: int | None = None,
        rng: np.random.Generator | None = None,
    ) -> None:
        if min_samples_split < 2:
            raise LearningError("min_samples_split must be >= 2")
        self._max_depth = max_depth
        self._min_samples_split = min_samples_split
        self._max_features = max_features
        self._rng = rng
        self._root: _Node | None = None
        self._n_classes = 0

    def fit(self, x: np.ndarray, y: np.ndarray) -> "DecisionTreeClassifier":
        """Fit on rows ``x`` with integer class labels ``y``."""
        x = np.asarray(x, dtype=float)
        y = np.asarray(y, dtype=int)
        if x.shape[0] != y.shape[0] or x.shape[0] == 0:
            raise LearningError("x and y must be non-empty and aligned")
        self._n_classes = int(y.max()) + 1
        self._root = self._build(x, y, depth=0)
        return self

    def predict_proba(self, x: np.ndarray) -> np.ndarray:
        """Class-probability rows for ``x``."""
        if self._root is None:
            raise NotFittedError("DecisionTreeClassifier")
        x = np.asarray(x, dtype=float)
        return np.array([self._walk(row) for row in x])

    def predict(self, x: np.ndarray) -> np.ndarray:
        """Arg-max class per row."""
        return self.predict_proba(x).argmax(axis=1)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _build(self, x: np.ndarray, y: np.ndarray, depth: int) -> _Node:
        counts = np.bincount(y, minlength=self._n_classes).astype(float)
        node = _Node(prediction=counts / counts.sum())
        if (
            (self._max_depth is not None and depth >= self._max_depth)
            or x.shape[0] < self._min_samples_split
            or counts.max() == counts.sum()
        ):
            return node
        split = self._best_split(x, y)
        if split is None:
            return node
        feature, threshold = split
        mask = x[:, feature] <= threshold
        if mask.all() or not mask.any():
            return node
        node.feature = feature
        node.threshold = threshold
        node.left = self._build(x[mask], y[mask], depth + 1)
        node.right = self._build(x[~mask], y[~mask], depth + 1)
        return node

    def _best_split(
        self, x: np.ndarray, y: np.ndarray
    ) -> tuple[int, float] | None:
        n, d = x.shape
        features = np.arange(d)
        if self._max_features is not None and self._max_features < d:
            if self._rng is None:
                features = features[: self._max_features]
            else:
                features = self._rng.choice(
                    d, size=self._max_features, replace=False
                )
        parent_counts = np.bincount(y, minlength=self._n_classes).astype(float)
        best_gain = 1e-12
        best: tuple[int, float] | None = None
        parent_impurity = _gini(parent_counts)
        for feature in features:
            order = np.argsort(x[:, feature], kind="stable")
            values = x[order, feature]
            labels = y[order]
            left_counts = np.zeros(self._n_classes)
            right_counts = parent_counts.copy()
            for i in range(n - 1):
                label = labels[i]
                left_counts[label] += 1
                right_counts[label] -= 1
                if values[i] == values[i + 1]:
                    continue
                n_left = i + 1
                n_right = n - n_left
                gain = parent_impurity - (
                    n_left * _gini(left_counts) + n_right * _gini(right_counts)
                ) / n
                if gain > best_gain:
                    best_gain = gain
                    best = (int(feature), float((values[i] + values[i + 1]) / 2))
        return best

    def _walk(self, row: np.ndarray) -> np.ndarray:
        node = self._root
        while not node.is_leaf:
            node = node.left if row[node.feature] <= node.threshold else node.right
        return node.prediction
