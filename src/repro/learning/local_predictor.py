"""The manifold regulariser from local predictors (Eqs. 9–14, 17).

For each instance (labelled or not) a local linear predictor is fitted over
its ``k``-nearest neighbours; disagreement between local predictors and the
global classifier is penalised.  Eliminating the local predictors in closed
form leaves the quadratic penalty ``Tr(Wᵀ A W)`` with

    A = X̃ · ( Σᵢ Sᵢ Lᵢ Sᵢᵀ ) · X̃ᵀ,
    Lᵢ = H − H X̃ᵢᵀ (X̃ᵢ H X̃ᵢᵀ + λI)⁻¹ X̃ᵢ H,

where ``X̃ᵢ`` collects instance *i* and its neighbours and ``H`` is the
centring matrix.  This is how unlabelled instances shape the detector.
"""

from __future__ import annotations

from collections.abc import Mapping

import numpy as np

from ..errors import LearningError

__all__ = [
    "knn_indices",
    "local_laplacian",
    "manifold_matrix",
    "manifold_matrices",
]


def knn_indices(x: np.ndarray, k: int) -> np.ndarray:
    """Index matrix of each row's ``k`` nearest neighbours (self included).

    Returns shape ``(n, min(k + 1, n))``; column 0 is the row itself.
    """
    n = x.shape[0]
    if n == 0:
        raise LearningError("cannot compute neighbours of an empty matrix")
    k_eff = min(k + 1, n)
    squared = (x * x).sum(axis=1)
    distances = squared[:, None] + squared[None, :] - 2.0 * (x @ x.T)
    np.fill_diagonal(distances, -np.inf)  # force self into slot 0
    order = np.argsort(distances, axis=1)
    return order[:, :k_eff]


def local_laplacian(block: np.ndarray, local_reg: float) -> np.ndarray:
    """``L_i`` for one neighbourhood (rows of ``block`` are the samples)."""
    m = block.shape[0]
    h = np.eye(m) - np.full((m, m), 1.0 / m)
    # Eq. 14 in row convention (paper's column matrix X̃ᵢ is blockᵀ):
    #   X̃ᵢ H X̃ᵢᵀ + λI  →  blockᵀ H block + λI              (r × r)
    #   L = H − H block (blockᵀ H block + λI)⁻¹ blockᵀ H     (m × m)
    r = block.shape[1]
    inner = block.T @ h @ block + local_reg * np.eye(r)
    middle = np.linalg.solve(inner, block.T @ h)
    laplacian = h - h @ block @ middle
    # Symmetrise against round-off; L must be PSD (Lemma 1 in the paper).
    return 0.5 * (laplacian + laplacian.T)


def manifold_matrix(
    x: np.ndarray, k_neighbors: int, local_reg: float
) -> np.ndarray:
    """``A = Xᵀ (Σᵢ Sᵢ Lᵢ Sᵢᵀ) X`` in row convention (r × r).

    ``x`` holds one concept's transformed instances as rows (n × r).

    All neighbourhoods share the block shape ``(m, r)``, so the ``n``
    local Laplacians are computed as one batched solve instead of ``n``
    independent ones; with ``H X̃ᵢ`` being the column-centred block, the
    per-neighbourhood algebra of :func:`local_laplacian` becomes

        Lᵢ = H − (H X̃ᵢ) (X̃ᵢᵀ H X̃ᵢ + λI)⁻¹ (H X̃ᵢ)ᵀ.
    """
    n, r = x.shape
    if n == 0:
        return np.zeros((r, r))
    neighbours = knn_indices(x, k_neighbors)
    blocks = x[neighbours]  # (n, m, r)
    m_size = neighbours.shape[1]
    # Push-through identity: H B (Bᵀ H B + λI)⁻¹ Bᵀ H =
    # (H B Bᵀ + λI)⁻¹ (H B Bᵀ H), so the batched solve shrinks from the
    # feature dimension r × r to the (smaller) neighbourhood size m × m.
    bbt = np.matmul(blocks, np.transpose(blocks, (0, 2, 1)))  # (n, m, m)
    hbbt = bbt - bbt.mean(axis=1, keepdims=True)  # H B Bᵀ
    hbbth = hbbt - hbbt.mean(axis=2, keepdims=True)  # H B Bᵀ H
    h = np.eye(m_size) - np.full((m_size, m_size), 1.0 / m_size)
    laplacians = h - np.linalg.solve(
        hbbt + local_reg * np.eye(m_size), hbbth
    )
    laplacians = 0.5 * (laplacians + np.transpose(laplacians, (0, 2, 1)))
    # With Sᵢ the neighbourhood selector, Xᵀ Sᵢ is just blocksᵢᵀ, so the
    # quadratic form contracts neighbourhood-by-neighbourhood without ever
    # materialising the n × n scatter matrix Σᵢ Sᵢ Lᵢ Sᵢᵀ.
    partial = np.matmul(np.transpose(blocks, (0, 2, 1)), laplacians)
    return np.matmul(partial, blocks).sum(axis=0)


def manifold_matrices(
    xs: Mapping[str, np.ndarray], k_neighbors: int, local_reg: float
) -> dict[str, np.ndarray]:
    """:func:`manifold_matrix` for many concepts in shared batched calls.

    Concepts whose neighbourhood blocks have the same shape are stacked
    into one batched solve/matmul sequence.  The gufuncs apply identical
    per-item kernels whatever the batch length, so every returned matrix
    is bit-identical to a standalone :func:`manifold_matrix` call — only
    the per-concept python and dispatch overhead is amortised.
    """
    result: dict[str, np.ndarray] = {}
    grouped: dict[tuple[int, int], list[tuple[str, np.ndarray]]] = {}
    for name, x in xs.items():
        n, r = x.shape
        if n == 0:
            result[name] = np.zeros((r, r))
            continue
        blocks = x[knn_indices(x, k_neighbors)]
        grouped.setdefault(blocks.shape[1:], []).append((name, blocks))
    for (m_size, _), entries in grouped.items():
        blocks = (
            entries[0][1]
            if len(entries) == 1
            else np.concatenate([b for _, b in entries], axis=0)
        )
        bbt = np.matmul(blocks, np.transpose(blocks, (0, 2, 1)))
        hbbt = bbt - bbt.mean(axis=1, keepdims=True)
        hbbth = hbbt - hbbt.mean(axis=2, keepdims=True)
        h = np.eye(m_size) - np.full((m_size, m_size), 1.0 / m_size)
        laplacians = h - np.linalg.solve(
            hbbt + local_reg * np.eye(m_size), hbbth
        )
        laplacians = 0.5 * (laplacians + np.transpose(laplacians, (0, 2, 1)))
        partial = np.matmul(np.transpose(blocks, (0, 2, 1)), laplacians)
        products = np.matmul(partial, blocks)
        offset = 0
        for name, concept_blocks in entries:
            count = concept_blocks.shape[0]
            result[name] = products[offset:offset + count].sum(axis=0)
            offset += count
    return result
