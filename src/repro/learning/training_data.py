"""Per-concept training bundles for the DP detectors."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import LearningError
from ..features.matrix import ConceptMatrix
from ..labeling.labels import SeedLabel, label_to_vector
from .local_predictor import manifold_matrix

__all__ = ["ConceptTrainingData", "build_training_data"]


@dataclass
class ConceptTrainingData:
    """Everything Algorithm 1 needs about one concept.

    ``x`` holds the transformed representations of *all* instances (rows),
    labelled and unlabelled alike; ``labeled_idx`` points at the seed rows
    and ``y`` carries their one-hot labels; ``a`` is the manifold
    regulariser built from the full ``x`` (this is where unlabelled data
    enters the training).
    """

    concept: str
    instances: tuple[str, ...]
    x: np.ndarray
    labeled_idx: np.ndarray
    y: np.ndarray
    a: np.ndarray
    weights: np.ndarray | None = None

    def __post_init__(self) -> None:
        if self.x.shape[0] != len(self.instances):
            raise LearningError("x rows must match instances")
        if self.labeled_idx.shape[0] != self.y.shape[0]:
            raise LearningError("labeled_idx and y must align")
        if self.weights is not None and self.weights.shape[0] != self.y.shape[0]:
            raise LearningError("weights and y must align")

    @property
    def n_labeled(self) -> int:
        """Number of seed-labelled rows."""
        return int(self.labeled_idx.shape[0])

    @property
    def x_labeled(self) -> np.ndarray:
        """The labelled rows of ``x``."""
        return self.x[self.labeled_idx]

    def weighted_rows(self) -> tuple[np.ndarray, np.ndarray]:
        """Labelled rows and targets, scaled by √weight for weighted LS."""
        xl = self.x_labeled
        if self.weights is None:
            return xl, self.y
        root = np.sqrt(self.weights)[:, None]
        return xl * root, self.y * root


def build_training_data(
    matrix: ConceptMatrix,
    transformed: np.ndarray,
    seeds: list[SeedLabel],
    k_neighbors: int,
    local_reg: float,
    class_weights: np.ndarray | None = None,
    a: np.ndarray | None = None,
) -> ConceptTrainingData:
    """Assemble one concept's bundle from transformed features and seeds.

    ``class_weights`` (length 3, one per label column) scales the squared
    loss per class; the detector passes inverse-frequency weights so the
    dominant non-DP seed class does not drown the DP classes.  ``a``
    optionally supplies a precomputed manifold regulariser for exactly
    this ``transformed`` (the analysis cache reuses it across refits —
    it is by far the most expensive part of the bundle).
    """
    index = matrix.row_index
    rows = []
    labels = []
    for seed in seeds:
        row = index.get(seed.instance)
        if row is None:
            continue
        rows.append(row)
        labels.append(label_to_vector(seed.label))
    labeled_idx = np.array(sorted(set(rows)), dtype=int)
    # Deduplicate while keeping the first label for an instance.
    first_label: dict[int, np.ndarray] = {}
    for row, label in zip(rows, labels):
        first_label.setdefault(row, label)
    y = (
        np.array([first_label[row] for row in labeled_idx], dtype=float)
        if labeled_idx.size
        else np.zeros((0, 3))
    )
    weights = None
    if class_weights is not None and y.shape[0]:
        weights = y @ np.asarray(class_weights, dtype=float)
    if a is None:
        a = manifold_matrix(transformed, k_neighbors, local_reg)
    return ConceptTrainingData(
        concept=matrix.concept,
        instances=matrix.instances,
        x=transformed,
        labeled_idx=labeled_idx,
        y=y,
        a=a,
        weights=weights,
    )
