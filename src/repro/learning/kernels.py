"""Kernel functions for the non-linear mapping of §3.3.1."""

from __future__ import annotations

import numpy as np

from ..errors import LearningError

__all__ = ["rbf_kernel", "linear_kernel", "polynomial_kernel", "get_kernel"]


def rbf_kernel(
    a: np.ndarray, b: np.ndarray, gamma: float | None = None
) -> np.ndarray:
    """Gaussian kernel ``exp(-gamma * ||a_i - b_j||²)``.

    ``gamma`` defaults to ``1 / (d * var)`` with ``var`` the variance of
    ``a`` (the scikit-learn "scale" heuristic), which keeps the kernel
    well-conditioned across feature scales.
    """
    if gamma is None:
        variance = float(a.var()) if a.size else 1.0
        gamma = 1.0 / (a.shape[1] * variance) if variance > 0 else 1.0
    sq_a = (a * a).sum(axis=1)[:, None]
    sq_b = (b * b).sum(axis=1)[None, :]
    distances = sq_a + sq_b
    distances -= 2.0 * (a @ b.T)
    np.maximum(distances, 0.0, out=distances)
    distances *= -gamma
    return np.exp(distances, out=distances)


def linear_kernel(a: np.ndarray, b: np.ndarray, gamma: float | None = None) -> np.ndarray:
    """Plain inner-product kernel (``gamma`` ignored)."""
    return a @ b.T


def polynomial_kernel(
    a: np.ndarray, b: np.ndarray, gamma: float | None = None, degree: int = 3
) -> np.ndarray:
    """Polynomial kernel ``(gamma * <a, b> + 1)^degree``."""
    if gamma is None:
        gamma = 1.0 / a.shape[1] if a.shape[1] else 1.0
    return (gamma * (a @ b.T) + 1.0) ** degree


_KERNELS = {
    "rbf": rbf_kernel,
    "linear": linear_kernel,
    "poly": polynomial_kernel,
}


def get_kernel(name: str):
    """Look up a kernel function by name."""
    try:
        return _KERNELS[name]
    except KeyError:
        known = ", ".join(sorted(_KERNELS))
        raise LearningError(f"unknown kernel {name!r} (known: {known})") from None
