"""Design matrices for detector training."""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property

import numpy as np

from .extractor import FeatureExtractor

__all__ = ["ConceptMatrix", "build_concept_matrix"]


@dataclass(frozen=True)
class ConceptMatrix:
    """Raw feature matrix for one concept.

    ``x`` has shape ``(n, 4)``; row ``i`` belongs to ``instances[i]``.
    """

    concept: str
    instances: tuple[str, ...]
    x: np.ndarray

    def __post_init__(self) -> None:
        if self.x.shape != (len(self.instances), 4):
            raise ValueError(
                f"matrix shape {self.x.shape} does not match "
                f"{len(self.instances)} instances"
            )

    @property
    def size(self) -> int:
        """Number of instances (rows)."""
        return len(self.instances)

    @cached_property
    def row_index(self) -> dict[str, int]:
        """Name → row lookup, built once (``instances`` never changes)."""
        return {name: i for i, name in enumerate(self.instances)}

    def row_of(self, instance: str) -> int:
        """Row index for an instance name."""
        return self.row_index[instance]


def build_concept_matrix(
    extractor: FeatureExtractor, concept: str
) -> ConceptMatrix:
    """Extract all features of a concept into a matrix."""
    instances, x = extractor.feature_matrix(concept)
    return ConceptMatrix(concept=concept, instances=instances, x=x)
