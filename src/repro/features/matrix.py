"""Design matrices for detector training."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .extractor import FeatureExtractor, FeatureVector

__all__ = ["ConceptMatrix", "build_concept_matrix"]


@dataclass(frozen=True)
class ConceptMatrix:
    """Raw feature matrix for one concept.

    ``x`` has shape ``(n, 4)``; row ``i`` belongs to ``instances[i]``.
    """

    concept: str
    instances: tuple[str, ...]
    x: np.ndarray

    def __post_init__(self) -> None:
        if self.x.shape != (len(self.instances), 4):
            raise ValueError(
                f"matrix shape {self.x.shape} does not match "
                f"{len(self.instances)} instances"
            )

    @property
    def size(self) -> int:
        """Number of instances (rows)."""
        return len(self.instances)

    def row_of(self, instance: str) -> int:
        """Row index for an instance name."""
        try:
            return self.instances.index(instance)
        except ValueError:
            raise KeyError(instance) from None


def build_concept_matrix(
    extractor: FeatureExtractor, concept: str
) -> ConceptMatrix:
    """Extract all features of a concept into a matrix."""
    vectors: list[FeatureVector] = extractor.extract_concept(concept)
    instances = tuple(v.instance for v in vectors)
    if vectors:
        x = np.array([v.as_tuple() for v in vectors], dtype=float)
    else:
        x = np.zeros((0, 4), dtype=float)
    return ConceptMatrix(concept=concept, instances=instances, x=x)
