"""The paper's four DP features and design-matrix helpers."""

from .distribution import cosine_counts, normalize_counts
from .extractor import FEATURE_NAMES, FeatureExtractor, FeatureVector
from .matrix import ConceptMatrix, build_concept_matrix

__all__ = [
    "ConceptMatrix",
    "FEATURE_NAMES",
    "FeatureExtractor",
    "FeatureVector",
    "build_concept_matrix",
    "cosine_counts",
    "normalize_counts",
]
