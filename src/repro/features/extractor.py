"""The four DP features of §3.1.

For an instance ``e`` under concept ``C``:

* ``f1`` — similarity between the frequency distribution of the
  sub-instances ``e`` triggered and the distribution of ``C``'s
  iteration-1 core (Property 1: DPs trigger instances that look unlike
  the class).  Eq. 1 uses a cosine, which at web scale is dominated by
  how much of the triggered mass falls on the class's frequent
  instances; with our much sparser sub-instance sets the cosine instead
  tracks trigger *volume*, so the default formulation is the direct
  measure of the same quantity — the fraction of triggered occurrences
  landing on core instances (``mode="core_mass"``; ``mode="cosine"`` is
  Eq. 1 verbatim);
* ``f2`` — number of concepts mutually exclusive with ``C`` that also
  extracted ``e`` (Property 2: polysemous instances span exclusive
  classes);
* ``f3`` — the instance's random-walk score (Property 3: accidental DPs
  rest on weak evidence);
* ``f4`` — mean random-walk score of the sub-instances ``e`` triggered
  (Property 4: errors triggered by DPs rest on weak evidence).
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Mapping

from ..concepts.exclusion import MutualExclusionIndex
from ..kb.store import KnowledgeBase
from .distribution import cosine_counts

__all__ = ["FeatureVector", "FeatureExtractor", "FEATURE_NAMES"]

FEATURE_NAMES = ("f1", "f2", "f3", "f4")


@dataclass(frozen=True)
class FeatureVector:
    """The four features for one (concept, instance)."""

    concept: str
    instance: str
    f1: float
    f2: float
    f3: float
    f4: float

    def as_tuple(self) -> tuple[float, float, float, float]:
        """The features in canonical order."""
        return (self.f1, self.f2, self.f3, self.f4)


class FeatureExtractor:
    """Computes DP features from a knowledge base and its indexes.

    Parameters
    ----------
    kb:
        The post-extraction knowledge base.
    exclusion:
        Mutual-exclusion index over the same KB.
    scores:
        Per-concept random-walk scores, as produced by
        :meth:`repro.ranking.RandomWalkRanker.score_all`.
    """

    def __init__(
        self,
        kb: KnowledgeBase,
        exclusion: MutualExclusionIndex,
        scores: Mapping[str, Mapping[str, float]],
        f1_mode: str = "core_mass",
    ) -> None:
        if f1_mode not in ("core_mass", "cosine"):
            raise ValueError(f"unknown f1_mode: {f1_mode!r}")
        self._kb = kb
        self._exclusion = exclusion
        self._scores = scores
        self._f1_mode = f1_mode
        self._core_freq: dict[str, dict[str, int]] = {}

    def extract(self, concept: str, instance: str) -> FeatureVector:
        """Compute the features of one instance under one concept."""
        return self._extract(
            concept,
            instance,
            self._core_frequency(concept),
            self._scores.get(concept, {}),
        )

    def _extract(
        self,
        concept: str,
        instance: str,
        core: Mapping[str, int],
        scores: Mapping[str, float],
    ) -> FeatureVector:
        subs = self._kb.sub_instance_counts(concept, instance)
        get_score = scores.get
        if subs:
            # One pass over the triggered sub-instances collects the core
            # mass (f1) and the score sum (f4) together.
            total = 0
            on_core = 0
            score_sum = 0.0
            for name, count in subs.items():
                total += count
                if name in core:
                    on_core += count
                score_sum += get_score(name, 0.0)
            f4 = score_sum / len(subs)
            if self._f1_mode == "cosine":
                f1 = cosine_counts(subs, core)
            else:
                f1 = on_core / total if total else 0.0
        else:
            f1 = 0.0
            f4 = 0.0
        f2 = float(
            self._exclusion.count_exclusive_containing(
                self._kb, concept, instance
            )
        )
        f3 = float(get_score(instance, 0.0))
        return FeatureVector(
            concept=concept, instance=instance, f1=f1, f2=f2, f3=f3, f4=f4
        )

    def extract_concept(self, concept: str) -> list[FeatureVector]:
        """Features for every alive instance of a concept (sorted order).

        Hoists the per-concept lookups (core distribution, score table) out
        of the per-instance loop.
        """
        core = self._core_frequency(concept)
        scores = self._scores.get(concept, {})
        return [
            self._extract(concept, instance, core, scores)
            for instance in sorted(self._kb.instances_of(concept))
        ]

    def _core_frequency(self, concept: str) -> dict[str, int]:
        cached = self._core_freq.get(concept)
        if cached is None:
            cached = self._kb.core_frequency_distribution(concept)
            self._core_freq[concept] = cached
        return cached
