"""The four DP features of §3.1.

For an instance ``e`` under concept ``C``:

* ``f1`` — similarity between the frequency distribution of the
  sub-instances ``e`` triggered and the distribution of ``C``'s
  iteration-1 core (Property 1: DPs trigger instances that look unlike
  the class).  Eq. 1 uses a cosine, which at web scale is dominated by
  how much of the triggered mass falls on the class's frequent
  instances; with our much sparser sub-instance sets the cosine instead
  tracks trigger *volume*, so the default formulation is the direct
  measure of the same quantity — the fraction of triggered occurrences
  landing on core instances (``mode="core_mass"``; ``mode="cosine"`` is
  Eq. 1 verbatim);
* ``f2`` — number of concepts mutually exclusive with ``C`` that also
  extracted ``e`` (Property 2: polysemous instances span exclusive
  classes);
* ``f3`` — the instance's random-walk score (Property 3: accidental DPs
  rest on weak evidence);
* ``f4`` — mean random-walk score of the sub-instances ``e`` triggered
  (Property 4: errors triggered by DPs rest on weak evidence).
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Mapping

import numpy as np

from ..concepts.exclusion import MutualExclusionIndex
from ..kb.store import KnowledgeBase
from .distribution import cosine_counts

__all__ = ["FeatureVector", "FeatureExtractor", "FEATURE_NAMES"]

FEATURE_NAMES = ("f1", "f2", "f3", "f4")


@dataclass(frozen=True)
class FeatureVector:
    """The four features for one (concept, instance)."""

    concept: str
    instance: str
    f1: float
    f2: float
    f3: float
    f4: float

    def as_tuple(self) -> tuple[float, float, float, float]:
        """The features in canonical order."""
        return (self.f1, self.f2, self.f3, self.f4)


class FeatureExtractor:
    """Computes DP features from a knowledge base and its indexes.

    Parameters
    ----------
    kb:
        The post-extraction knowledge base.
    exclusion:
        Mutual-exclusion index over the same KB.
    scores:
        Per-concept random-walk scores, as produced by
        :meth:`repro.ranking.RandomWalkRanker.score_all`.
    """

    def __init__(
        self,
        kb: KnowledgeBase,
        exclusion: MutualExclusionIndex,
        scores: Mapping[str, Mapping[str, float]],
        f1_mode: str = "core_mass",
    ) -> None:
        if f1_mode not in ("core_mass", "cosine"):
            raise ValueError(f"unknown f1_mode: {f1_mode!r}")
        self._kb = kb
        self._exclusion = exclusion
        self._scores = scores
        self._f1_mode = f1_mode
        self._core_freq: dict[str, dict[str, int]] = {}

    def extract(self, concept: str, instance: str) -> FeatureVector:
        """Compute the features of one instance under one concept."""
        return self._extract(
            concept,
            instance,
            self._core_frequency(concept),
            self._scores.get(concept, {}),
        )

    def _extract(
        self,
        concept: str,
        instance: str,
        core: Mapping[str, int],
        scores: Mapping[str, float],
    ) -> FeatureVector:
        subs = self._kb.sub_instance_counts(concept, instance)
        get_score = scores.get
        if subs:
            # One pass over the triggered sub-instances collects the core
            # mass (f1) and the score sum (f4) together.
            total = 0
            on_core = 0
            score_sum = 0.0
            for name, count in subs.items():
                total += count
                if name in core:
                    on_core += count
                score_sum += get_score(name, 0.0)
            f4 = score_sum / len(subs)
            if self._f1_mode == "cosine":
                f1 = cosine_counts(subs, core)
            else:
                f1 = on_core / total if total else 0.0
        else:
            f1 = 0.0
            f4 = 0.0
        f2 = float(
            self._exclusion.count_exclusive_containing(
                self._kb, concept, instance
            )
        )
        f3 = float(get_score(instance, 0.0))
        return FeatureVector(
            concept=concept, instance=instance, f1=f1, f2=f2, f3=f3, f4=f4
        )

    def extract_concept(self, concept: str) -> list[FeatureVector]:
        """Features for every alive instance of a concept (sorted order).

        Hoists the per-concept lookups (core distribution, score table) out
        of the per-instance loop.
        """
        core = self._core_frequency(concept)
        scores = self._scores.get(concept, {})
        return [
            self._extract(concept, instance, core, scores)
            for instance in sorted(self._kb.instances_of(concept))
        ]

    def feature_matrix(
        self, concept: str
    ) -> tuple[tuple[str, ...], np.ndarray]:
        """All features of a concept as ``(sorted instances, (n, 4) array)``.

        The trigger/sub-instance aggregation (f1, f4) runs as array work
        over the KB's append-only edge-code substrate instead of the
        per-instance record walk — the dominant cost of building all
        concept matrices per detection refit.  ``f2`` stays a Python loop
        (it is a handful of memoised exclusivity lookups per instance)
        and the Eq. 1 cosine mode falls back to the per-instance path.
        """
        names = self._kb.sorted_instances(concept)
        if not names:
            return names, np.zeros((0, 4), dtype=float)
        if self._f1_mode == "cosine":
            vectors = [
                self._extract(
                    concept,
                    instance,
                    self._core_frequency(concept),
                    self._scores.get(concept, {}),
                )
                for instance in names
            ]
            return names, np.array(
                [v.as_tuple() for v in vectors], dtype=float
            )
        kb = self._kb
        scores = self._scores.get(concept, {})
        core = self._core_frequency(concept)
        ids = kb.instance_id_map(concept)
        num_ids = len(ids)
        # Per-id score and core-membership tables (ids cover removed
        # instances too; their rows are simply never read back).
        score_by_id = np.zeros(num_ids)
        core_mask = np.zeros(num_ids)
        for name, i in ids.items():
            value = scores.get(name)
            if value:
                score_by_id[i] = value
            if name in core:
                core_mask[i] = 1.0
        codes, rids = kb.edge_occurrences(concept)
        total = np.zeros(num_ids)
        on_core = np.zeros(num_ids)
        distinct = np.zeros(num_ids)
        score_sum = np.zeros(num_ids)
        if codes:
            codes_arr = np.asarray(codes, dtype=np.int64)
            rids_arr = np.asarray(rids, dtype=np.int64)
            codes_arr = codes_arr[kb.record_active_flags()[rids_arr]]
            if codes_arr.size:
                sources = codes_arr >> 32
                targets = codes_arr & 0xFFFFFFFF
                # f1: occurrence counts, split by core membership of the
                # triggered sub-instance.
                total = np.bincount(sources, minlength=num_ids).astype(float)
                on_core = np.bincount(
                    sources, weights=core_mask[targets], minlength=num_ids
                )
                # f4 averages over *distinct* sub-instances per trigger.
                uniq = np.unique(codes_arr)
                u_sources = uniq >> 32
                distinct = np.bincount(
                    u_sources, minlength=num_ids
                ).astype(float)
                score_sum = np.bincount(
                    u_sources,
                    weights=score_by_id[uniq & 0xFFFFFFFF],
                    minlength=num_ids,
                )
        rows = np.fromiter(
            (ids[name] for name in names), dtype=np.int64, count=len(names)
        )
        x = np.zeros((len(names), 4), dtype=float)
        row_total = total[rows]
        nonzero = row_total > 0
        x[nonzero, 0] = on_core[rows][nonzero] / row_total[nonzero]
        # f2 inverted: instead of walking each instance's claimant concepts
        # (a python loop per instance × claimant), intersect the concept's
        # instance set with each exclusive partner's at C speed.  The
        # candidate partners are exactly the concepts sharing an instance,
        # so the same exclusivity verdicts are consulted either way.
        f2 = x[:, 1]
        row_of = {name: i for i, name in enumerate(names)}
        names_view = row_of.keys()
        exclusive = self._exclusion.exclusive
        for other in kb.concepts_sharing(names):
            if other == concept or not exclusive(concept, other):
                continue
            for name in names_view & kb.instance_view(other):
                f2[row_of[name]] += 1.0
        x[:, 2] = score_by_id[rows]
        row_distinct = distinct[rows]
        nonzero = row_distinct > 0
        x[nonzero, 3] = score_sum[rows][nonzero] / row_distinct[nonzero]
        return names, x

    def _core_frequency(self, concept: str) -> dict[str, int]:
        cached = self._core_freq.get(concept)
        if cached is None:
            cached = self._kb.core_frequency_distribution(concept)
            self._core_freq[concept] = cached
        return cached
