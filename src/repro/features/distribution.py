"""Frequency-distribution vectors and cosine similarity (feature f1)."""

from __future__ import annotations

import math
from collections.abc import Mapping

__all__ = ["cosine_counts", "normalize_counts"]


def cosine_counts(a: Mapping[str, float], b: Mapping[str, float]) -> float:
    """Cosine similarity of two sparse count vectors.

    The vectors are mapped into the same space keyed by instance name, as
    Eq. (1) requires for comparing the sub-instance distribution of an
    instance against a concept's core distribution.

    >>> cosine_counts({"x": 1.0}, {"x": 2.0})
    1.0
    >>> cosine_counts({"x": 1.0}, {"y": 1.0})
    0.0
    """
    if not a or not b:
        return 0.0
    dot = sum(value * b.get(key, 0.0) for key, value in a.items())
    if dot == 0.0:
        return 0.0
    norm_a = math.sqrt(sum(v * v for v in a.values()))
    norm_b = math.sqrt(sum(v * v for v in b.values()))
    return dot / (norm_a * norm_b)


def normalize_counts(counts: Mapping[str, float]) -> dict[str, float]:
    """Scale counts to sum to one (empty input stays empty)."""
    total = float(sum(counts.values()))
    if total <= 0:
        return {}
    return {key: value / total for key, value in counts.items()}
