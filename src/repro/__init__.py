"""repro — reproduction of *Overcoming Semantic Drift in Information
Extraction* (Li et al., EDBT 2014).

The library builds every system the paper's evaluation depends on:

* a generative ground-truth world and synthetic Hearst web corpus
  (:mod:`repro.world`, :mod:`repro.corpus`);
* semantic-based iterative isA extraction with full provenance
  (:mod:`repro.extraction`, :mod:`repro.kb`);
* instance ranking, concept similarity, DP features and seed labelling
  (:mod:`repro.ranking`, :mod:`repro.concepts`, :mod:`repro.features`,
  :mod:`repro.labeling`);
* the DP detectors — kernel PCA + semi-supervised multi-task learning and
  all Table 4 baselines (:mod:`repro.learning`);
* DP-based cleaning with cascading rollback and the four §5.3 comparison
  cleaners (:mod:`repro.cleaning`);
* metrics and one runner per table/figure (:mod:`repro.evaluation`,
  :mod:`repro.experiments`);
* a structured run context threaded through every stage — typed event
  bus, span tracing and shared resources (:mod:`repro.runtime`).

Quickstart::

    from repro import Pipeline, run_experiment

    result = run_experiment("table3", pipeline=Pipeline())
    report = result.text  # formatted table, ready to render

The library itself never writes to stdout: stages emit typed events and
spans through their :class:`~repro.runtime.context.RunContext`, and the
CLI (or any other front-end) subscribes to the bus and renders what it
wants.  Pass ``Pipeline().run(trace="out.jsonl")`` — or ``repro run
<experiment> --trace out.jsonl`` — to export the span tree.
"""

from .cleaning import (
    DPCleaner,
    MutualExclusionCleaner,
    PRDualRankCleaner,
    RWRankCleaner,
    TypeCheckingCleaner,
)
from .config import (
    CleaningConfig,
    ConceptProfile,
    CorpusConfig,
    DetectorConfig,
    ExtractionConfig,
    LabelingConfig,
    PipelineConfig,
    SimilarityConfig,
)
from .corpus import Corpus, CorpusGenerator, Sentence, generate_corpus
from .errors import ReproError
from .evaluation import GroundTruth, cleaning_metrics, detection_metrics
from .experiments import (
    Pipeline,
    PipelineArtifacts,
    experiment_config,
    experiment_names,
    run_experiment,
)
from .extraction import SemanticIterativeExtractor
from .kb import IsAPair, KnowledgeBase, RollbackEngine
from .labeling import DPLabel, EvidenceIndex, SeedLabeler
from .learning import DPDetector
from .runtime import NULL_CONTEXT, Event, EventBus, RunContext, Tracer
from .service import CheckpointStore, IngestPolicy, IngestSession
from .world import World, WorldBuilder, motivating_example_world, paper_world, toy_world

__version__ = "1.0.0"

__all__ = [
    "CleaningConfig",
    "ConceptProfile",
    "Corpus",
    "CorpusConfig",
    "CorpusGenerator",
    "DPCleaner",
    "DPDetector",
    "DPLabel",
    "DetectorConfig",
    "Event",
    "EventBus",
    "EvidenceIndex",
    "ExtractionConfig",
    "CheckpointStore",
    "GroundTruth",
    "IngestPolicy",
    "IngestSession",
    "IsAPair",
    "KnowledgeBase",
    "LabelingConfig",
    "MutualExclusionCleaner",
    "NULL_CONTEXT",
    "PRDualRankCleaner",
    "Pipeline",
    "PipelineArtifacts",
    "PipelineConfig",
    "RWRankCleaner",
    "ReproError",
    "RollbackEngine",
    "RunContext",
    "Tracer",
    "SeedLabeler",
    "SemanticIterativeExtractor",
    "Sentence",
    "SimilarityConfig",
    "TypeCheckingCleaner",
    "World",
    "WorldBuilder",
    "cleaning_metrics",
    "detection_metrics",
    "experiment_config",
    "experiment_names",
    "generate_corpus",
    "motivating_example_world",
    "paper_world",
    "run_experiment",
    "toy_world",
    "__version__",
]
