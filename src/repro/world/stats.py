"""Descriptive statistics over a ground-truth world."""

from __future__ import annotations

from dataclasses import dataclass

from .taxonomy import World

__all__ = ["ConceptStats", "WorldStats", "world_stats"]


@dataclass(frozen=True)
class ConceptStats:
    """Ground-truth statistics for one concept."""

    name: str
    domain: str
    size: int
    polysemous_members: int
    partners: tuple[str, ...]

    @property
    def polysemy_rate(self) -> float:
        """Fraction of members with senses in other domains."""
        if self.size == 0:
            return 0.0
        return self.polysemous_members / self.size


@dataclass(frozen=True)
class WorldStats:
    """Aggregate statistics for a world."""

    num_domains: int
    num_concepts: int
    num_instances: int
    num_polysemous: int
    concepts: tuple[ConceptStats, ...]

    @property
    def polysemy_rate(self) -> float:
        """Fraction of instances with senses in more than one domain."""
        if self.num_instances == 0:
            return 0.0
        return self.num_polysemous / self.num_instances


def world_stats(world: World) -> WorldStats:
    """Compute :class:`WorldStats` for a world."""
    concept_rows = []
    for spec in world.iter_concepts():
        polysemous = sum(
            1 for member in spec.members if world.is_polysemous(member)
        )
        concept_rows.append(
            ConceptStats(
                name=spec.name,
                domain=spec.domain,
                size=spec.size,
                polysemous_members=polysemous,
                partners=spec.partners,
            )
        )
    return WorldStats(
        num_domains=len(world.domains),
        num_concepts=len(world.concepts),
        num_instances=len(world.instances),
        num_polysemous=len(world.polysemous_instances()),
        concepts=tuple(concept_rows),
    )
