"""World persistence (JSON round trip).

Lets a generated world be frozen to disk so that experiments, notebooks
and downstream tools can share the exact same ground truth without
re-running the builder.
"""

from __future__ import annotations

import json
from pathlib import Path

from ..errors import WorldError
from ..nlp.types import EntityType
from .schema import ConceptSpec, Domain, InstanceSpec, Sense
from .taxonomy import World

__all__ = ["save_world", "load_world"]

_FORMAT = "repro-world"
_VERSION = 1


def save_world(world: World, path: str | Path) -> None:
    """Write a world to a JSON file."""
    payload = {
        "format": _FORMAT,
        "version": _VERSION,
        "domains": [
            {"name": d.name, "coarse_type": d.coarse_type.value}
            for d in world.domains.values()
        ],
        "concepts": [
            {
                "name": c.name,
                "domain": c.domain,
                "members": list(c.members),
                "popularity": c.popularity,
                "partners": list(c.partners),
                "aliases": list(c.aliases),
            }
            for c in world.iter_concepts()
        ],
        "instances": [
            {
                "name": i.name,
                "popularity": i.popularity,
                "senses": [
                    {"domain": s.domain, "concepts": sorted(s.concepts)}
                    for s in i.senses
                ],
            }
            for i in world.instances.values()
        ],
    }
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle)


def load_world(path: str | Path) -> World:
    """Read a world previously written by :func:`save_world`."""
    with open(path, encoding="utf-8") as handle:
        try:
            payload = json.load(handle)
        except json.JSONDecodeError as exc:
            raise WorldError(f"bad world file {path}: {exc}") from exc
    if payload.get("format") != _FORMAT:
        raise WorldError(
            f"{path} is not a {_FORMAT} file "
            f"(format={payload.get('format')!r})"
        )
    if payload.get("version") != _VERSION:
        raise WorldError(f"unsupported world version {payload.get('version')!r}")
    try:
        domains = [
            Domain(name=d["name"], coarse_type=EntityType(d["coarse_type"]))
            for d in payload["domains"]
        ]
        concepts = [
            ConceptSpec(
                name=c["name"],
                domain=c["domain"],
                members=tuple(c["members"]),
                popularity=c["popularity"],
                partners=tuple(c.get("partners", ())),
                aliases=tuple(c.get("aliases", ())),
            )
            for c in payload["concepts"]
        ]
        instances = [
            InstanceSpec(
                name=i["name"],
                popularity=i["popularity"],
                senses=tuple(
                    Sense(domain=s["domain"], concepts=frozenset(s["concepts"]))
                    for s in i["senses"]
                ),
            )
            for i in payload["instances"]
        ]
    except (KeyError, ValueError) as exc:
        raise WorldError(f"bad world payload in {path}: {exc}") from exc
    return World(domains, concepts, instances)
