"""Ground-truth world substrate: domains, concepts, instances, polysemy."""

from .builder import WorldBuilder
from .presets import WorldPreset, motivating_example_world, paper_world, toy_world
from .schema import ConceptSpec, Domain, InstanceSpec, Sense
from .serialize import load_world, save_world
from .stats import ConceptStats, WorldStats, world_stats
from .taxonomy import World
from .vocabulary import Vocabulary, make_typo

__all__ = [
    "ConceptSpec",
    "ConceptStats",
    "Domain",
    "InstanceSpec",
    "Sense",
    "Vocabulary",
    "World",
    "WorldBuilder",
    "WorldPreset",
    "WorldStats",
    "load_world",
    "make_typo",
    "motivating_example_world",
    "paper_world",
    "save_world",
    "toy_world",
    "world_stats",
]
