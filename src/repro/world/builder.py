"""Programmatic construction of ground-truth worlds.

:class:`WorldBuilder` assembles domains, concepts and instances and derives
instance senses automatically from concept membership.  It provides the
structural operations the drift mechanisms need:

* ``add_concept`` — fresh concept with Zipf-weighted generated members;
* ``add_subset`` / ``add_alias`` — within-domain overlap and highly-similar
  sibling concepts (the Fig. 4 ``> 0.1`` band);
* ``add_bridges`` — polysemous instances shared across domains
  (Intentional-DP fuel);
* ``set_partners`` — which cross-domain concept pairs co-occur in ambiguous
  sentences.
"""

from __future__ import annotations

import numpy as np

from ..errors import UnknownConceptError, WorldError
from ..nlp.types import EntityType
from ..rng import generator_from
from .schema import ConceptSpec, Domain, InstanceSpec, Sense
from .taxonomy import World
from .vocabulary import Vocabulary

__all__ = ["WorldBuilder"]

_ZIPF_EXPONENT = 1.05


def _zipf_weights(count: int, rng: np.random.Generator) -> list[float]:
    """Zipf-like popularity weights with mild jitter, most popular first."""
    ranks = np.arange(1, count + 1, dtype=float)
    weights = 1.0 / ranks**_ZIPF_EXPONENT
    jitter = rng.uniform(0.8, 1.2, size=count)
    return list(weights * jitter)


class WorldBuilder:
    """Incrementally assemble a :class:`~repro.world.taxonomy.World`."""

    def __init__(self, seed: int | np.random.Generator | None = None) -> None:
        self._rng = generator_from(seed)
        self._vocabulary = Vocabulary(self._rng)
        self._domains: dict[str, Domain] = {}
        self._concept_domain: dict[str, str] = {}
        self._concept_members: dict[str, list[str]] = {}
        self._concept_popularity: dict[str, float] = {}
        self._concept_partners: dict[str, list[str]] = {}
        self._concept_aliases: dict[str, list[str]] = {}
        self._instance_weight: dict[str, float] = {}
        self._instance_primary_domain: dict[str, str] = {}

    # ------------------------------------------------------------------
    # Domains
    # ------------------------------------------------------------------
    def add_domain(
        self, name: str, coarse_type: EntityType = EntityType.MISC
    ) -> "WorldBuilder":
        """Register a domain; concepts across domains are exclusive."""
        if name in self._domains:
            raise WorldError(f"domain already exists: {name!r}")
        self._domains[name] = Domain(name=name, coarse_type=coarse_type)
        return self

    # ------------------------------------------------------------------
    # Concepts
    # ------------------------------------------------------------------
    def add_concept(
        self,
        name: str,
        domain: str,
        size: int = 0,
        popularity: float = 1.0,
        members: list[str] | None = None,
    ) -> "WorldBuilder":
        """Add a concept with ``size`` generated members plus any explicit ones.

        Explicit ``members`` may name instances already created for other
        concepts (producing overlap); unknown names are created fresh.
        """
        if name in self._concept_domain:
            raise WorldError(f"concept already exists: {name!r}")
        if domain not in self._domains:
            raise WorldError(f"unknown domain: {domain!r}")
        if size < 0:
            raise WorldError(f"concept {name!r} size must be >= 0")
        self._concept_domain[name] = domain
        self._concept_popularity[name] = popularity
        self._concept_partners[name] = []
        self._concept_aliases[name] = []
        member_list: list[str] = []
        for explicit in members or []:
            self._register_instance(explicit, domain, weight=None)
            member_list.append(explicit)
        generated = self._vocabulary.batch(size)
        weights = _zipf_weights(size, self._rng)
        for instance_name, weight in zip(generated, weights):
            self._register_instance(instance_name, domain, weight=weight)
            member_list.append(instance_name)
        self._concept_members[name] = member_list
        return self

    def add_subset(
        self,
        parent: str,
        name: str,
        fraction: float,
        popularity: float = 1.0,
        extra_size: int = 0,
    ) -> "WorldBuilder":
        """Add a concept in the parent's domain sharing a member sample.

        Models within-domain sibling concepts such as ``country`` /
        ``asian country`` — overlapping, *not* mutually exclusive.
        """
        if not 0.0 < fraction <= 1.0:
            raise WorldError("subset fraction must be in (0, 1]")
        parent_members = self._members_or_raise(parent)
        count = max(1, int(round(fraction * len(parent_members))))
        picked_index = self._rng.choice(
            len(parent_members), size=min(count, len(parent_members)), replace=False
        )
        shared = [parent_members[i] for i in sorted(picked_index)]
        self.add_concept(
            name,
            domain=self._concept_domain[parent],
            size=extra_size,
            popularity=popularity,
            members=shared,
        )
        return self

    def add_alias(
        self,
        concept: str,
        alias: str,
        overlap: float = 0.9,
        popularity: float | None = None,
    ) -> "WorldBuilder":
        """Add a highly-similar sibling concept (e.g. ``nation`` for ``country``)."""
        base_popularity = self._concept_popularity.get(concept, 1.0)
        self.add_subset(
            concept,
            alias,
            fraction=overlap,
            popularity=popularity if popularity is not None else base_popularity * 0.5,
        )
        self._concept_aliases[concept].append(alias)
        self._concept_aliases[alias].append(concept)
        return self

    # ------------------------------------------------------------------
    # Drift structure
    # ------------------------------------------------------------------
    def add_bridges(
        self,
        concept_a: str,
        concept_b: str,
        count: int,
        prefer_popular: bool = True,
    ) -> "WorldBuilder":
        """Make ``count`` members of ``concept_a`` polysemous into ``concept_b``.

        The two concepts must live in different domains; the chosen members
        gain a second sense (e.g. *chicken* in both ``animal`` and ``food``).
        Popular members are preferred because real polysemous heads (chicken,
        apple, washington) are frequent words.
        """
        members_a = self._members_or_raise(concept_a)
        members_b = self._members_or_raise(concept_b)
        domain_a = self._concept_domain[concept_a]
        domain_b = self._concept_domain[concept_b]
        if domain_a == domain_b:
            raise WorldError(
                f"bridges require cross-domain concepts; {concept_a!r} and "
                f"{concept_b!r} are both in {domain_a!r}"
            )
        candidates = [m for m in members_a if m not in set(members_b)]
        if count > len(candidates):
            raise WorldError(
                f"cannot bridge {count} instances from {concept_a!r}; only "
                f"{len(candidates)} unshared members exist"
            )
        if prefer_popular:
            # Half the bridges come from the popularity head (chicken-like
            # frequent words), half from anywhere — mid-tail bridges enter
            # the extractor's knowledge late and stretch drift over several
            # iterations.
            candidates.sort(key=lambda m: -self._instance_weight.get(m, 1.0))
            head = candidates[: max(count, len(candidates) // 4)]
            head_count = min((count + 1) // 2, len(head))
            picked = {
                head[int(i)]
                for i in self._rng.choice(len(head), size=head_count, replace=False)
            }
            rest = [m for m in candidates if m not in picked]
            extra = count - len(picked)
            if extra > 0:
                picked.update(
                    rest[int(i)]
                    for i in self._rng.choice(len(rest), size=extra, replace=False)
                )
            pool = sorted(picked)
        else:
            picked_index = self._rng.choice(len(candidates), size=count, replace=False)
            pool = [candidates[int(i)] for i in sorted(picked_index)]
        for member in pool:
            self._concept_members[concept_b].append(member)
        return self

    def set_partners(self, concept: str, partners: list[str]) -> "WorldBuilder":
        """Declare the ambiguous-sentence partners of a concept (ordered)."""
        self._members_or_raise(concept)
        own_domain = self._concept_domain[concept]
        for partner in partners:
            if partner not in self._concept_domain:
                raise UnknownConceptError(partner)
            if self._concept_domain[partner] == own_domain:
                raise WorldError(
                    f"partner {partner!r} of {concept!r} must be cross-domain"
                )
        self._concept_partners[concept] = list(partners)
        return self

    # ------------------------------------------------------------------
    # Build
    # ------------------------------------------------------------------
    def build(self) -> World:
        """Assemble the immutable :class:`World`."""
        instance_concepts: dict[str, dict[str, set[str]]] = {}
        for concept, members in self._concept_members.items():
            domain = self._concept_domain[concept]
            for member in members:
                instance_concepts.setdefault(member, {}).setdefault(domain, set())
                instance_concepts[member][domain].add(concept)
        instances = []
        for name, by_domain in instance_concepts.items():
            primary = self._instance_primary_domain[name]
            ordered_domains = [primary] + sorted(d for d in by_domain if d != primary)
            senses = tuple(
                Sense(domain=d, concepts=frozenset(by_domain[d]))
                for d in ordered_domains
                if d in by_domain
            )
            instances.append(
                InstanceSpec(
                    name=name,
                    senses=senses,
                    popularity=self._instance_weight.get(name, 1.0),
                )
            )
        concepts = [
            ConceptSpec(
                name=name,
                domain=self._concept_domain[name],
                members=tuple(members),
                popularity=self._concept_popularity[name],
                partners=tuple(self._concept_partners[name]),
                aliases=tuple(self._concept_aliases[name]),
            )
            for name, members in self._concept_members.items()
        ]
        return World(self._domains.values(), concepts, instances)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _members_or_raise(self, concept: str) -> list[str]:
        if concept not in self._concept_members:
            raise UnknownConceptError(concept)
        return self._concept_members[concept]

    def _register_instance(
        self, name: str, domain: str, weight: float | None
    ) -> None:
        if name not in self._instance_primary_domain:
            if name not in self._vocabulary:
                self._vocabulary.reserve(name)
            self._instance_primary_domain[name] = domain
            self._instance_weight[name] = weight if weight is not None else float(
                self._rng.uniform(0.05, 1.0)
            )
        elif weight is not None:
            self._instance_weight[name] = max(self._instance_weight[name], weight)
