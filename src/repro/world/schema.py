"""Value objects describing a ground-truth world.

A *world* is the synthetic substitute for the real web's knowledge: it fixes
which concepts exist, which instances truly belong to them, which instances
are polysemous, and which concepts tend to co-occur in ambiguous Hearst
sentences (*partners*).  The corpus generator draws sentences from a world;
the evaluator scores extractions against it.

Terminology follows the paper:

* a **domain** groups concepts that are semantically compatible; concepts in
  *different* domains are mutually exclusive in the ground truth (instances
  may still bridge domains — that is polysemy, the root of Intentional DPs);
* a **sense** is an instance's membership in one domain: the set of concepts
  of that domain the instance belongs to;
* a **partner** of concept ``C`` is a concept from another domain that shows
  up alongside ``C`` in ambiguous constructions such as
  ``food from animals such as …`` — the raw material of semantic drift.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..nlp.types import EntityType

__all__ = ["Domain", "Sense", "InstanceSpec", "ConceptSpec"]


@dataclass(frozen=True)
class Domain:
    """A semantic area; concepts across domains are mutually exclusive."""

    name: str
    coarse_type: EntityType = EntityType.MISC

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("domain name must be non-empty")


@dataclass(frozen=True)
class Sense:
    """One domain-level meaning of an instance.

    ``concepts`` lists the concepts (all from ``domain``) the instance truly
    belongs to under this meaning.
    """

    domain: str
    concepts: frozenset[str]

    def __post_init__(self) -> None:
        if not self.concepts:
            raise ValueError(f"sense in domain {self.domain!r} has no concepts")


@dataclass(frozen=True)
class InstanceSpec:
    """A ground-truth instance.

    Parameters
    ----------
    name:
        Normalised surface form, unique within the world.
    senses:
        One sense per domain the instance has a meaning in.  The first sense
        is the *primary* sense; it decides the instance's coarse NER type.
    popularity:
        Relative sampling weight when the corpus generator picks instances.
        Zipf-like tails are assigned by the builder.
    """

    name: str
    senses: tuple[Sense, ...]
    popularity: float = 1.0

    def __post_init__(self) -> None:
        if not self.senses:
            raise ValueError(f"instance {self.name!r} must have at least one sense")
        if self.popularity <= 0:
            raise ValueError(f"instance {self.name!r} popularity must be positive")
        domains = [sense.domain for sense in self.senses]
        if len(domains) != len(set(domains)):
            raise ValueError(f"instance {self.name!r} has duplicate sense domains")

    @property
    def primary_domain(self) -> str:
        """Domain of the primary (first) sense."""
        return self.senses[0].domain

    @property
    def is_polysemous(self) -> bool:
        """True when the instance has senses in more than one domain."""
        return len(self.senses) > 1

    def concepts(self) -> frozenset[str]:
        """All concepts the instance belongs to, across every sense."""
        names: set[str] = set()
        for sense in self.senses:
            names.update(sense.concepts)
        return frozenset(names)


@dataclass(frozen=True)
class ConceptSpec:
    """A ground-truth concept (class).

    Parameters
    ----------
    name:
        Normalised concept surface, unique within the world.
    domain:
        The domain the concept lives in.
    members:
        Names of instances that truly belong to the concept.
    popularity:
        Relative weight for how often sentences are generated about this
        concept.
    partners:
        Concepts from *other* domains that co-occur with this one in
        ambiguous sentences (ordered: earlier partners co-occur more often).
    aliases:
        Names of highly-similar sibling concepts (e.g. ``country`` /
        ``nation``); informational — aliases are full concepts themselves.
    """

    name: str
    domain: str
    members: tuple[str, ...]
    popularity: float = 1.0
    partners: tuple[str, ...] = field(default=())
    aliases: tuple[str, ...] = field(default=())

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("concept name must be non-empty")
        if self.popularity <= 0:
            raise ValueError(f"concept {self.name!r} popularity must be positive")
        if len(self.members) != len(set(self.members)):
            raise ValueError(f"concept {self.name!r} has duplicate members")

    @property
    def size(self) -> int:
        """Number of ground-truth member instances."""
        return len(self.members)
