"""Deterministic pseudo-word vocabulary.

The synthetic world needs thousands of unique instance surfaces.  Using
generated pseudo-words (rather than lists of real words) keeps the corpus
self-contained, makes name collisions impossible to confuse with polysemy,
and lets property-based tests create arbitrarily large worlds.

Names are pronounceable syllable chains (``talvori``, ``senga ked``); a
fraction are two-word surfaces to exercise multi-token handling in the
tokenizer and NER.
"""

from __future__ import annotations

import numpy as np

from ..errors import WorldError

__all__ = ["Vocabulary", "make_typo"]

_ONSETS = (
    "b", "c", "d", "f", "g", "h", "j", "k", "l", "m",
    "n", "p", "r", "s", "t", "v", "w", "z", "br", "ch",
    "cl", "dr", "fl", "gr", "kr", "pl", "sh", "sl", "st", "tr",
)
_VOWELS = ("a", "e", "i", "o", "u", "ai", "ea", "io", "ou")
_CODAS = ("", "", "", "n", "r", "s", "l", "m", "t", "k", "nd", "rt")


class Vocabulary:
    """Generates unique, deterministic pseudo-word surfaces.

    Parameters
    ----------
    rng:
        Source of randomness; the caller controls determinism.
    two_word_rate:
        Probability that a generated surface consists of two words.
    """

    def __init__(self, rng: np.random.Generator, two_word_rate: float = 0.15) -> None:
        if not 0.0 <= two_word_rate <= 1.0:
            raise ValueError("two_word_rate must be in [0, 1]")
        self._rng = rng
        self._two_word_rate = two_word_rate
        self._used: set[str] = set()

    def __len__(self) -> int:
        return len(self._used)

    def __contains__(self, name: str) -> bool:
        return name in self._used

    def reserve(self, name: str) -> str:
        """Register an externally chosen name, failing on collision."""
        if name in self._used:
            raise WorldError(f"name already in use: {name!r}")
        self._used.add(name)
        return name

    def word(self, min_syllables: int = 2, max_syllables: int = 3) -> str:
        """Return one pseudo-word (not registered as a surface)."""
        count = int(self._rng.integers(min_syllables, max_syllables + 1))
        parts = []
        for _ in range(count):
            onset = _ONSETS[int(self._rng.integers(0, len(_ONSETS)))]
            vowel = _VOWELS[int(self._rng.integers(0, len(_VOWELS)))]
            parts.append(onset + vowel)
        coda = _CODAS[int(self._rng.integers(0, len(_CODAS)))]
        return "".join(parts) + coda

    def fresh(self, max_attempts: int = 1000) -> str:
        """Return a new unique surface and register it."""
        for _ in range(max_attempts):
            if self._rng.random() < self._two_word_rate:
                candidate = f"{self.word()} {self.word(1, 2)}"
            else:
                candidate = self.word()
            if candidate not in self._used:
                self._used.add(candidate)
                return candidate
        raise WorldError(
            f"could not find a fresh name after {max_attempts} attempts "
            f"({len(self._used)} names in use)"
        )

    def batch(self, count: int) -> list[str]:
        """Return ``count`` fresh unique surfaces."""
        return [self.fresh() for _ in range(count)]


def make_typo(name: str, rng: np.random.Generator) -> str:
    """Corrupt a surface with a single character-level typo.

    Mirrors the paper's non-drift error class (``Syngapore``,
    ``Micorsoft``): the result is a string that belongs to no concept.
    """
    if not name:
        raise ValueError("cannot make a typo of an empty name")
    letters = "abcdefghijklmnopqrstuvwxyz"
    chars = list(name)
    position = int(rng.integers(0, len(chars)))
    operation = int(rng.integers(0, 3))
    if operation == 0 and len(chars) > 2:  # deletion
        del chars[position]
    elif operation == 1:  # substitution
        replacement = letters[int(rng.integers(0, len(letters)))]
        chars[position] = replacement
    else:  # transposition / duplication
        if position + 1 < len(chars):
            chars[position], chars[position + 1] = chars[position + 1], chars[position]
        else:
            chars.append(chars[position])
    result = "".join(chars)
    if result == name:  # rare no-op (e.g. swapped identical letters)
        result = name + letters[int(rng.integers(0, len(letters)))]
    return result
