"""The :class:`World`: an immutable, queryable ground-truth taxonomy.

A world answers the questions the rest of the library needs:

* membership — does instance *e* truly belong to concept *C*?
* polysemy — does *e* have senses in several domains (Intentional-DP fuel)?
* exclusivity — are two concepts mutually exclusive in the ground truth
  (different domains)?
* typing — what coarse NER type should the simulated NER see for *e*?

Worlds are built with :class:`~repro.world.builder.WorldBuilder` or one of
the presets in :mod:`repro.world.presets`.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator, Mapping

from ..errors import UnknownConceptError, UnknownInstanceError, WorldError
from ..nlp.types import EntityType
from .schema import ConceptSpec, Domain, InstanceSpec

__all__ = ["World"]


class World:
    """Immutable ground truth over domains, concepts and instances."""

    def __init__(
        self,
        domains: Iterable[Domain],
        concepts: Iterable[ConceptSpec],
        instances: Iterable[InstanceSpec],
    ) -> None:
        self._domains: dict[str, Domain] = {d.name: d for d in domains}
        self._concepts: dict[str, ConceptSpec] = {c.name: c for c in concepts}
        self._instances: dict[str, InstanceSpec] = {i.name: i for i in instances}
        self._validate()
        self._members: dict[str, frozenset[str]] = {
            name: frozenset(spec.members) for name, spec in self._concepts.items()
        }
        self._concepts_of: dict[str, frozenset[str]] = {
            name: spec.concepts() for name, spec in self._instances.items()
        }

    # ------------------------------------------------------------------
    # Construction checks
    # ------------------------------------------------------------------
    def _validate(self) -> None:
        for concept in self._concepts.values():
            if concept.domain not in self._domains:
                raise WorldError(
                    f"concept {concept.name!r} references unknown domain "
                    f"{concept.domain!r}"
                )
            for member in concept.members:
                if member not in self._instances:
                    raise WorldError(
                        f"concept {concept.name!r} lists unknown instance "
                        f"{member!r}"
                    )
            for partner in concept.partners:
                if partner not in self._concepts:
                    raise WorldError(
                        f"concept {concept.name!r} lists unknown partner "
                        f"{partner!r}"
                    )
        for instance in self._instances.values():
            for sense in instance.senses:
                if sense.domain not in self._domains:
                    raise WorldError(
                        f"instance {instance.name!r} references unknown domain "
                        f"{sense.domain!r}"
                    )
                for concept_name in sense.concepts:
                    concept = self._concepts.get(concept_name)
                    if concept is None:
                        raise WorldError(
                            f"instance {instance.name!r} references unknown "
                            f"concept {concept_name!r}"
                        )
                    if concept.domain != sense.domain:
                        raise WorldError(
                            f"instance {instance.name!r} sense in domain "
                            f"{sense.domain!r} lists concept {concept_name!r} "
                            f"from domain {concept.domain!r}"
                        )

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------
    @property
    def domains(self) -> Mapping[str, Domain]:
        """All domains by name."""
        return self._domains

    @property
    def concepts(self) -> Mapping[str, ConceptSpec]:
        """All concepts by name."""
        return self._concepts

    @property
    def instances(self) -> Mapping[str, InstanceSpec]:
        """All instances by name."""
        return self._instances

    def concept(self, name: str) -> ConceptSpec:
        """Look up a concept, raising :class:`UnknownConceptError`."""
        try:
            return self._concepts[name]
        except KeyError:
            raise UnknownConceptError(name) from None

    def instance(self, name: str) -> InstanceSpec:
        """Look up an instance, raising :class:`UnknownInstanceError`."""
        try:
            return self._instances[name]
        except KeyError:
            raise UnknownInstanceError(name) from None

    def __contains__(self, concept_name: str) -> bool:
        return concept_name in self._concepts

    def iter_concepts(self) -> Iterator[ConceptSpec]:
        """Iterate over concepts in insertion order."""
        return iter(self._concepts.values())

    # ------------------------------------------------------------------
    # Ground-truth queries
    # ------------------------------------------------------------------
    def members(self, concept_name: str) -> frozenset[str]:
        """True member instances of a concept."""
        if concept_name not in self._members:
            raise UnknownConceptError(concept_name)
        return self._members[concept_name]

    def is_member(self, concept_name: str, instance_name: str) -> bool:
        """True iff the instance truly belongs to the concept.

        Unknown instance surfaces (e.g. typos) are members of nothing.
        """
        members = self.members(concept_name)
        return instance_name in members

    def concepts_of(self, instance_name: str) -> frozenset[str]:
        """All concepts an instance belongs to (empty for unknown surfaces)."""
        return self._concepts_of.get(instance_name, frozenset())

    def domains_of(self, instance_name: str) -> frozenset[str]:
        """All domains an instance has senses in (empty for unknown)."""
        spec = self._instances.get(instance_name)
        if spec is None:
            return frozenset()
        return frozenset(sense.domain for sense in spec.senses)

    def is_polysemous(self, instance_name: str) -> bool:
        """True iff the instance has senses in more than one domain."""
        spec = self._instances.get(instance_name)
        return spec is not None and spec.is_polysemous

    def exclusive(self, concept_a: str, concept_b: str) -> bool:
        """Ground-truth mutual exclusion: concepts from different domains."""
        spec_a = self.concept(concept_a)
        spec_b = self.concept(concept_b)
        return spec_a.domain != spec_b.domain

    # ------------------------------------------------------------------
    # Typing (for the NER substrate)
    # ------------------------------------------------------------------
    def coarse_type_of(self, instance_name: str) -> EntityType:
        """Coarse type from the instance's primary sense's domain."""
        spec = self.instance(instance_name)
        return self._domains[spec.primary_domain].coarse_type

    def expected_type(self, concept_name: str) -> EntityType:
        """Coarse type a concept's instances should have."""
        spec = self.concept(concept_name)
        return self._domains[spec.domain].coarse_type

    def gazetteer(self) -> dict[str, EntityType]:
        """Instance surface → coarse type mapping for the simulated NER."""
        return {
            name: self._domains[spec.primary_domain].coarse_type
            for name, spec in self._instances.items()
        }

    # ------------------------------------------------------------------
    # Summaries
    # ------------------------------------------------------------------
    def polysemous_instances(self) -> frozenset[str]:
        """All instances with senses in more than one domain."""
        return frozenset(
            name for name, spec in self._instances.items() if spec.is_polysemous
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"World(domains={len(self._domains)}, "
            f"concepts={len(self._concepts)}, "
            f"instances={len(self._instances)})"
        )
