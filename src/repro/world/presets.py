"""Preset worlds.

* :func:`paper_world` — a 20-target-concept world mirroring Table 1 of the
  paper (popular concepts plus one tail concept), with per-concept drift
  intensity profiles so that the error-rate spread of Table 1 is reproduced.
* :func:`toy_world` — a small world for tests and the quickstart example.
* :func:`motivating_example_world` — hand-written real-word world reproducing
  the paper's Fig. 1(b) *animal/food/chicken* walkthrough.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Mapping

from ..config import ConceptProfile
from ..nlp.types import EntityType
from .builder import WorldBuilder
from .schema import ConceptSpec, Domain, InstanceSpec, Sense
from .taxonomy import World

__all__ = ["WorldPreset", "paper_world", "toy_world", "motivating_example_world"]


@dataclass(frozen=True)
class WorldPreset:
    """A world plus the generation profiles and evaluation targets."""

    world: World
    target_concepts: tuple[str, ...]
    profiles: Mapping[str, ConceptProfile] = field(default_factory=dict)

    def profile_for(self, concept: str) -> ConceptProfile:
        """Effective profile for a concept (default when unspecified)."""
        return self.profiles.get(concept, ConceptProfile())


# ---------------------------------------------------------------------------
# Table-1-like preset
# ---------------------------------------------------------------------------

#: (concept, domain, size, popularity, drift sources, bridge count,
#:  drift intensity 0..1). Drift intensity scales how much fodder the corpus
#: generator produces for the concept, which controls the Table-1 error mix.
_PAPER_TARGETS: tuple[tuple[str, str, int, float, tuple[str, ...], int, float], ...] = (
    ("animal", "animals", 260, 5.0, ("food", "meat"), 10, 0.55),
    ("asian country", "countries", 60, 2.0, ("asian city",), 6, 0.75),
    ("child", "persons", 220, 4.0, ("disney character",), 12, 0.65),
    ("chinese city", "cities", 62, 1.5, ("chinese province",), 3, 0.40),
    ("chinese food", "foods", 70, 1.5, ("animal",), 4, 0.40),
    ("chinese university", "universities", 32, 0.8, ("chinese company",), 2, 0.32),
    ("computer", "computers", 130, 3.0, ("operating system",), 10, 0.85),
    ("computer software", "software", 95, 2.0, ("computer game",), 4, 0.18),
    ("developing country", "countries", 58, 1.5, ("city",), 3, 0.65),
    ("disney classic", "media", 46, 1.0, ("toy",), 3, 0.45),
    ("key u.s. export", "commodities", 26, 0.3, ("food",), 2, 0.15),
    ("money", "currencies", 85, 2.5, ("commodity",), 6, 0.75),
    ("people", "persons", 65, 1.0, ("organization",), 2, 0.16),
    ("phone", "phones", 95, 2.0, ("company",), 6, 0.35),
    ("president", "persons", 58, 1.2, ("movie character", "company"), 4, 0.30),
    ("religion", "religions", 62, 1.5, ("ethnic group",), 5, 0.50),
    ("student", "persons", 160, 3.0, ("book character",), 4, 0.88),
    ("u.s. state", "states", 52, 1.0, ("u.s. city",), 5, 0.50),
    ("weather", "weather", 72, 1.5, ("disease",), 4, 0.47),
    ("woman", "persons", 215, 4.0, ("movie character",), 8, 0.65),
)

#: Background (non-target) concepts: (concept, domain, size, popularity).
_PAPER_BACKGROUND: tuple[tuple[str, str, int, float], ...] = (
    ("food", "foods", 240, 4.0),
    ("meat", "foods", 60, 1.5),
    ("fruit", "foods", 70, 1.5),
    ("country", "countries", 120, 3.0),
    ("city", "cities", 160, 3.0),
    ("asian city", "cities", 70, 1.5),
    ("u.s. city", "cities", 70, 1.5),
    ("chinese province", "provinces", 40, 1.0),
    ("company", "companies", 200, 4.0),
    ("chinese company", "companies", 60, 1.2),
    ("organization", "organizations", 90, 1.5),
    ("university", "universities", 80, 1.5),
    ("disney character", "characters", 90, 1.8),
    ("movie character", "characters", 120, 2.2),
    ("book character", "characters", 90, 1.6),
    ("movie", "media", 180, 3.0),
    ("toy", "toys", 70, 1.2),
    ("operating system", "software", 50, 1.5),
    ("computer game", "games", 110, 2.0),
    ("commodity", "commodities", 90, 1.8),
    ("ethnic group", "ethnicities", 70, 1.2),
    ("disease", "diseases", 90, 1.5),
    ("plant", "plants", 110, 1.5),
    ("bird", "animals", 70, 1.2),
)

#: Highly-similar sibling concepts (alias, base, overlap).
_PAPER_ALIASES: tuple[tuple[str, str, float], ...] = (
    ("nation", "country", 0.85),
    ("kid", "child", 0.80),
    ("lady", "woman", 0.75),
    ("beast", "animal", 0.70),
    ("firm", "company", 0.85),
    ("pc", "computer", 0.80),
    ("dish", "food", 0.70),
    ("faith", "religion", 0.80),
)

_PAPER_DOMAINS: tuple[tuple[str, EntityType], ...] = (
    ("animals", EntityType.MISC),
    ("foods", EntityType.MISC),
    ("countries", EntityType.LOCATION),
    ("cities", EntityType.LOCATION),
    ("states", EntityType.LOCATION),
    ("provinces", EntityType.LOCATION),
    ("persons", EntityType.PERSON),
    ("characters", EntityType.PERSON),
    ("organizations", EntityType.ORGANIZATION),
    ("companies", EntityType.ORGANIZATION),
    ("universities", EntityType.ORGANIZATION),
    # Product-like classes are common nouns to a CoNLL-style NER: MISC.
    ("computers", EntityType.MISC),
    ("software", EntityType.MISC),
    ("phones", EntityType.MISC),
    ("toys", EntityType.MISC),
    ("games", EntityType.MISC),
    ("currencies", EntityType.MISC),
    ("media", EntityType.MISC),
    ("commodities", EntityType.MISC),
    ("ethnicities", EntityType.MISC),
    ("religions", EntityType.MISC),
    ("weather", EntityType.MISC),
    ("diseases", EntityType.MISC),
    ("plants", EntityType.MISC),
)


def paper_world(seed: int = 20140324, scale: float = 1.0) -> WorldPreset:
    """Build the Table-1-like world with 20 target concepts.

    ``scale`` multiplies concept sizes (0.3 gives a fast CI-sized world;
    1.0 is the default experiment size).
    """
    if scale <= 0:
        raise ValueError("scale must be positive")
    builder = WorldBuilder(seed)
    for name, coarse_type in _PAPER_DOMAINS:
        builder.add_domain(name, coarse_type)

    def scaled(size: int) -> int:
        return max(6, int(round(size * scale)))

    for name, domain, size, popularity in _PAPER_BACKGROUND:
        builder.add_concept(name, domain, size=scaled(size), popularity=popularity)
    profiles: dict[str, ConceptProfile] = {}
    for name, domain, size, popularity, sources, bridges, intensity in _PAPER_TARGETS:
        builder.add_concept(name, domain, size=scaled(size), popularity=popularity)
        profiles[name] = ConceptProfile(
            ambiguous_rate=min(0.95, 0.55 + 0.40 * intensity),
            drift_rate=min(0.95, 0.55 + 0.40 * intensity),
            bridge_rate=min(0.90, 0.45 + 0.40 * intensity),
            false_fact_rate=0.008 + 0.015 * intensity,
        )
    # Forward channels: each target names its drift sources; the reverse
    # channel pollutes the source with the target's instances at a milder
    # rate, as real bidirectional ambiguity does.
    reverse_sources: dict[str, list[str]] = {}
    for name, _domain, _size, _popularity, sources, bridges, _intensity in _PAPER_TARGETS:
        builder.set_partners(name, list(sources))
        per_source = max(1, int(round(bridges * scale / len(sources))))
        for source in sources:
            builder.add_bridges(source, name, count=per_source)
            reverse_sources.setdefault(source, []).append(name)
    target_names = {name for name, *_ in _PAPER_TARGETS}
    for source, targets in reverse_sources.items():
        if source in target_names:
            continue  # targets keep their configured forward channels
        builder.set_partners(source, targets)
        profiles[source] = ConceptProfile(
            ambiguous_rate=0.60, drift_rate=0.50, bridge_rate=0.45
        )
    for alias, base, overlap in _PAPER_ALIASES:
        builder.add_alias(base, alias, overlap=overlap)
    world = builder.build()
    targets = tuple(name for name, *_ in _PAPER_TARGETS)
    return WorldPreset(world=world, target_concepts=targets, profiles=profiles)


# ---------------------------------------------------------------------------
# Toy preset (tests / quickstart)
# ---------------------------------------------------------------------------

def toy_world(seed: int = 7, bridges: int = 3) -> WorldPreset:
    """A small three-domain world with one drift channel (animal ← food)."""
    builder = WorldBuilder(seed)
    builder.add_domain("animals", EntityType.MISC)
    builder.add_domain("foods", EntityType.MISC)
    builder.add_domain("countries", EntityType.LOCATION)
    builder.add_domain("cities", EntityType.LOCATION)
    builder.add_concept("animal", "animals", size=40, popularity=3.0)
    builder.add_concept("food", "foods", size=35, popularity=3.0)
    builder.add_concept("country", "countries", size=25, popularity=2.0)
    builder.add_concept("city", "cities", size=25, popularity=2.0)
    builder.add_bridges("food", "animal", count=bridges)
    builder.set_partners("animal", ["food"])
    builder.set_partners("country", ["city"])
    builder.add_alias("country", "nation", overlap=0.8)
    world = builder.build()
    profiles = {
        "animal": ConceptProfile(ambiguous_rate=0.45, drift_rate=0.7, bridge_rate=0.4),
        "country": ConceptProfile(
            ambiguous_rate=0.35, drift_rate=0.5, bridge_rate=0.0, false_fact_rate=0.03
        ),
    }
    return WorldPreset(
        world=world, target_concepts=("animal", "country"), profiles=profiles
    )


# ---------------------------------------------------------------------------
# The paper's Fig. 1(b) walkthrough, with real words
# ---------------------------------------------------------------------------

def motivating_example_world() -> WorldPreset:
    """The *animal / food / chicken* world from the paper's introduction.

    Hand-written with real surfaces so examples and documentation read like
    the paper.  *chicken* and *duck* are polysemous bridges between
    ``animal`` and ``food``; *new york* is city-only, ready to become an
    Accidental DP of ``country`` when a false-fact sentence mentions it.
    """
    animals = [
        "dog", "cat", "pig", "horse", "rabbit", "elephant", "dolphin",
        "lion", "camel", "pigeon", "donkey", "chimpanzee", "monkey",
        "snake", "tiger", "giraffe", "chicken", "duck",
    ]
    foods = [
        "pork", "beef", "milk", "meat", "bread", "cheese", "rice",
        "noodle", "butter", "tofu", "chicken", "duck",
    ]
    countries = [
        "france", "portugal", "mauritius", "norway", "japan", "china",
        "brazil", "kenya", "india", "canada",
    ]
    cities = [
        "new york", "london", "paris", "tokyo", "boston", "chicago",
        "shanghai", "mumbai",
    ]
    domains = [
        Domain("animals", EntityType.MISC),
        Domain("foods", EntityType.MISC),
        Domain("countries", EntityType.LOCATION),
        Domain("cities", EntityType.LOCATION),
    ]
    concepts = [
        ConceptSpec("animal", "animals", tuple(animals), popularity=3.0,
                    partners=("food",)),
        ConceptSpec("food", "foods", tuple(foods), popularity=3.0),
        ConceptSpec("country", "countries", tuple(countries), popularity=2.0,
                    partners=("city",)),
        ConceptSpec("city", "cities", tuple(cities), popularity=2.0),
    ]
    instances = []
    weights = {"dog": 3.0, "cat": 3.0, "chicken": 2.5, "duck": 1.5,
               "pork": 2.5, "beef": 2.5, "new york": 3.0, "france": 2.0}
    polysemous = {"chicken", "duck"}
    for name in sorted(set(animals) | set(foods) | set(countries) | set(cities)):
        senses = []
        if name in animals:
            senses.append(Sense("animals", frozenset({"animal"})))
        if name in foods:
            senses.append(Sense("foods", frozenset({"food"})))
        if name in countries:
            senses.append(Sense("countries", frozenset({"country"})))
        if name in cities:
            senses.append(Sense("cities", frozenset({"city"})))
        if name in polysemous:  # primary sense is the animal reading
            senses.sort(key=lambda s: s.domain != "animals")
        instances.append(
            InstanceSpec(name, tuple(senses), popularity=weights.get(name, 1.0))
        )
    world = World(domains, concepts, instances)
    profiles = {
        "animal": ConceptProfile(ambiguous_rate=0.5, drift_rate=0.8, bridge_rate=0.5),
        "country": ConceptProfile(
            ambiguous_rate=0.4, drift_rate=0.6, bridge_rate=0.0, false_fact_rate=0.05
        ),
    }
    return WorldPreset(
        world=world, target_concepts=("animal", "country"), profiles=profiles
    )
