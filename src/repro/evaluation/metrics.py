"""Evaluation metrics for cleaning, detection, ranking and Eq. 21 checks.

The cleaning dimensions follow §5.3 exactly:

* ``p_error`` — removed errors / all removed instances;
* ``r_error`` — removed errors / all errors present before cleaning;
* ``p_corr`` — remaining correct / all remaining instances;
* ``r_corr`` — remaining correct / all correct present before cleaning.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Iterable, Mapping

from ..corpus.corpus import Corpus
from ..labeling.labels import DPLabel
from .ground_truth import GroundTruth

__all__ = [
    "CleaningMetrics",
    "DetectionMetrics",
    "cleaning_metrics",
    "detection_metrics",
    "precision_at_k",
    "sentence_check_metrics",
]


@dataclass(frozen=True)
class CleaningMetrics:
    """The four §5.3 cleaning dimensions (micro-averaged)."""

    p_error: float
    r_error: float
    p_corr: float
    r_corr: float
    removed: int
    remaining: int


@dataclass(frozen=True)
class DetectionMetrics:
    """Binary DP-detection quality plus 3-class accuracy."""

    precision: float
    recall: float
    f1: float
    accuracy: float
    support: int


def _safe_div(numerator: float, denominator: float) -> float:
    return numerator / denominator if denominator else 0.0


def cleaning_metrics(
    truth: GroundTruth,
    before: Mapping[str, frozenset[str]],
    after: Mapping[str, frozenset[str]],
    concepts: Iterable[str] | None = None,
) -> CleaningMetrics:
    """Score a cleaning run from before/after per-concept instance sets."""
    names = list(concepts) if concepts is not None else sorted(before)
    removed_total = removed_errors = 0
    remaining_total = remaining_correct = 0
    errors_before = correct_before = 0
    for concept in names:
        old = before.get(concept, frozenset())
        new = after.get(concept, frozenset())
        for instance in old:
            is_error = truth.is_error(concept, instance)
            errors_before += is_error
            correct_before += not is_error
            if instance not in new:
                removed_total += 1
                removed_errors += is_error
        for instance in new:
            remaining_total += 1
            remaining_correct += truth.is_correct(concept, instance)
    return CleaningMetrics(
        p_error=_safe_div(removed_errors, removed_total),
        r_error=_safe_div(removed_errors, errors_before),
        p_corr=_safe_div(remaining_correct, remaining_total),
        r_corr=_safe_div(remaining_correct, correct_before),
        removed=removed_total,
        remaining=remaining_total,
    )


def detection_metrics(
    truth: GroundTruth,
    predictions: Mapping[str, Mapping[str, DPLabel]],
    concepts: Iterable[str] | None = None,
) -> DetectionMetrics:
    """Score DP detection against ground-truth DP labels.

    Instances without a DP class (leaf errors, typos) are excluded — they
    are neither DPs nor clean non-DPs.
    """
    names = list(concepts) if concepts is not None else sorted(predictions)
    tp = fp = fn = correct = total = 0
    for concept in names:
        for instance, predicted in predictions.get(concept, {}).items():
            actual = truth.dp_label(concept, instance)
            if actual is None:
                continue
            total += 1
            correct += predicted is actual
            if predicted.is_dp and actual.is_dp:
                tp += 1
            elif predicted.is_dp:
                fp += 1
            elif actual.is_dp:
                fn += 1
    precision = _safe_div(tp, tp + fp)
    recall = _safe_div(tp, tp + fn)
    return DetectionMetrics(
        precision=precision,
        recall=recall,
        f1=_safe_div(2 * precision * recall, precision + recall),
        accuracy=_safe_div(correct, total),
        support=total,
    )


def precision_at_k(
    truth: GroundTruth,
    scores: Mapping[str, Mapping[str, float]],
    k: int,
    concepts: Iterable[str] | None = None,
) -> float:
    """Average precision of each concept's top-``k`` ranked instances.

    Concepts with fewer than ``k`` instances contribute their full ranking
    (the paper's p@100/1000/2000 over concepts of very different sizes).
    """
    names = list(concepts) if concepts is not None else sorted(scores)
    per_concept = []
    for concept in names:
        ranked = sorted(
            scores.get(concept, {}).items(), key=lambda item: -item[1]
        )[:k]
        if not ranked:
            continue
        good = sum(
            1 for instance, _ in ranked if truth.is_correct(concept, instance)
        )
        per_concept.append(good / len(ranked))
    return _safe_div(sum(per_concept), len(per_concept))


def sentence_check_metrics(
    corpus: Corpus,
    checks: Iterable,
    concepts: Iterable[str] | None = None,
) -> tuple[float, float]:
    """``(p_stc, r_stc)`` for Eq. 21 sentence checks (Table 5 cols 2–3).

    A check is *truly* bad when the sentence's generation truth disagrees
    with the concept the extractor committed to.
    """
    wanted = set(concepts) if concepts is not None else None
    by_sid = corpus.by_sid()
    tp = fp = fn = 0
    for check in checks:
        if wanted is not None and check.chosen_concept not in wanted:
            continue
        sentence = by_sid.get(check.sid)
        if sentence is None or sentence.truth is None:
            continue
        actually_bad = sentence.truth.concept != check.chosen_concept
        if check.is_drifting and actually_bad:
            tp += 1
        elif check.is_drifting:
            fp += 1
        elif actually_bad:
            fn += 1
    precision = _safe_div(tp, tp + fp)
    recall = _safe_div(tp, tp + fn)
    return precision, recall
