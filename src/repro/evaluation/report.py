"""Fixed-width text tables for experiment output."""

from __future__ import annotations

from collections.abc import Sequence

__all__ = ["format_table", "format_float"]


def format_float(value: float, digits: int = 4) -> str:
    """Render a float the way the paper's tables do.

    >>> format_float(0.91194)
    '0.9119'
    >>> format_float(1.0)
    '1.0'
    """
    if value == int(value):
        return str(float(value))
    return f"{value:.{digits}f}"


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str | None = None,
) -> str:
    """Render a simple aligned text table."""
    cells = [[str(h) for h in headers]]
    for row in rows:
        cells.append([
            format_float(value) if isinstance(value, float) else str(value)
            for value in row
        ])
    widths = [
        max(len(cells[r][c]) for r in range(len(cells)))
        for c in range(len(headers))
    ]
    lines = []
    if title:
        lines.append(title)
    separator = "-+-".join("-" * w for w in widths)
    for index, row in enumerate(cells):
        lines.append(
            " | ".join(cell.ljust(width) for cell, width in zip(row, widths))
        )
        if index == 0:
            lines.append(separator)
    return "\n".join(lines)
