"""Evaluation: ground truth, §5 metrics, text reports."""

from .ground_truth import ConceptTruth, GroundTruth
from .metrics import (
    CleaningMetrics,
    DetectionMetrics,
    cleaning_metrics,
    detection_metrics,
    precision_at_k,
    sentence_check_metrics,
)
from .report import format_float, format_table

__all__ = [
    "CleaningMetrics",
    "ConceptTruth",
    "DetectionMetrics",
    "GroundTruth",
    "cleaning_metrics",
    "detection_metrics",
    "format_float",
    "format_table",
    "precision_at_k",
    "sentence_check_metrics",
]
