"""Ground truth for extracted pairs, derived from the generative world.

The paper manually labelled 87 k instances; our world makes ground truth
exact.  Error taxonomy follows §2.1:

* **correct** — the instance truly belongs to the concept;
* **drifting error** — it does not, but it belongs to *some* concept (it
  drifted in from another class);
* **typo error** — the surface belongs to no concept at all (the paper's
  *Syngapore* class of errors, which are not drifting errors).

DP ground truth follows Definitions 2–4 operationally, using the KB's own
trigger provenance:

* **Intentional DP** — a correct instance that triggered ≥ 1 drifting
  error;
* **Accidental DP** — a drifting error that triggered ≥ 1 drifting error;
* **non-DP** — a correct instance that triggered none;
* drifting errors that triggered nothing (*leaf errors*) and typos have no
  DP class (``None``) and are excluded from detection metrics, exactly as
  Table 1's error counts exceed its DP counts.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..kb.store import KnowledgeBase
from ..labeling.labels import DPLabel
from ..world.taxonomy import World

__all__ = ["ConceptTruth", "GroundTruth"]


@dataclass(frozen=True)
class ConceptTruth:
    """Table-1-style ground-truth statistics for one concept."""

    concept: str
    instances: int
    correct: int
    errors: int
    intentional_dps: int
    accidental_dps: int
    non_dps: int

    @property
    def error_rate(self) -> float:
        """Fraction of extracted instances that are errors."""
        if self.instances == 0:
            return 0.0
        return self.errors / self.instances


class GroundTruth:
    """Oracle over a knowledge base, backed by the generative world."""

    def __init__(self, world: World, kb: KnowledgeBase) -> None:
        self._world = world
        self._kb = kb
        self._dp_cache: dict[tuple[str, str], DPLabel | None] = {}

    @property
    def world(self) -> World:
        """The generative world the truth comes from."""
        return self._world

    # ------------------------------------------------------------------
    # Pair-level truth
    # ------------------------------------------------------------------
    def is_correct(self, concept: str, instance: str) -> bool:
        """True iff the pair is in the ground-truth taxonomy."""
        if concept not in self._world:
            return False
        return self._world.is_member(concept, instance)

    def is_error(self, concept: str, instance: str) -> bool:
        """Inverse of :meth:`is_correct`."""
        return not self.is_correct(concept, instance)

    def is_drifting_error(self, concept: str, instance: str) -> bool:
        """Wrong here, but a real instance of something else."""
        return (
            self.is_error(concept, instance)
            and bool(self._world.concepts_of(instance))
        )

    def is_typo_error(self, concept: str, instance: str) -> bool:
        """Wrong, and the surface exists nowhere in the world."""
        return (
            self.is_error(concept, instance)
            and not self._world.concepts_of(instance)
        )

    # ------------------------------------------------------------------
    # DP-level truth
    # ------------------------------------------------------------------
    def dp_label(self, concept: str, instance: str) -> DPLabel | None:
        """Ground-truth DP class (``None`` for leaf errors and typos)."""
        key = (concept, instance)
        if key not in self._dp_cache:
            self._dp_cache[key] = self._compute_dp_label(concept, instance)
        return self._dp_cache[key]

    def _compute_dp_label(
        self, concept: str, instance: str
    ) -> DPLabel | None:
        correct = self.is_correct(concept, instance)
        subs = self._kb.sub_instance_counts(concept, instance)
        triggered_drift = any(
            self.is_drifting_error(concept, sub) for sub in subs
        )
        if triggered_drift:
            return DPLabel.INTENTIONAL if correct else DPLabel.ACCIDENTAL
        return DPLabel.NON_DP if correct else None

    # ------------------------------------------------------------------
    # Concept summaries (Table 1)
    # ------------------------------------------------------------------
    def concept_truth(self, concept: str) -> ConceptTruth:
        """Full ground-truth breakdown of one concept's extractions."""
        instances = self._kb.instances_of(concept)
        correct = errors = intentional = accidental = non_dp = 0
        for instance in instances:
            if self.is_correct(concept, instance):
                correct += 1
            else:
                errors += 1
            label = self.dp_label(concept, instance)
            if label is DPLabel.INTENTIONAL:
                intentional += 1
            elif label is DPLabel.ACCIDENTAL:
                accidental += 1
            elif label is DPLabel.NON_DP:
                non_dp += 1
        return ConceptTruth(
            concept=concept,
            instances=len(instances),
            correct=correct,
            errors=errors,
            intentional_dps=intentional,
            accidental_dps=accidental,
            non_dps=non_dp,
        )
