"""Cascading rollback (§4.2 of the paper).

Rolling back an extraction decrements the evidence of every pair the
sentence produced.  A pair whose evidence reaches zero leaves the knowledge
base, which may orphan further extractions that were triggered only by that
pair — those roll back too, iteratively, until a fixpoint.

A record triggered by several pairs survives while *any* trigger is alive:
the extraction would still have happened with the remaining knowledge.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Iterable

from .pair import IsAPair
from .store import KnowledgeBase

__all__ = ["RollbackResult", "RollbackEngine"]


@dataclass
class RollbackResult:
    """What one rollback wave removed."""

    records_rolled_back: list[int] = field(default_factory=list)
    pairs_removed: list[IsAPair] = field(default_factory=list)

    def merge(self, other: "RollbackResult") -> None:
        """Fold another wave's result into this one."""
        self.records_rolled_back.extend(other.records_rolled_back)
        self.pairs_removed.extend(other.pairs_removed)

    @property
    def num_records(self) -> int:
        """Number of extractions rolled back."""
        return len(self.records_rolled_back)

    @property
    def num_pairs(self) -> int:
        """Number of pairs removed from the knowledge base."""
        return len(self.pairs_removed)


class RollbackEngine:
    """Performs cascading rollbacks against a knowledge base."""

    def __init__(self, kb: KnowledgeBase) -> None:
        self._kb = kb

    def rollback_records(self, rids: Iterable[int]) -> RollbackResult:
        """Roll back the given records and cascade to completion."""
        result = RollbackResult()
        worklist = [rid for rid in rids if self._kb.record(rid).active]
        while worklist:
            rid = worklist.pop()
            record = self._kb.record(rid)
            if not record.active:
                continue
            died = self._kb.deactivate_record(rid)
            result.records_rolled_back.append(rid)
            result.pairs_removed.extend(died)
            for pair in died:
                for dependent in self._kb.records_triggered_by(pair):
                    if dependent.kill_trigger(pair):
                        worklist.append(dependent.rid)
        return result

    def rollback_pair(self, pair: IsAPair) -> RollbackResult:
        """Drop a pair and roll back everything it activated (§4).

        Used for Accidental DPs, which are wrong extractions themselves.
        Sibling pairs from the sentences that *produced* the DP are
        innocent and survive; extractions *triggered by* the DP roll back
        (cascading), exactly as the paper prescribes.
        """
        result = RollbackResult()
        triggered = self._kb.records_triggered_by(pair)
        self._kb.remove_pair(pair)
        result.pairs_removed.append(pair)
        orphaned = [
            record.rid for record in triggered if record.kill_trigger(pair)
        ]
        result.merge(self.rollback_records(orphaned))
        return result
