"""Knowledge-base substrate: pairs, provenance records, rollback."""

from .pair import IsAPair
from .record import ExtractionRecord
from .rollback import RollbackEngine, RollbackResult
from .serialize import load_kb, save_kb
from .snapshot import IterationLog, IterationStats
from .store import KnowledgeBase, PairState

__all__ = [
    "ExtractionRecord",
    "IsAPair",
    "IterationLog",
    "IterationStats",
    "KnowledgeBase",
    "PairState",
    "RollbackEngine",
    "RollbackResult",
    "load_kb",
    "save_kb",
]
