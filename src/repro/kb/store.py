"""The knowledge base: isA pairs with counts, iterations and provenance.

Design notes
------------
* Evidence counts are *record-based*: ``count(pair)`` is the number of
  distinct active sentence extractions producing the pair, matching the
  paper's "extracted from k different sentences".
* Pairs die when their count reaches zero; the cascading logic lives in
  :mod:`repro.kb.rollback`, the store only exposes the primitive mutations.
* ``first_iteration`` of a pair never changes, even if later records add
  evidence, so ``E(C, i)`` (the paper's per-iteration snapshots) can always
  be reconstructed.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Iterable, Iterator

from ..errors import KnowledgeBaseError
from .pair import IsAPair
from .record import ExtractionRecord

__all__ = ["PairState", "KnowledgeBase"]


@dataclass
class PairState:
    """Mutable bookkeeping for one pair."""

    count: int
    first_iteration: int
    record_ids: list[int]


class KnowledgeBase:
    """Store of isA pairs with full extraction provenance."""

    def __init__(self) -> None:
        self._pairs: dict[IsAPair, PairState] = {}
        self._known: dict[str, set[str]] = {}
        self._instance_concepts: dict[str, set[str]] = {}
        self._records: dict[int, ExtractionRecord] = {}
        self._records_by_trigger: dict[IsAPair, set[int]] = {}
        self._next_rid = 0
        self._removed_pairs: set[IsAPair] = set()

    # ------------------------------------------------------------------
    # Writing
    # ------------------------------------------------------------------
    def add_extraction(
        self,
        sid: int,
        concept: str,
        instances: Iterable[str],
        triggers: Iterable[IsAPair] = (),
        iteration: int = 1,
    ) -> ExtractionRecord:
        """Commit one sentence extraction and return its provenance record."""
        instances = tuple(instances)
        triggers = tuple(triggers)
        if not instances:
            raise KnowledgeBaseError("an extraction must produce instances")
        for trigger in triggers:
            if trigger not in self._pairs:
                raise KnowledgeBaseError(
                    f"trigger {trigger} is not in the knowledge base"
                )
        record = ExtractionRecord(
            rid=self._next_rid,
            sid=sid,
            concept=concept,
            instances=instances,
            triggers=triggers,
            iteration=iteration,
        )
        self._next_rid += 1
        self._records[record.rid] = record
        for trigger in triggers:
            self._records_by_trigger.setdefault(trigger, set()).add(record.rid)
        for pair in record.produced:
            state = self._pairs.get(pair)
            if state is None:
                self._pairs[pair] = PairState(
                    count=1, first_iteration=iteration, record_ids=[record.rid]
                )
                self._known.setdefault(concept, set()).add(pair.instance)
                self._instance_concepts.setdefault(pair.instance, set()).add(
                    concept
                )
                self._removed_pairs.discard(pair)
            else:
                state.count += 1
                state.record_ids.append(record.rid)
        return record

    # ------------------------------------------------------------------
    # Reading: pairs
    # ------------------------------------------------------------------
    def __contains__(self, pair: IsAPair) -> bool:
        return pair in self._pairs

    def __len__(self) -> int:
        return len(self._pairs)

    def pairs(self) -> Iterator[IsAPair]:
        """Iterate over all alive pairs."""
        return iter(self._pairs)

    def count(self, pair: IsAPair) -> int:
        """Active-evidence count for a pair (0 when absent)."""
        state = self._pairs.get(pair)
        return state.count if state is not None else 0

    def first_iteration(self, pair: IsAPair) -> int:
        """Iteration a pair was first extracted in."""
        state = self._pairs.get(pair)
        if state is None:
            raise KnowledgeBaseError(f"pair not in knowledge base: {pair}")
        return state.first_iteration

    def concepts(self) -> list[str]:
        """All concepts with at least one alive instance."""
        return [c for c, known in self._known.items() if known]

    def instances_of(self, concept: str) -> frozenset[str]:
        """Alive instances under a concept."""
        return frozenset(self._known.get(concept, ()))

    def has_instance(self, concept: str, instance: str) -> bool:
        """True iff ``(concept, instance)`` is alive."""
        return instance in self._known.get(concept, ())

    def concepts_with_instance(self, instance: str) -> frozenset[str]:
        """All concepts an instance is currently (alive) extracted under."""
        return frozenset(self._instance_concepts.get(instance, ()))

    def core_instances(self, concept: str) -> frozenset[str]:
        """Instances first extracted in iteration 1 (the paper's Core(C))."""
        return frozenset(
            pair.instance
            for pair, state in self._pairs.items()
            if pair.concept == concept and state.first_iteration == 1
        )

    def core_count(self, pair: IsAPair) -> int:
        """Evidence for a pair coming from iteration-1 records only."""
        state = self._pairs.get(pair)
        if state is None:
            return 0
        return sum(
            1
            for rid in state.record_ids
            if self._records[rid].active and self._records[rid].iteration == 1
        )

    def instances_by_iteration(self, concept: str, iteration: int) -> frozenset[str]:
        """``E(C, i)``: instances first learned in or before ``iteration``."""
        return frozenset(
            pair.instance
            for pair, state in self._pairs.items()
            if pair.concept == concept and state.first_iteration <= iteration
        )

    def removed_pairs(self) -> frozenset[IsAPair]:
        """Pairs that existed once but were rolled back to zero evidence."""
        return frozenset(self._removed_pairs)

    # ------------------------------------------------------------------
    # Reading: records / provenance
    # ------------------------------------------------------------------
    def record(self, rid: int) -> ExtractionRecord:
        """Look up a record by id."""
        try:
            return self._records[rid]
        except KeyError:
            raise KnowledgeBaseError(f"no record with rid {rid}") from None

    def records(self, include_inactive: bool = False) -> Iterator[ExtractionRecord]:
        """Iterate over records (active only, by default)."""
        for record in self._records.values():
            if include_inactive or record.active:
                yield record

    def records_for_pair(self, pair: IsAPair) -> list[ExtractionRecord]:
        """Active records that produced a pair."""
        state = self._pairs.get(pair)
        if state is None:
            return []
        return [
            self._records[rid]
            for rid in state.record_ids
            if self._records[rid].active
        ]

    def records_triggered_by(self, pair: IsAPair) -> list[ExtractionRecord]:
        """Active records that list ``pair`` among their triggers."""
        return [
            self._records[rid]
            for rid in self._records_by_trigger.get(pair, ())
            if self._records[rid].active
        ]

    def sub_instance_counts(self, concept: str, instance: str) -> dict[str, int]:
        """Frequency of sub-instances triggered by ``(concept, instance)``.

        ``sub(e)`` in the paper: instances extracted from sentences whose
        resolution was triggered by ``e`` under the same concept, counted
        per active record.  Co-instances that were already known still
        count — Fig. 2 of the paper shows non-DP triggers re-extracting
        popular core instances, which is exactly what makes their
        sub-instance distribution resemble the class distribution.
        """
        trigger = IsAPair(concept, instance)
        triggered = self.records_triggered_by(trigger)
        counts: dict[str, int] = {}
        for record in triggered:
            for other in record.instances:
                if other != instance:
                    counts[other] = counts.get(other, 0) + 1
        return counts

    def frequency_distribution(self, concept: str) -> dict[str, int]:
        """Evidence counts for every alive instance under a concept."""
        return {
            pair.instance: state.count
            for pair, state in self._pairs.items()
            if pair.concept == concept
        }

    def core_frequency_distribution(self, concept: str) -> dict[str, int]:
        """Iteration-1 evidence counts for core instances of a concept."""
        result: dict[str, int] = {}
        for pair, state in self._pairs.items():
            if pair.concept != concept or state.first_iteration != 1:
                continue
            core = self.core_count(pair)
            if core > 0:
                result[pair.instance] = core
        return result

    # ------------------------------------------------------------------
    # Primitive mutation (used by the rollback engine)
    # ------------------------------------------------------------------
    def remove_pair(self, pair: IsAPair) -> None:
        """Force-remove a pair regardless of remaining evidence.

        Producing records stay active (their sibling pairs are innocent);
        the caller must handle records *triggered by* the pair.
        """
        if pair not in self._pairs:
            raise KnowledgeBaseError(f"pair not in knowledge base: {pair}")
        del self._pairs[pair]
        self._drop_indexes(pair)
        self._removed_pairs.add(pair)

    def _drop_indexes(self, pair: IsAPair) -> None:
        self._known[pair.concept].discard(pair.instance)
        concepts = self._instance_concepts.get(pair.instance)
        if concepts is not None:
            concepts.discard(pair.concept)
            if not concepts:
                del self._instance_concepts[pair.instance]

    def deactivate_record(self, rid: int) -> list[IsAPair]:
        """Deactivate a record; return pairs whose evidence dropped to zero.

        Dead pairs are removed from the store.  The caller (the rollback
        engine) is responsible for cascading into records triggered by the
        dead pairs.
        """
        record = self.record(rid)
        if not record.active:
            raise KnowledgeBaseError(f"record {rid} is already inactive")
        record.active = False
        died: list[IsAPair] = []
        for pair in record.produced:
            state = self._pairs.get(pair)
            if state is None:
                continue
            state.count -= 1
            if state.count <= 0:
                del self._pairs[pair]
                self._drop_indexes(pair)
                self._removed_pairs.add(pair)
                died.append(pair)
        return died

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"KnowledgeBase(pairs={len(self._pairs)}, "
            f"records={len(self._records)})"
        )
