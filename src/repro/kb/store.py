"""The knowledge base: isA pairs with counts, iterations and provenance.

Design notes
------------
* Evidence counts are *record-based*: ``count(pair)`` is the number of
  distinct active sentence extractions producing the pair, matching the
  paper's "extracted from k different sentences".
* Pairs die when their count reaches zero; the cascading logic lives in
  :mod:`repro.kb.rollback`, the store only exposes the primitive mutations.
* ``first_iteration`` of a pair never changes, even if later records add
  evidence, so ``E(C, i)`` (the paper's per-iteration snapshots) can always
  be reconstructed.
* The store is **mutation-versioned**: every write (``add_extraction``,
  ``remove_pair``, ``deactivate_record``) bumps a monotonic
  :attr:`version` and stamps the touched concept in
  :meth:`concept_version`.  Downstream caches — ranking scores, the sorted
  concept list, the per-concept sub-instance memo — compare versions
  instead of recomputing, so multi-round cleaning only re-derives state
  for the concepts a rollback actually changed.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Collection, Iterable, Iterator

import numpy as np

from ..errors import KnowledgeBaseError
from .pair import IsAPair
from .record import ExtractionRecord

_EMPTY_DICT: dict = {}

__all__ = ["PairState", "KnowledgeBase"]


@dataclass
class PairState:
    """Mutable bookkeeping for one pair."""

    count: int
    first_iteration: int
    record_ids: list[int]


class KnowledgeBase:
    """Store of isA pairs with full extraction provenance."""

    def __init__(self) -> None:
        self._pairs: dict[IsAPair, PairState] = {}
        # concept → {instance: state}; mirrors _pairs, keyed for the
        # per-concept reads the ranking substrate does in bulk.
        self._by_concept: dict[str, dict[str, PairState]] = {}
        self._instance_concepts: dict[str, set[str]] = {}
        self._records: dict[int, ExtractionRecord] = {}
        self._records_by_trigger: dict[IsAPair, set[int]] = {}
        # concept → rids in insertion order; records are only ever
        # deactivated, never deleted, so the lists stay valid.
        self._records_by_concept: dict[str, list[int]] = {}
        # Trigger-edge substrate for the ranking graphs.  Instances get a
        # stable per-concept id on first extraction (never reassigned, even
        # across removal and re-extraction), and every trigger → instance
        # occurrence is appended as a flat code ``source_id << 32 |
        # target_id`` with its record id alongside.  The lists are
        # append-only: deactivated records are filtered out by rid at
        # graph-build time, so a rebuild is array work instead of a scan
        # of record objects.
        self._instance_ids: dict[str, dict[str, int]] = {}
        self._edge_codes: dict[str, list[int]] = {}
        self._edge_rids: dict[str, list[int]] = {}
        # record activity as a flat bool array indexed by rid (doubling
        # growth), so bulk readers can mask by rid without touching
        # record objects.
        self._active_flags = np.zeros(1024, dtype=bool)
        self._next_rid = 0
        self._removed_pairs: set[IsAPair] = set()
        # Mutation versioning (see module docstring).
        self._version = 0
        self._concept_version: dict[str, int] = {}
        self._concepts_cache: tuple[str, ...] | None = None
        # concept → (version, {instance: sub-instance counts}) memo.
        self._subs_cache: dict[str, tuple[int, dict[str, dict[str, int]]]] = {}
        # concept → (version, {instance: core count}) memo.
        self._core_cache: dict[str, tuple[int, dict[str, int]]] = {}
        # concept → (version, core instance frozenset) memo.
        self._core_set_cache: dict[str, tuple[int, frozenset[str]]] = {}
        # concept → (version, sorted instance tuple) memo.
        self._sorted_cache: dict[str, tuple[int, tuple[str, ...]]] = {}
        # concept → (version, singleton-late instance frozenset) memo.
        self._late_cache: dict[str, tuple[int, frozenset[str]]] = {}

    # ------------------------------------------------------------------
    # Versioning
    # ------------------------------------------------------------------
    @property
    def version(self) -> int:
        """Monotonic counter bumped by every mutation."""
        return self._version

    def concept_version(self, concept: str) -> int:
        """Version at which ``concept`` was last mutated (0 = never)."""
        return self._concept_version.get(concept, 0)

    def dirty_concepts_since(self, version: int) -> frozenset[str]:
        """Concepts mutated after the given version."""
        return frozenset(
            concept
            for concept, touched in self._concept_version.items()
            if touched > version
        )

    def _touch(self, concept: str) -> None:
        self._version += 1
        self._concept_version[concept] = self._version
        self._concepts_cache = None

    # ------------------------------------------------------------------
    # Writing
    # ------------------------------------------------------------------
    def add_extraction(
        self,
        sid: int,
        concept: str,
        instances: Iterable[str],
        triggers: Iterable[IsAPair] = (),
        iteration: int = 1,
    ) -> ExtractionRecord:
        """Commit one sentence extraction and return its provenance record."""
        instances = tuple(instances)
        triggers = tuple(triggers)
        if not instances:
            raise KnowledgeBaseError("an extraction must produce instances")
        for trigger in triggers:
            if trigger not in self._pairs:
                raise KnowledgeBaseError(
                    f"trigger {trigger} is not in the knowledge base"
                )
        record = ExtractionRecord(
            rid=self._next_rid,
            sid=sid,
            concept=concept,
            instances=instances,
            triggers=triggers,
            iteration=iteration,
        )
        self._next_rid += 1
        self._records[record.rid] = record
        if record.rid >= self._active_flags.size:
            grown = np.zeros(self._active_flags.size * 2, dtype=bool)
            grown[: self._active_flags.size] = self._active_flags
            self._active_flags = grown
        self._active_flags[record.rid] = True
        self._records_by_concept.setdefault(concept, []).append(record.rid)
        ids = self._instance_ids.setdefault(concept, {})
        for pair in record.produced:
            if pair.instance not in ids:
                ids[pair.instance] = len(ids)
        if triggers:
            # Every edge endpoint has an id by now: targets are either
            # produced above or trigger instances, and triggers are
            # existing pairs (hence produced by an earlier record).
            codes = self._edge_codes.setdefault(concept, [])
            rids = self._edge_rids.setdefault(concept, [])
            rid = record.rid
            for trigger in record.trigger_instances:
                base = ids[trigger] << 32
                for e in instances:
                    if e != trigger:
                        codes.append(base | ids[e])
                        rids.append(rid)
        for trigger in triggers:
            self._records_by_trigger.setdefault(trigger, set()).add(record.rid)
        for pair in record.produced:
            state = self._pairs.get(pair)
            if state is None:
                state = PairState(
                    count=1, first_iteration=iteration, record_ids=[record.rid]
                )
                self._pairs[pair] = state
                self._by_concept.setdefault(concept, {})[pair.instance] = state
                self._instance_concepts.setdefault(pair.instance, set()).add(
                    concept
                )
                self._removed_pairs.discard(pair)
            else:
                state.count += 1
                state.record_ids.append(record.rid)
        self._touch(concept)
        return record

    # ------------------------------------------------------------------
    # Reading: pairs
    # ------------------------------------------------------------------
    def __contains__(self, pair: IsAPair) -> bool:
        return pair in self._pairs

    def __len__(self) -> int:
        return len(self._pairs)

    def pairs(self) -> Iterator[IsAPair]:
        """Iterate over all alive pairs."""
        return iter(self._pairs)

    def count(self, pair: IsAPair) -> int:
        """Active-evidence count for a pair (0 when absent)."""
        state = self._pairs.get(pair)
        return state.count if state is not None else 0

    def first_iteration(self, pair: IsAPair) -> int:
        """Iteration a pair was first extracted in."""
        state = self._pairs.get(pair)
        if state is None:
            raise KnowledgeBaseError(f"pair not in knowledge base: {pair}")
        return state.first_iteration

    def concepts(self) -> list[str]:
        """All concepts with at least one alive instance (sorted).

        The sorted tuple is cached and invalidated by the version counter,
        so read-heavy phases (scoring, labelling) do not re-sort.
        """
        if self._concepts_cache is None:
            self._concepts_cache = tuple(
                sorted(c for c, known in self._by_concept.items() if known)
            )
        return list(self._concepts_cache)

    def instances_of(self, concept: str) -> frozenset[str]:
        """Alive instances under a concept."""
        return frozenset(self._by_concept.get(concept, ()))

    def has_instance(self, concept: str, instance: str) -> bool:
        """True iff ``(concept, instance)`` is alive."""
        return instance in self._by_concept.get(concept, ())

    def concepts_with_instance(self, instance: str) -> frozenset[str]:
        """All concepts an instance is currently (alive) extracted under."""
        return frozenset(self._instance_concepts.get(instance, ()))

    def iter_concepts_with_instance(self, instance: str) -> Collection[str]:
        """:meth:`concepts_with_instance` without the defensive copy.

        Returns the live index entry — read it immediately, never hold it
        across KB mutations.  The per-instance hot loops (f2 counting,
        evidence rules) issue tens of thousands of these per detection
        refit, where the frozenset copies dominate.
        """
        return self._instance_concepts.get(instance, ())

    def instance_view(self, concept: str) -> Collection[str]:
        """Live, set-operable view of a concept's alive instances.

        A dict keys view: supports ``&``/``in`` at C speed without the
        :meth:`instances_of` frozenset copy.  Read it immediately, never
        hold it across KB mutations.
        """
        return self._by_concept.get(concept, _EMPTY_DICT).keys()

    def sorted_instances(self, concept: str) -> tuple[str, ...]:
        """Alive instances of a concept in sorted order (memoised).

        Feature extraction and seed labelling both walk every concept's
        instances in deterministic order once per refit; the memo is
        invalidated by the concept version counter.
        """
        cached = self._sorted_cache.get(concept)
        current = self.concept_version(concept)
        if cached is None or cached[0] != current:
            cached = (
                current,
                tuple(sorted(self._by_concept.get(concept, ()))),
            )
            self._sorted_cache[concept] = cached
        return cached[1]

    def concepts_sharing(self, instances: Iterable[str]) -> set[str]:
        """Union of :meth:`concepts_with_instance` over many instances.

        One pass without per-instance frozenset copies — the analysis
        cache walks instance → concept reverse dependencies in bulk when
        it computes invalidation signatures.
        """
        result: set[str] = set()
        by_instance = self._instance_concepts
        for instance in instances:
            concepts = by_instance.get(instance)
            if concepts:
                result |= concepts
        return result

    def core_instances(self, concept: str) -> frozenset[str]:
        """Instances first extracted in iteration 1 (the paper's Core(C))."""
        cached = self._core_set_cache.get(concept)
        current = self.concept_version(concept)
        if cached is None or cached[0] != current:
            cached = (
                current,
                frozenset(
                    instance
                    for instance, state in self._by_concept.get(
                        concept, {}
                    ).items()
                    if state.first_iteration == 1
                ),
            )
            self._core_set_cache[concept] = cached
        return cached[1]

    def instance_stats(self, concept: str, instance: str) -> tuple[int, int] | None:
        """``(count, first_iteration)`` for an alive pair, else ``None``.

        One lookup for readers that would otherwise pay three
        (``__contains__`` + ``count`` + ``first_iteration``).
        """
        by_instance = self._by_concept.get(concept)
        if by_instance is None:
            return None
        state = by_instance.get(instance)
        if state is None:
            return None
        return (state.count, state.first_iteration)

    def core_count(self, pair: IsAPair) -> int:
        """Evidence for a pair coming from iteration-1 records only."""
        if pair not in self._pairs:
            return 0
        return self.core_counts(pair.concept).get(pair.instance, 0)

    def core_counts(self, concept: str) -> dict[str, int]:
        """``core_count`` for every alive instance of a concept (memoised).

        The restart vector of the trigger graph needs this for all nodes at
        once; the memo is invalidated by the version counter.
        """
        cached = self._core_cache.get(concept)
        current = self.concept_version(concept)
        if cached is None or cached[0] != current:
            records = self._records
            counts = {}
            for instance, state in self._by_concept.get(concept, {}).items():
                total = 0
                for rid in state.record_ids:
                    record = records[rid]
                    if record.active and record.iteration == 1:
                        total += 1
                counts[instance] = total
            cached = (current, counts)
            self._core_cache[concept] = cached
        return cached[1]

    def singleton_late_instances(self, concept: str) -> frozenset[str]:
        """Alive instances extracted exactly once, after iteration 1.

        The candidate set of the evidenced-incorrect rule (§3.2.2): any
        other instance fails its count/first-iteration gate, so the seed
        labeler consults this memo instead of per-instance stats.
        """
        cached = self._late_cache.get(concept)
        current = self.concept_version(concept)
        if cached is None or cached[0] != current:
            cached = (
                current,
                frozenset(
                    instance
                    for instance, state in self._by_concept.get(
                        concept, _EMPTY_DICT
                    ).items()
                    if state.count == 1 and state.first_iteration > 1
                ),
            )
            self._late_cache[concept] = cached
        return cached[1]

    def instances_by_iteration(self, concept: str, iteration: int) -> frozenset[str]:
        """``E(C, i)``: instances first learned in or before ``iteration``."""
        return frozenset(
            instance
            for instance, state in self._by_concept.get(concept, {}).items()
            if state.first_iteration <= iteration
        )

    def removed_pairs(self) -> frozenset[IsAPair]:
        """Pairs that existed once but were rolled back to zero evidence."""
        return frozenset(self._removed_pairs)

    # ------------------------------------------------------------------
    # Reading: records / provenance
    # ------------------------------------------------------------------
    def record(self, rid: int) -> ExtractionRecord:
        """Look up a record by id."""
        try:
            return self._records[rid]
        except KeyError:
            raise KnowledgeBaseError(f"no record with rid {rid}") from None

    def records(self, include_inactive: bool = False) -> Iterator[ExtractionRecord]:
        """Iterate over records (active only, by default)."""
        for record in self._records.values():
            if include_inactive or record.active:
                yield record

    def instance_id_map(self, concept: str) -> dict[str, int]:
        """Stable per-concept instance ids (grow-only; treat as read-only).

        Ids are assigned at first extraction and survive removal, so
        edge codes recorded against them never need rewriting.
        """
        return self._instance_ids.get(concept, {})

    def edge_occurrences(self, concept: str) -> tuple[list[int], list[int]]:
        """Trigger-edge occurrences of a concept (treat as read-only).

        Returns ``(codes, rids)``: parallel append-only lists with one
        entry per trigger → instance occurrence, where a code is
        ``source_id << 32 | target_id`` over :meth:`instance_id_map` ids
        and ``rids[i]`` is the record the occurrence came from.  Consumers
        filter by record activity themselves.
        """
        return (
            self._edge_codes.get(concept, []),
            self._edge_rids.get(concept, []),
        )

    def record_active_flags(self) -> np.ndarray:
        """Record activity by rid as a bool array (treat as read-only).

        May be longer than the number of records; indexing by any valid
        rid is always in bounds.
        """
        return self._active_flags

    def records_for_concept(self, concept: str) -> Iterator[ExtractionRecord]:
        """Active records extracted under one concept (insertion order).

        Indexed, so per-concept consumers (the trigger-graph builder) do
        not scan the whole record table.
        """
        records = self._records
        for rid in self._records_by_concept.get(concept, ()):
            record = records[rid]
            if record.active:
                yield record

    def records_for_pair(self, pair: IsAPair) -> list[ExtractionRecord]:
        """Active records that produced a pair."""
        state = self._pairs.get(pair)
        if state is None:
            return []
        return [
            self._records[rid]
            for rid in state.record_ids
            if self._records[rid].active
        ]

    def records_triggered_by(self, pair: IsAPair) -> list[ExtractionRecord]:
        """Active records that list ``pair`` among their triggers."""
        records = self._records
        return [
            record
            for rid in self._records_by_trigger.get(pair, ())
            if (record := records[rid]).active
        ]

    def sub_instance_counts(self, concept: str, instance: str) -> dict[str, int]:
        """Frequency of sub-instances triggered by ``(concept, instance)``.

        ``sub(e)`` in the paper: instances extracted from sentences whose
        resolution was triggered by ``e`` under the same concept, counted
        per active record.  Co-instances that were already known still
        count — Fig. 2 of the paper shows non-DP triggers re-extracting
        popular core instances, which is exactly what makes their
        sub-instance distribution resemble the class distribution.

        Results are memoised per concept and invalidated by the version
        counter (features and seed labelling both query every instance).
        """
        cached = self._subs_cache.get(concept)
        current = self.concept_version(concept)
        if cached is None or cached[0] != current:
            cached = (current, {})
            self._subs_cache[concept] = cached
        by_instance = cached[1]
        counts = by_instance.get(instance)
        if counts is None:
            trigger = IsAPair(concept, instance)
            counts = {}
            for record in self.records_triggered_by(trigger):
                for other in record.instances:
                    if other != instance:
                        counts[other] = counts.get(other, 0) + 1
            by_instance[instance] = counts
        # The memoised dict is handed out directly; treat it as read-only.
        return counts

    def frequency_distribution(self, concept: str) -> dict[str, int]:
        """Evidence counts for every alive instance under a concept."""
        return {
            instance: state.count
            for instance, state in self._by_concept.get(concept, {}).items()
        }

    def core_frequency_distribution(self, concept: str) -> dict[str, int]:
        """Iteration-1 evidence counts for core instances of a concept."""
        counts = self.core_counts(concept)
        return {
            instance: counts[instance]
            for instance, state in self._by_concept.get(concept, {}).items()
            if state.first_iteration == 1 and counts[instance] > 0
        }

    # ------------------------------------------------------------------
    # Primitive mutation (used by the rollback engine)
    # ------------------------------------------------------------------
    def remove_pair(self, pair: IsAPair) -> None:
        """Force-remove a pair regardless of remaining evidence.

        Producing records stay active (their sibling pairs are innocent);
        the caller must handle records *triggered by* the pair.
        """
        if pair not in self._pairs:
            raise KnowledgeBaseError(f"pair not in knowledge base: {pair}")
        del self._pairs[pair]
        self._drop_indexes(pair)
        self._removed_pairs.add(pair)
        self._touch(pair.concept)

    def _drop_indexes(self, pair: IsAPair) -> None:
        by_concept = self._by_concept.get(pair.concept)
        if by_concept is not None:
            by_concept.pop(pair.instance, None)
        concepts = self._instance_concepts.get(pair.instance)
        if concepts is not None:
            concepts.discard(pair.concept)
            if not concepts:
                del self._instance_concepts[pair.instance]

    def deactivate_record(self, rid: int) -> list[IsAPair]:
        """Deactivate a record; return pairs whose evidence dropped to zero.

        Dead pairs are removed from the store.  The caller (the rollback
        engine) is responsible for cascading into records triggered by the
        dead pairs.
        """
        record = self.record(rid)
        if not record.active:
            raise KnowledgeBaseError(f"record {rid} is already inactive")
        record.active = False
        self._active_flags[rid] = False
        died: list[IsAPair] = []
        for pair in record.produced:
            state = self._pairs.get(pair)
            if state is None:
                continue
            state.count -= 1
            if state.count <= 0:
                del self._pairs[pair]
                self._drop_indexes(pair)
                self._removed_pairs.add(pair)
                died.append(pair)
        self._touch(record.concept)
        return died

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"KnowledgeBase(pairs={len(self._pairs)}, "
            f"records={len(self._records)})"
        )
