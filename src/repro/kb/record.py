"""Extraction provenance records.

Every sentence the extractor commits to produces one
:class:`ExtractionRecord`: which concept was chosen, which pairs the
sentence yielded, and — crucially for the paper — which already-known pairs
*triggered* the resolution.  Records are the unit of rollback (§4.2).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .pair import IsAPair

__all__ = ["ExtractionRecord"]


@dataclass
class ExtractionRecord:
    """Provenance for one committed sentence extraction.

    Parameters
    ----------
    rid:
        Record id, unique within a knowledge base.
    sid:
        The sentence the extraction came from.
    concept:
        The concept the sentence was resolved to.
    instances:
        All candidate instances committed under ``concept``.
    triggers:
        Known pairs (all under ``concept``) whose presence enabled the
        resolution.  Empty for iteration-1 (unambiguous) extractions.
    iteration:
        Extraction iteration the record was created in (1-based).
    """

    rid: int
    sid: int
    concept: str
    instances: tuple[str, ...]
    triggers: tuple[IsAPair, ...]
    iteration: int
    active: bool = True
    _dead_triggers: set[IsAPair] = field(default_factory=set, repr=False)
    # Lazy caches; ``triggers``/``instances`` never change after creation.
    _trigger_instances: tuple[str, ...] | None = field(
        default=None, repr=False, compare=False
    )
    _produced: tuple[IsAPair, ...] | None = field(
        default=None, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        if self.iteration < 1:
            raise ValueError("iteration must be >= 1")
        for trigger in self.triggers:
            if trigger.concept != self.concept:
                raise ValueError(
                    f"trigger {trigger} does not match record concept "
                    f"{self.concept!r}"
                )

    @property
    def produced(self) -> tuple[IsAPair, ...]:
        """The pairs this record contributes evidence for.

        Trigger instances are *inputs* to the extraction, not outputs (the
        paper calls the outputs "new generated instances"); excluding them
        prevents self-support cycles where a drift error keeps its own
        trigger alive through the sentence it appeared in.
        """
        cached = self._produced
        if cached is None:
            trigger_instances = set(self.trigger_instances)
            cached = tuple(
                IsAPair(self.concept, e)
                for e in self.instances
                if e not in trigger_instances
            )
            self._produced = cached
        return cached

    @property
    def trigger_instances(self) -> tuple[str, ...]:
        """The instances (not pairs) that triggered this record."""
        cached = self._trigger_instances
        if cached is None:
            cached = tuple(t.instance for t in self.triggers)
            self._trigger_instances = cached
        return cached

    @property
    def is_root(self) -> bool:
        """True for iteration-1 extractions, which need no trigger."""
        return not self.triggers

    def alive_triggers(self) -> tuple[IsAPair, ...]:
        """Triggers whose pairs are still in the knowledge base."""
        return tuple(t for t in self.triggers if t not in self._dead_triggers)

    def kill_trigger(self, pair: IsAPair) -> bool:
        """Mark one trigger as removed; returns True if none remain alive."""
        if pair in self.triggers:
            self._dead_triggers.add(pair)
        return not self.is_root and not self.alive_triggers()
