"""Knowledge-base persistence.

Stores the full provenance — every extraction record with its triggers and
activity flag — so a reloaded knowledge base supports rollback, feature
extraction and cleaning exactly like the original.  The format is
line-oriented JSON: one header line, then one line per record (active and
inactive alike, so removed-pair history survives the round trip).
"""

from __future__ import annotations

import json
from pathlib import Path

from ..errors import KnowledgeBaseError
from .pair import IsAPair
from .store import KnowledgeBase

__all__ = ["save_kb", "load_kb", "SCHEMA_VERSION"]

_FORMAT = "repro-kb"
_VERSION = 1
#: Version of the *record-row* schema (field names and meanings).  Bumped
#: whenever a row field is added, removed or reinterpreted, independently
#: of the container ``version``; loaders refuse files stamped with a
#: different schema instead of silently misreading rows.
SCHEMA_VERSION = 1


def save_kb(kb: KnowledgeBase, path: str | Path) -> None:
    """Write a knowledge base (with provenance) to a JSONL file."""
    records = sorted(kb.records(include_inactive=True), key=lambda r: r.rid)
    header = {
        "format": _FORMAT,
        "version": _VERSION,
        "schema_version": SCHEMA_VERSION,
        "records": len(records),
        "pairs": len(kb),
        # Pairs force-removed (e.g. Accidental DPs) while their producing
        # records stayed active; replay must re-remove them.
        "removed_pairs": sorted(
            [pair.concept, pair.instance] for pair in kb.removed_pairs()
        ),
    }
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(json.dumps(header) + "\n")
        for record in records:
            row = {
                "rid": record.rid,
                "sid": record.sid,
                "concept": record.concept,
                "instances": list(record.instances),
                "triggers": [
                    [t.concept, t.instance] for t in record.triggers
                ],
                "iteration": record.iteration,
                "active": record.active,
                "dead_triggers": [
                    [t.concept, t.instance]
                    for t in record.triggers
                    if t not in record.alive_triggers()
                ],
            }
            handle.write(json.dumps(row) + "\n")


def load_kb(path: str | Path) -> KnowledgeBase:
    """Rebuild a knowledge base saved with :func:`save_kb`.

    Records are replayed in rid order; inactive records are replayed and
    then deactivated, so pair counts, removed-pair history and trigger
    liveness all match the original.
    """
    kb = KnowledgeBase()
    with open(path, encoding="utf-8") as handle:
        header_line = handle.readline()
        try:
            header = json.loads(header_line)
        except json.JSONDecodeError as exc:
            raise KnowledgeBaseError(f"bad KB header in {path}: {exc}") from exc
        if header.get("format") != _FORMAT:
            raise KnowledgeBaseError(
                f"{path} is not a {_FORMAT} file (format="
                f"{header.get('format')!r})"
            )
        if header.get("version") != _VERSION:
            raise KnowledgeBaseError(
                f"unsupported KB version {header.get('version')!r}"
            )
        schema = header.get("schema_version")
        if schema != SCHEMA_VERSION:
            raise KnowledgeBaseError(
                f"{path} declares record schema {schema!r}; this reader "
                f"understands schema {SCHEMA_VERSION} — refusing to guess "
                "at row fields"
            )
        to_deactivate: list[int] = []
        dead_trigger_rows: list[tuple[int, list]] = []
        for line_number, line in enumerate(handle, start=2):
            line = line.strip()
            if not line:
                continue
            try:
                row = json.loads(line)
                record = kb.add_extraction(
                    sid=row["sid"],
                    concept=row["concept"],
                    instances=tuple(row["instances"]),
                    triggers=tuple(
                        IsAPair(concept, instance)
                        for concept, instance in row["triggers"]
                    ),
                    iteration=row["iteration"],
                )
            except (KeyError, ValueError, json.JSONDecodeError) as exc:
                raise KnowledgeBaseError(
                    f"bad KB record at {path}:{line_number}: {exc}"
                ) from exc
            if record.rid != row["rid"]:
                raise KnowledgeBaseError(
                    f"record ids are not dense at {path}:{line_number} "
                    f"(expected {record.rid}, file says {row['rid']})"
                )
            if not row.get("active", True):
                to_deactivate.append(record.rid)
            if row.get("dead_triggers"):
                dead_trigger_rows.append((record.rid, row["dead_triggers"]))
        for rid in to_deactivate:
            kb.deactivate_record(rid)
        for rid, dead in dead_trigger_rows:
            record = kb.record(rid)
            for concept, instance in dead:
                record.kill_trigger(IsAPair(concept, instance))
        for concept, instance in header.get("removed_pairs", ()):
            pair = IsAPair(concept, instance)
            if pair in kb:
                kb.remove_pair(pair)
    # A truncated file parses line by line without complaint; the header
    # counts are the integrity check that makes the loss loud.
    loaded_records = sum(1 for _ in kb.records(include_inactive=True))
    if loaded_records != header.get("records"):
        raise KnowledgeBaseError(
            f"{path} is truncated or padded: header promises "
            f"{header.get('records')} records, file holds {loaded_records}"
        )
    if len(kb) != header.get("pairs"):
        raise KnowledgeBaseError(
            f"{path} is inconsistent: header promises {header.get('pairs')} "
            f"alive pairs, replay produced {len(kb)}"
        )
    return kb
