"""The isA pair value object."""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["IsAPair"]


@dataclass(frozen=True, order=True)
class IsAPair:
    """A ``(concept, instance)`` isA assertion, e.g. ``(animal, dog)``."""

    concept: str
    instance: str

    def __post_init__(self) -> None:
        if not self.concept:
            raise ValueError("pair concept must be non-empty")
        if not self.instance:
            raise ValueError("pair instance must be non-empty")
        # Pairs spend their lives as dict/set keys; precomputing the hash
        # beats the generated per-lookup tuple hash.
        object.__setattr__(self, "_hash", hash((self.concept, self.instance)))

    def __hash__(self) -> int:
        return self._hash

    def __str__(self) -> str:  # pragma: no cover - display convenience
        return f"({self.instance} isA {self.concept})"
