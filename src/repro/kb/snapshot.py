"""Per-iteration extraction logs (the data behind Fig. 5a)."""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["IterationStats", "IterationLog"]


@dataclass(frozen=True)
class IterationStats:
    """What one extraction iteration contributed."""

    iteration: int
    sentences_resolved: int
    new_pairs: int
    total_pairs: int


@dataclass
class IterationLog:
    """Accumulates :class:`IterationStats` while an extraction runs."""

    entries: list[IterationStats] = field(default_factory=list)

    def record(
        self, iteration: int, sentences_resolved: int, new_pairs: int,
        total_pairs: int,
    ) -> None:
        """Append the stats for one finished iteration."""
        self.entries.append(
            IterationStats(
                iteration=iteration,
                sentences_resolved=sentences_resolved,
                new_pairs=new_pairs,
                total_pairs=total_pairs,
            )
        )

    def __len__(self) -> int:
        return len(self.entries)

    def __iter__(self):
        return iter(self.entries)

    @property
    def iterations(self) -> int:
        """Number of iterations logged."""
        return len(self.entries)

    def cumulative_pairs(self) -> list[int]:
        """Total distinct pairs after each iteration."""
        return [entry.total_pairs for entry in self.entries]
