"""Exception hierarchy for the :mod:`repro` package.

All exceptions raised deliberately by this library derive from
:class:`ReproError`, so callers can catch library failures without
accidentally swallowing programming errors such as :class:`TypeError`.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class WorldError(ReproError):
    """Raised when a ground-truth world is malformed or misused."""


class UnknownConceptError(WorldError):
    """Raised when a concept name does not exist in the world."""

    def __init__(self, concept: str) -> None:
        super().__init__(f"unknown concept: {concept!r}")
        self.concept = concept


class UnknownInstanceError(WorldError):
    """Raised when an instance name does not exist in the world."""

    def __init__(self, instance: str) -> None:
        super().__init__(f"unknown instance: {instance!r}")
        self.instance = instance


class CorpusError(ReproError):
    """Raised when corpus generation or parsing fails."""


class ExtractionError(ReproError):
    """Raised when the iterative extraction engine is misused."""


class KnowledgeBaseError(ReproError):
    """Raised on invalid knowledge-base operations (e.g. double removal)."""


class RankingError(ReproError):
    """Raised when an instance-ranking model cannot be computed."""


class LabelingError(ReproError):
    """Raised when seed-label construction fails."""


class LearningError(ReproError):
    """Raised when a DP detector cannot be trained or applied."""


class NotFittedError(LearningError):
    """Raised when predict/transform is called before fit."""

    def __init__(self, what: str) -> None:
        super().__init__(f"{what} must be fitted before use")
        self.what = what


class CleaningError(ReproError):
    """Raised when a cleaning strategy is misconfigured."""


class ExperimentError(ReproError):
    """Raised when an experiment runner is misconfigured or unknown."""


class ServiceError(ReproError):
    """Raised on invalid streaming-service state (journal, checkpoint)."""
