"""Tests for WorldBuilder."""

from __future__ import annotations

import pytest

from repro.errors import UnknownConceptError, WorldError
from repro.nlp.types import EntityType
from repro.world.builder import WorldBuilder


def _base_builder() -> WorldBuilder:
    builder = WorldBuilder(seed=1)
    builder.add_domain("animals", EntityType.MISC)
    builder.add_domain("foods", EntityType.MISC)
    builder.add_concept("animal", "animals", size=20, popularity=2.0)
    builder.add_concept("food", "foods", size=15)
    return builder


class TestDomainsAndConcepts:
    def test_duplicate_domain_rejected(self):
        builder = WorldBuilder(seed=1).add_domain("animals")
        with pytest.raises(WorldError):
            builder.add_domain("animals")

    def test_duplicate_concept_rejected(self):
        builder = _base_builder()
        with pytest.raises(WorldError):
            builder.add_concept("animal", "animals", size=5)

    def test_unknown_domain_rejected(self):
        with pytest.raises(WorldError):
            WorldBuilder(seed=1).add_concept("animal", "nowhere", size=5)

    def test_negative_size_rejected(self):
        builder = _base_builder()
        with pytest.raises(WorldError):
            builder.add_concept("plant", "foods", size=-1)

    def test_generated_members_count(self):
        world = _base_builder().build()
        assert world.concept("animal").size == 20
        assert world.concept("food").size == 15

    def test_explicit_members_shared(self):
        builder = _base_builder()
        builder.add_concept("pet", "animals", size=0,
                            members=list(builder.build().members("animal"))[:5])
        world = builder.build()
        assert world.members("pet") <= world.members("animal")


class TestBridges:
    def test_bridges_create_polysemy(self):
        builder = _base_builder()
        builder.add_bridges("food", "animal", count=3)
        world = builder.build()
        shared = world.members("animal") & world.members("food")
        assert len(shared) == 3
        for name in shared:
            assert world.is_polysemous(name)

    def test_same_domain_bridge_rejected(self):
        builder = _base_builder()
        builder.add_concept("pet", "animals", size=5)
        with pytest.raises(WorldError):
            builder.add_bridges("animal", "pet", count=1)

    def test_too_many_bridges_rejected(self):
        builder = _base_builder()
        with pytest.raises(WorldError):
            builder.add_bridges("food", "animal", count=999)

    def test_bridge_count_exact_without_popularity_preference(self):
        builder = _base_builder()
        builder.add_bridges("food", "animal", count=4, prefer_popular=False)
        world = builder.build()
        assert len(world.members("animal") & world.members("food")) == 4


class TestSubsetsAndAliases:
    def test_subset_members_are_parent_members(self):
        builder = _base_builder()
        builder.add_subset("animal", "pet", fraction=0.4)
        world = builder.build()
        assert world.members("pet") <= world.members("animal")
        assert 0 < len(world.members("pet")) < world.concept("animal").size + 1

    def test_subset_same_domain_not_exclusive(self):
        builder = _base_builder()
        builder.add_subset("animal", "pet", fraction=0.4)
        world = builder.build()
        assert not world.exclusive("animal", "pet")

    def test_bad_fraction_rejected(self):
        builder = _base_builder()
        with pytest.raises(WorldError):
            builder.add_subset("animal", "pet", fraction=0.0)

    def test_alias_records_relationship(self):
        builder = _base_builder()
        builder.add_alias("animal", "beast", overlap=0.8)
        world = builder.build()
        assert "beast" in world.concept("animal").aliases
        assert "animal" in world.concept("beast").aliases
        overlap = len(world.members("beast") & world.members("animal"))
        assert overlap / world.concept("beast").size > 0.75


class TestPartners:
    def test_partners_recorded(self):
        builder = _base_builder()
        builder.set_partners("animal", ["food"])
        world = builder.build()
        assert world.concept("animal").partners == ("food",)

    def test_same_domain_partner_rejected(self):
        builder = _base_builder()
        builder.add_concept("pet", "animals", size=3)
        with pytest.raises(WorldError):
            builder.set_partners("animal", ["pet"])

    def test_unknown_partner_rejected(self):
        builder = _base_builder()
        with pytest.raises(UnknownConceptError):
            builder.set_partners("animal", ["ghost"])


class TestDeterminism:
    def test_same_seed_same_world(self):
        a = _base_builder().build()
        b = _base_builder().build()
        assert a.members("animal") == b.members("animal")
        assert set(a.instances) == set(b.instances)

    def test_different_seed_different_members(self):
        builder = WorldBuilder(seed=99)
        builder.add_domain("animals")
        builder.add_concept("animal", "animals", size=20)
        other = builder.build()
        base = _base_builder().build()
        assert base.members("animal") != other.members("animal")
