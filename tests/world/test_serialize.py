"""Tests for world persistence."""

from __future__ import annotations

import json

import pytest

from repro.errors import WorldError
from repro.world import load_world, paper_world, save_world, toy_world


class TestRoundTrip:
    def test_toy_world(self, tmp_path, toy_preset):
        path = tmp_path / "world.json"
        save_world(toy_preset.world, path)
        loaded = load_world(path)
        original = toy_preset.world
        assert set(loaded.concepts) == set(original.concepts)
        assert set(loaded.instances) == set(original.instances)
        for name in original.concepts:
            assert loaded.members(name) == original.members(name)
            assert loaded.concept(name).partners == original.concept(name).partners
        assert loaded.polysemous_instances() == original.polysemous_instances()

    def test_types_preserved(self, tmp_path, toy_preset):
        path = tmp_path / "world.json"
        save_world(toy_preset.world, path)
        loaded = load_world(path)
        for name in list(loaded.instances)[:10]:
            assert loaded.coarse_type_of(name) is (
                toy_preset.world.coarse_type_of(name)
            )

    def test_paper_world_roundtrip(self, tmp_path, small_paper_preset):
        path = tmp_path / "world.json"
        save_world(small_paper_preset.world, path)
        loaded = load_world(path)
        assert len(loaded.instances) == len(small_paper_preset.world.instances)


class TestValidation:
    def test_bad_json(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{nope")
        with pytest.raises(WorldError):
            load_world(path)

    def test_wrong_format(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"format": "other", "version": 1}))
        with pytest.raises(WorldError):
            load_world(path)

    def test_wrong_version(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"format": "repro-world", "version": 9}))
        with pytest.raises(WorldError):
            load_world(path)

    def test_missing_fields(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({
            "format": "repro-world", "version": 1,
            "domains": [{"name": "x", "coarse_type": "misc"}],
            "concepts": [{"name": "c"}],  # missing fields
            "instances": [],
        }))
        with pytest.raises(WorldError):
            load_world(path)
