"""Tests for the pseudo-word vocabulary and typo model."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import WorldError
from repro.world.vocabulary import Vocabulary, make_typo


class TestVocabulary:
    def test_fresh_names_are_unique(self):
        vocab = Vocabulary(np.random.default_rng(0))
        names = vocab.batch(500)
        assert len(set(names)) == 500

    def test_deterministic_given_seed(self):
        a = Vocabulary(np.random.default_rng(3)).batch(50)
        b = Vocabulary(np.random.default_rng(3)).batch(50)
        assert a == b

    def test_reserve_collision_raises(self):
        vocab = Vocabulary(np.random.default_rng(0))
        vocab.reserve("dog")
        with pytest.raises(WorldError):
            vocab.reserve("dog")

    def test_reserved_names_never_regenerated(self):
        vocab = Vocabulary(np.random.default_rng(0))
        probe = Vocabulary(np.random.default_rng(0)).fresh()
        vocab.reserve(probe)
        names = vocab.batch(200)
        assert probe not in names

    def test_contains_and_len(self):
        vocab = Vocabulary(np.random.default_rng(0))
        name = vocab.fresh()
        assert name in vocab
        assert len(vocab) == 1

    def test_two_word_rate_zero_gives_single_words(self):
        vocab = Vocabulary(np.random.default_rng(0), two_word_rate=0.0)
        assert all(" " not in name for name in vocab.batch(100))

    def test_two_word_rate_one_gives_two_words(self):
        vocab = Vocabulary(np.random.default_rng(0), two_word_rate=1.0)
        assert all(" " in name for name in vocab.batch(100))

    def test_bad_two_word_rate(self):
        with pytest.raises(ValueError):
            Vocabulary(np.random.default_rng(0), two_word_rate=1.5)

    def test_names_never_contain_grammar_words(self):
        # " and ", " from ", " such as " are structural separators in the
        # Hearst templates; instance surfaces must never collide with them.
        vocab = Vocabulary(np.random.default_rng(1), two_word_rate=1.0)
        for name in vocab.batch(300):
            for word in name.split(" "):
                assert word not in {"and", "from", "such", "as", "other", "than"}


class TestMakeTypo:
    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=60)
    def test_typo_differs_from_original(self, seed):
        rng = np.random.default_rng(seed)
        name = Vocabulary(np.random.default_rng(seed)).fresh()
        assert make_typo(name, rng) != name

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError):
            make_typo("", np.random.default_rng(0))

    def test_deterministic(self):
        a = make_typo("singapore", np.random.default_rng(5))
        b = make_typo("singapore", np.random.default_rng(5))
        assert a == b
