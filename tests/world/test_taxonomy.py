"""Tests for the World taxonomy queries."""

from __future__ import annotations

import pytest

from repro.errors import UnknownConceptError, UnknownInstanceError, WorldError
from repro.nlp.types import EntityType
from repro.world.schema import ConceptSpec, Domain, InstanceSpec, Sense
from repro.world.taxonomy import World


def _tiny_world() -> World:
    domains = [Domain("animals", EntityType.MISC), Domain("foods", EntityType.MISC)]
    concepts = [
        ConceptSpec("animal", "animals", ("dog", "chicken")),
        ConceptSpec("food", "foods", ("pork", "chicken")),
    ]
    instances = [
        InstanceSpec("dog", (Sense("animals", frozenset({"animal"})),)),
        InstanceSpec("pork", (Sense("foods", frozenset({"food"})),)),
        InstanceSpec(
            "chicken",
            (
                Sense("animals", frozenset({"animal"})),
                Sense("foods", frozenset({"food"})),
            ),
        ),
    ]
    return World(domains, concepts, instances)


class TestMembership:
    def test_is_member(self):
        world = _tiny_world()
        assert world.is_member("animal", "dog")
        assert not world.is_member("animal", "pork")

    def test_unknown_surface_is_member_of_nothing(self):
        world = _tiny_world()
        assert not world.is_member("animal", "syngapore")
        assert world.concepts_of("syngapore") == frozenset()

    def test_concepts_of(self):
        world = _tiny_world()
        assert world.concepts_of("chicken") == frozenset({"animal", "food"})

    def test_members(self):
        assert _tiny_world().members("food") == frozenset({"pork", "chicken"})

    def test_unknown_concept_raises(self):
        with pytest.raises(UnknownConceptError):
            _tiny_world().members("vehicle")

    def test_unknown_instance_raises(self):
        with pytest.raises(UnknownInstanceError):
            _tiny_world().instance("ghost")


class TestPolysemyAndExclusion:
    def test_polysemy(self):
        world = _tiny_world()
        assert world.is_polysemous("chicken")
        assert not world.is_polysemous("dog")
        assert world.polysemous_instances() == frozenset({"chicken"})

    def test_exclusive_cross_domain(self):
        assert _tiny_world().exclusive("animal", "food")

    def test_domains_of(self):
        world = _tiny_world()
        assert world.domains_of("chicken") == frozenset({"animals", "foods"})
        assert world.domains_of("nope") == frozenset()


class TestTyping:
    def test_coarse_type_uses_primary_sense(self):
        world = _tiny_world()
        assert world.coarse_type_of("chicken") is EntityType.MISC

    def test_expected_type(self):
        assert _tiny_world().expected_type("animal") is EntityType.MISC

    def test_gazetteer_covers_all_instances(self):
        world = _tiny_world()
        gazetteer = world.gazetteer()
        assert set(gazetteer) == {"dog", "pork", "chicken"}


class TestValidation:
    def test_concept_with_unknown_member_rejected(self):
        domains = [Domain("animals")]
        concepts = [ConceptSpec("animal", "animals", ("ghost",))]
        with pytest.raises(WorldError):
            World(domains, concepts, [])

    def test_concept_with_unknown_domain_rejected(self):
        concepts = [ConceptSpec("animal", "nowhere", ())]
        with pytest.raises(WorldError):
            World([], concepts, [])

    def test_sense_concept_domain_mismatch_rejected(self):
        domains = [Domain("animals"), Domain("foods")]
        concepts = [ConceptSpec("animal", "animals", ("dog",))]
        instances = [
            InstanceSpec("dog", (Sense("foods", frozenset({"animal"})),))
        ]
        with pytest.raises(WorldError):
            World(domains, concepts, instances)

    def test_unknown_partner_rejected(self):
        domains = [Domain("animals")]
        concepts = [ConceptSpec("animal", "animals", (), partners=("ghost",))]
        with pytest.raises(WorldError):
            World(domains, concepts, [])
