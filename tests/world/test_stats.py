"""Tests for world statistics (separate from presets)."""

from __future__ import annotations

from repro.nlp.types import EntityType
from repro.world import WorldBuilder, world_stats


def _world():
    builder = WorldBuilder(seed=1)
    builder.add_domain("a", EntityType.MISC)
    builder.add_domain("b", EntityType.MISC)
    builder.add_concept("c1", "a", size=10)
    builder.add_concept("c2", "b", size=8)
    builder.add_bridges("c1", "c2", count=2)
    builder.set_partners("c2", ["c1"])
    return builder.build()


class TestWorldStats:
    def test_counts(self):
        stats = world_stats(_world())
        assert stats.num_domains == 2
        assert stats.num_concepts == 2
        assert stats.num_instances == 18
        assert stats.num_polysemous == 2
        assert stats.polysemy_rate == 2 / 18

    def test_concept_rows(self):
        stats = world_stats(_world())
        by_name = {row.name: row for row in stats.concepts}
        assert by_name["c1"].size == 10
        assert by_name["c2"].size == 10  # 8 + 2 bridges
        assert by_name["c2"].polysemous_members == 2
        assert by_name["c2"].partners == ("c1",)
        assert by_name["c2"].polysemy_rate == 0.2

    def test_empty_world(self):
        from repro.world.taxonomy import World

        stats = world_stats(World([], [], []))
        assert stats.polysemy_rate == 0.0
        assert stats.concepts == ()
