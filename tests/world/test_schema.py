"""Tests for world schema value objects."""

from __future__ import annotations

import pytest

from repro.nlp.types import EntityType
from repro.world.schema import ConceptSpec, Domain, InstanceSpec, Sense


class TestDomain:
    def test_requires_name(self):
        with pytest.raises(ValueError):
            Domain(name="")

    def test_default_coarse_type(self):
        assert Domain("animals").coarse_type is EntityType.MISC


class TestSense:
    def test_requires_concepts(self):
        with pytest.raises(ValueError):
            Sense(domain="animals", concepts=frozenset())


class TestInstanceSpec:
    def test_primary_domain_is_first_sense(self):
        spec = InstanceSpec(
            "chicken",
            (
                Sense("animals", frozenset({"animal"})),
                Sense("foods", frozenset({"food"})),
            ),
        )
        assert spec.primary_domain == "animals"
        assert spec.is_polysemous
        assert spec.concepts() == frozenset({"animal", "food"})

    def test_monosemous(self):
        spec = InstanceSpec("dog", (Sense("animals", frozenset({"animal"})),))
        assert not spec.is_polysemous

    def test_requires_senses(self):
        with pytest.raises(ValueError):
            InstanceSpec("dog", ())

    def test_duplicate_sense_domains_rejected(self):
        sense = Sense("animals", frozenset({"animal"}))
        with pytest.raises(ValueError):
            InstanceSpec("dog", (sense, sense))

    def test_nonpositive_popularity_rejected(self):
        with pytest.raises(ValueError):
            InstanceSpec(
                "dog", (Sense("animals", frozenset({"animal"})),), popularity=0
            )


class TestConceptSpec:
    def test_size(self):
        spec = ConceptSpec("animal", "animals", ("dog", "cat"))
        assert spec.size == 2

    def test_duplicate_members_rejected(self):
        with pytest.raises(ValueError):
            ConceptSpec("animal", "animals", ("dog", "dog"))

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError):
            ConceptSpec("", "animals", ())

    def test_nonpositive_popularity_rejected(self):
        with pytest.raises(ValueError):
            ConceptSpec("animal", "animals", (), popularity=0)
