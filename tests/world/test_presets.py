"""Tests for the preset worlds."""

from __future__ import annotations

import pytest

from repro.world import motivating_example_world, paper_world, toy_world, world_stats


class TestPaperWorld:
    def test_has_twenty_targets(self, small_paper_preset):
        assert len(small_paper_preset.target_concepts) == 20

    def test_targets_exist_and_have_profiles(self, small_paper_preset):
        for name in small_paper_preset.target_concepts:
            assert name in small_paper_preset.world
            assert small_paper_preset.profile_for(name) is not None

    def test_every_target_has_cross_domain_partner(self, small_paper_preset):
        world = small_paper_preset.world
        for name in small_paper_preset.target_concepts:
            partners = world.concept(name).partners
            assert partners, f"{name} has no drift source"
            for partner in partners:
                assert world.exclusive(name, partner)

    def test_bridges_exist_for_targets(self, small_paper_preset):
        world = small_paper_preset.world
        bridged = 0
        for name in small_paper_preset.target_concepts:
            for partner in world.concept(name).partners:
                if world.members(name) & world.members(partner):
                    bridged += 1
                    break
        assert bridged >= 18  # nearly every target has a polysemy bridge

    def test_aliases_are_highly_overlapping(self, small_paper_preset):
        world = small_paper_preset.world
        nation = world.members("nation")
        country = world.members("country")
        assert len(nation & country) / len(nation) > 0.7

    def test_scale_changes_size(self):
        small = paper_world(seed=3, scale=0.3).world
        large = paper_world(seed=3, scale=1.0).world
        assert len(large.instances) > len(small.instances)

    def test_bad_scale_rejected(self):
        with pytest.raises(ValueError):
            paper_world(scale=0)

    def test_deterministic(self):
        a = paper_world(seed=5, scale=0.3)
        b = paper_world(seed=5, scale=0.3)
        assert a.world.members("animal") == b.world.members("animal")


class TestToyWorld:
    def test_structure(self, toy_preset):
        world = toy_preset.world
        assert world.exclusive("animal", "food")
        assert world.members("animal") & world.members("food")
        assert world.concept("animal").partners == ("food",)

    def test_bridge_count_parameter(self):
        preset = toy_world(seed=7, bridges=5)
        world = preset.world
        assert len(world.members("animal") & world.members("food")) == 5


class TestMotivatingExampleWorld:
    def test_chicken_is_polysemous(self, motivating_preset):
        world = motivating_preset.world
        assert world.is_polysemous("chicken")
        assert world.concepts_of("chicken") == frozenset({"animal", "food"})

    def test_new_york_is_city_only(self, motivating_preset):
        world = motivating_preset.world
        assert world.is_member("city", "new york")
        assert not world.is_member("country", "new york")

    def test_pork_is_food_only(self, motivating_preset):
        world = motivating_preset.world
        assert world.concepts_of("pork") == frozenset({"food"})


class TestWorldStats:
    def test_counts(self, toy_preset):
        stats = world_stats(toy_preset.world)
        assert stats.num_concepts == len(toy_preset.world.concepts)
        assert stats.num_instances == len(toy_preset.world.instances)
        assert 0 < stats.polysemy_rate < 1

    def test_concept_rows(self, toy_preset):
        stats = world_stats(toy_preset.world)
        by_name = {row.name: row for row in stats.concepts}
        assert by_name["animal"].polysemous_members >= 3
        assert by_name["animal"].polysemy_rate > 0
