"""Tests for the three ranking models."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import RankingError
from repro.kb import IsAPair, KnowledgeBase
from repro.ranking import (
    RANKERS,
    FrequencyRanker,
    PageRankRanker,
    RandomWalkRanker,
    get_ranker,
)


def _drift_kb(core_repeats: int = 3):
    """Core animals with repeated evidence; pork dragged in by chicken."""
    kb = KnowledgeBase()
    for i in range(core_repeats):
        kb.add_extraction(i, "animal", ("dog", "cat", "chicken"), iteration=1)
    chicken = IsAPair("animal", "chicken")
    kb.add_extraction(
        100, "animal", ("pork", "chicken"), triggers=(chicken,), iteration=2
    )
    pork = IsAPair("animal", "pork")
    kb.add_extraction(
        101, "animal", ("ham", "pork"), triggers=(pork,), iteration=3
    )
    return kb


class TestFrequencyRanker:
    def test_scores_proportional_to_counts(self):
        kb = _drift_kb()
        scores = FrequencyRanker().score(kb, "animal")
        assert scores["dog"] == scores["cat"] == scores["chicken"]
        assert scores["dog"] > scores["pork"] > 0

    def test_normalised(self):
        scores = FrequencyRanker().score(_drift_kb(), "animal")
        assert sum(scores.values()) == pytest.approx(1.0)

    def test_empty_concept(self):
        assert FrequencyRanker().score(KnowledgeBase(), "animal") == {}


class TestRandomWalkRanker:
    def test_core_outranks_drift(self):
        scores = RandomWalkRanker().score(_drift_kb(), "animal")
        assert scores["dog"] > scores["pork"]
        assert scores["pork"] > scores["ham"]  # deeper drift, lower score

    def test_probability_distribution(self):
        scores = RandomWalkRanker().score(_drift_kb(), "animal")
        assert sum(scores.values()) == pytest.approx(1.0, abs=1e-6)
        assert all(v >= 0 for v in scores.values())

    def test_drift_chain_holds_less_than_core_total(self):
        # The drift chain can hold at most the walk mass that leaks out of
        # the core through the single chicken bridge.
        scores = RandomWalkRanker().score(_drift_kb(core_repeats=5), "animal")
        core_mass = scores["dog"] + scores["cat"] + scores["chicken"]
        drift_mass = scores["pork"] + scores["ham"]
        assert drift_mass < core_mass

    def test_bad_restart_probability(self):
        with pytest.raises(ValueError):
            RandomWalkRanker(restart_probability=1.5)

    def test_frequent_error_scores_below_rare_core(self):
        # The paper's argument for random walk over frequency: a drifting
        # error can be *frequent* yet still poorly connected to the core.
        kb = KnowledgeBase()
        kb.add_extraction(0, "animal", ("dog", "chicken"), iteration=1)
        kb.add_extraction(1, "animal", ("rare bird",), iteration=1)
        chicken = IsAPair("animal", "chicken")
        for sid in range(10, 16):  # pork extracted from many sentences
            kb.add_extraction(
                sid, "animal", ("pork",), triggers=(chicken,), iteration=2
            )
        frequency = FrequencyRanker().score(kb, "animal")
        walk = RandomWalkRanker().score(kb, "animal")
        assert frequency["pork"] > frequency["rare bird"]
        assert walk["rare bird"] > 0
        # pork's score is bounded by the leak through chicken
        assert walk["pork"] < walk["dog"]


class TestPageRankRanker:
    def test_distribution(self):
        scores = PageRankRanker().score(_drift_kb(), "animal")
        assert sum(scores.values()) == pytest.approx(1.0, abs=1e-6)

    def test_isolated_nodes_get_uniform_share(self):
        kb = KnowledgeBase()
        kb.add_extraction(0, "animal", ("dog", "cat"), iteration=1)
        scores = PageRankRanker().score(kb, "animal")
        assert scores["dog"] == pytest.approx(scores["cat"])

    def test_bad_teleport(self):
        with pytest.raises(ValueError):
            PageRankRanker(teleport=0.0)


class TestRegistry:
    def test_all_models_registered(self):
        assert {"frequency", "pagerank", "random_walk"} <= set(RANKERS)

    def test_get_ranker(self):
        assert isinstance(get_ranker("frequency"), FrequencyRanker)

    def test_unknown_ranker(self):
        with pytest.raises(RankingError):
            get_ranker("bogus")

    def test_score_all(self):
        kb = _drift_kb()
        scores = FrequencyRanker().score_all(kb)
        assert set(scores) == {"animal"}


class TestRandomWalkProperties:
    @given(st.integers(min_value=1, max_value=6))
    @settings(max_examples=10, deadline=None)
    def test_distribution_property(self, repeats):
        scores = RandomWalkRanker().score(_drift_kb(repeats), "animal")
        total = sum(scores.values())
        assert np.isclose(total, 1.0, atol=1e-6)
