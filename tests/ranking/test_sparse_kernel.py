"""Equivalence tests for the sparse RWR kernel (dense path as oracle)."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.kb import IsAPair, KnowledgeBase
from repro.ranking import RandomWalkRanker
from repro.ranking.graph import ConceptGraph
from repro.ranking.random_walk import (
    _random_walk_scores_union,
    random_walk_scores,
    random_walk_scores_dense,
)


@st.composite
def trigger_graphs(draw):
    """Random trigger graphs: arbitrary edges, core mass on a node subset."""
    n = draw(st.integers(min_value=1, max_value=10))
    nodes = tuple(f"i{k}" for k in range(n))
    edges: dict[int, dict[int, float]] = {}
    for _ in range(draw(st.integers(min_value=0, max_value=2 * n))):
        source = draw(st.integers(min_value=0, max_value=n - 1))
        target = draw(st.integers(min_value=0, max_value=n - 1))
        weight = draw(
            st.floats(min_value=0.25, max_value=8.0, allow_nan=False)
        )
        edges.setdefault(source, {})[target] = weight
    restart = [
        float(draw(st.integers(min_value=0, max_value=3))) for _ in range(n)
    ]
    return ConceptGraph.from_edge_dict("concept", nodes, edges, restart)


class TestSparseMatchesDense:
    @given(trigger_graphs())
    @settings(max_examples=60, deadline=None)
    def test_sparse_within_1e9_of_dense_oracle(self, graph):
        sparse_scores = random_walk_scores(graph)
        dense_scores = random_walk_scores_dense(graph)
        assert set(sparse_scores) == set(dense_scores)
        for name, value in sparse_scores.items():
            assert abs(value - dense_scores[name]) <= 1e-9

    @given(trigger_graphs())
    @settings(max_examples=30, deadline=None)
    def test_union_solo_matches_sparse(self, graph):
        (solo,) = _random_walk_scores_union(
            [graph], restart_probability=0.15, max_iterations=100,
            tolerance=1e-12,
        )
        reference = random_walk_scores(graph)
        for name, value in solo.items():
            assert abs(value - reference[name]) <= 1e-9

    @given(st.lists(trigger_graphs(), min_size=1, max_size=5))
    @settings(max_examples=20, deadline=None)
    def test_batch_solve_is_blockwise_exact(self, graphs):
        # A graph solved inside any batch must be *bit-identical* to the
        # same graph solved alone — the score cache depends on it.
        batch = _random_walk_scores_union(
            graphs, restart_probability=0.15, max_iterations=100,
            tolerance=1e-12,
        )
        for graph, scores in zip(graphs, batch):
            (solo,) = _random_walk_scores_union(
                [graph], restart_probability=0.15, max_iterations=100,
                tolerance=1e-12,
            )
            assert scores == solo


def _many_concept_kb() -> KnowledgeBase:
    kb = KnowledgeBase()
    for c in range(6):
        concept = f"concept{c}"
        core = tuple(f"c{c}_core{i}" for i in range(3))
        kb.add_extraction(c * 10, concept, core, iteration=1)
        trigger = IsAPair(concept, core[0])
        kb.add_extraction(
            c * 10 + 1, concept, (f"c{c}_drift", core[0]),
            triggers=(trigger,), iteration=2,
        )
    return kb


class TestWorkersFanOut:
    def test_worker_results_match_serial(self):
        kb = _many_concept_kb()
        serial = RandomWalkRanker(workers=1).score_all(kb)
        fanned = RandomWalkRanker(workers=3).score_all(kb)
        assert serial == fanned

    def test_bad_workers(self):
        import pytest

        with pytest.raises(ValueError):
            RandomWalkRanker(workers=0)


class TestScoreCache:
    def test_untouched_concepts_reuse_cached_scores(self):
        kb = _many_concept_kb()
        ranker = RandomWalkRanker(cache=True)
        first = ranker.score_all(kb)
        kb.remove_pair(IsAPair("concept0", "c0_drift"))
        second = ranker.score_all(kb)
        # concept0 was touched: recomputed (and the drift node is gone).
        assert "c0_drift" not in second["concept0"]
        # every other concept's table is the cached object itself
        for c in range(1, 6):
            assert second[f"concept{c}"] is first[f"concept{c}"]

    def test_cache_disabled_recomputes_identically(self):
        kb = _many_concept_kb()
        cached = RandomWalkRanker(cache=True)
        uncached = RandomWalkRanker(cache=False)
        assert cached.score_all(kb) == uncached.score_all(kb)
        kb.remove_pair(IsAPair("concept3", "c3_drift"))
        assert cached.score_all(kb) == uncached.score_all(kb)
