"""Tests for per-concept trigger graphs."""

from __future__ import annotations

from repro.kb import IsAPair, KnowledgeBase
from repro.ranking import build_concept_graph


def _kb():
    kb = KnowledgeBase()
    kb.add_extraction(0, "animal", ("dog", "chicken"), iteration=1)
    kb.add_extraction(1, "animal", ("dog",), iteration=1)
    chicken = IsAPair("animal", "chicken")
    kb.add_extraction(
        2, "animal", ("pork", "beef", "chicken"), triggers=(chicken,),
        iteration=2,
    )
    return kb


class TestBuildConceptGraph:
    def test_nodes_are_sorted_instances(self):
        graph = build_concept_graph(_kb(), "animal")
        assert graph.nodes == ("beef", "chicken", "dog", "pork")

    def test_edges_from_trigger_to_co_instances(self):
        graph = build_concept_graph(_kb(), "animal")
        chicken = graph.index_of("chicken")
        targets = {
            graph.nodes[t]: w for t, w in graph.edges[chicken].items()
        }
        assert targets == {"pork": 1.0, "beef": 1.0}

    def test_no_self_edges(self):
        graph = build_concept_graph(_kb(), "animal")
        for source, row in graph.edges.items():
            assert source not in row

    def test_restart_mass_on_core_only(self):
        graph = build_concept_graph(_kb(), "animal")
        restart = dict(zip(graph.nodes, graph.restart))
        assert restart["dog"] == 2.0
        assert restart["chicken"] == 1.0
        assert restart["pork"] == 0.0

    def test_inactive_records_excluded(self):
        kb = _kb()
        record = next(r for r in kb.records() if r.iteration == 2)
        kb.deactivate_record(record.rid)
        graph = build_concept_graph(kb, "animal")
        assert graph.total_edge_weight() == 0.0

    def test_index_of_missing(self):
        graph = build_concept_graph(_kb(), "animal")
        assert graph.index_of("ghost") is None

    def test_empty_concept(self):
        graph = build_concept_graph(KnowledgeBase(), "animal")
        assert graph.size == 0
