"""Shared fixtures.

Heavy artefacts (worlds, corpora, extraction runs) are session-scoped: they
are deterministic, read-only in tests, and expensive enough that rebuilding
them per test would dominate suite runtime.
"""

from __future__ import annotations

import pytest

from repro.config import ConceptProfile, CorpusConfig, ExtractionConfig
from repro.corpus import generate_corpus
from repro.extraction import SemanticIterativeExtractor
from repro.world import motivating_example_world, paper_world, toy_world


@pytest.fixture(scope="session")
def toy_preset():
    return toy_world(seed=7)


@pytest.fixture(scope="session")
def toy_corpus(toy_preset):
    config = CorpusConfig(
        num_sentences=1500,
        profiles=toy_preset.profiles,
        default_profile=ConceptProfile(ambiguous_rate=0.5),
    )
    return generate_corpus(toy_preset.world, config, seed=11)


@pytest.fixture(scope="session")
def toy_extraction(toy_corpus):
    extractor = SemanticIterativeExtractor(ExtractionConfig(stream_chunks=4))
    return extractor.run(toy_corpus)


@pytest.fixture(scope="session")
def small_paper_preset():
    return paper_world(seed=3, scale=0.5)


@pytest.fixture(scope="session")
def motivating_preset():
    return motivating_example_world()
