"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_run_defaults(self):
        args = build_parser().parse_args(["run", "table1"])
        assert args.experiment == "table1"
        assert args.scale == 4.0
        assert args.sentences == 24_000

    def test_run_overrides(self):
        args = build_parser().parse_args(
            ["run", "figure4", "--scale", "2", "--sentences", "5000",
             "--seed", "7"]
        )
        assert args.scale == 2.0
        assert args.sentences == 5000
        assert args.seed == 7

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "table9"])

    def test_command_required(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestIngestParser:
    def test_defaults(self):
        args = build_parser().parse_args(["ingest"])
        assert args.corpus is None
        assert args.batch_size == 500
        assert args.staleness == 5000
        assert args.drift_threshold == 0.05
        assert args.checkpoint_dir is None
        assert args.checkpoint_every == 1
        assert not args.resume

    def test_overrides(self):
        args = build_parser().parse_args(
            ["ingest", "corpus.jsonl", "--batch-size", "200",
             "--staleness", "-1", "--drift-threshold", "0.2",
             "--checkpoint-dir", "state", "--checkpoint-every", "3",
             "--resume", "--scale", "0.5", "--sentences", "1000",
             "--seed", "9"]
        )
        assert args.corpus == "corpus.jsonl"
        assert args.batch_size == 200
        assert args.staleness == -1
        assert args.drift_threshold == 0.2
        assert args.checkpoint_dir == "state"
        assert args.checkpoint_every == 3
        assert args.resume
        assert args.scale == 0.5
        assert args.sentences == 1000
        assert args.seed == 9


class TestMain:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "table3" in out
        assert "figure5c" in out

    def test_run_small_experiment(self, capsys):
        code = main(
            ["run", "figure4", "--scale", "0.5", "--sentences", "2000"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Fig. 4" in out
        assert "finished in" in out

    def test_ingest_resume_requires_checkpoint_dir(self, capsys):
        assert main(["ingest", "--resume"]) == 2
        assert "--checkpoint-dir" in capsys.readouterr().err

    def test_ingest_synthetic_end_to_end(self, capsys, tmp_path):
        ckpt = tmp_path / "state"
        argv = ["ingest", "--scale", "0.5", "--sentences", "1200",
                "--batch-size", "400", "--staleness", "700",
                "--drift-threshold", "-1",
                "--checkpoint-dir", str(ckpt)]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "batch 0:" in out
        assert "cleaned (staleness)" in out
        assert (ckpt / "CURRENT").exists()
        # Resuming after completion skips every batch and converges.
        assert main(argv + ["--resume"]) == 0
        out = capsys.readouterr().out
        assert "resumed:" in out

    def test_ingest_corpus_file(self, capsys, tmp_path):
        from repro.experiments.pipeline import Pipeline, experiment_config
        from repro.world.presets import paper_world

        preset = paper_world(seed=20140324, scale=0.5)
        config = experiment_config(num_sentences=800,
                                   profiles=preset.profiles)
        corpus = Pipeline(preset=preset, config=config).corpus()
        path = tmp_path / "corpus.jsonl"
        corpus.dump_jsonl(path)
        code = main(
            ["ingest", str(path), "--scale", "0.5", "--batch-size", "400",
             "--staleness", "-1", "--drift-threshold", "-1"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "batch 0: +400 sentences" in out
        assert '"cleanings": 0' in out

    def test_run_trace_exports_span_tree(self, capsys, tmp_path):
        from repro.runtime.tracing import read_trace

        trace = tmp_path / "trace.jsonl"
        code = main(
            ["run", "figure4", "--scale", "0.5", "--sentences", "2000",
             "--trace", str(trace)]
        )
        assert code == 0
        capsys.readouterr()
        records = read_trace(trace)
        assert records[0]["kind"] == "trace"
        names = {r["name"] for r in records if r["kind"] == "span"}
        assert {"corpus.generate", "extract", "extract.iteration"} <= names

    def test_ingest_trace_exports_span_tree(self, capsys, tmp_path):
        from repro.runtime.tracing import read_trace

        trace = tmp_path / "trace.jsonl"
        code = main(
            ["ingest", "--scale", "0.5", "--sentences", "800",
             "--batch-size", "400", "--staleness", "-1",
             "--drift-threshold", "-1", "--trace", str(trace)]
        )
        assert code == 0
        capsys.readouterr()
        spans = [r for r in read_trace(trace) if r["kind"] == "span"]
        batches = [s for s in spans if s["name"] == "ingest.batch"]
        assert len(batches) >= 2
        assert any(
            e["event"] == "BatchIngested" for s in batches for e in s["events"]
        )

    def test_output_files_written(self, capsys, tmp_path):
        import json

        code = main(
            ["run", "figure4", "--scale", "0.5", "--sentences", "2000",
             "--output", str(tmp_path / "results")]
        )
        assert code == 0
        text = (tmp_path / "results" / "figure4.txt").read_text()
        assert "Fig. 4" in text
        payload = json.loads(
            (tmp_path / "results" / "figure4.json").read_text()
        )
        assert payload["name"] == "figure4"
        assert "bands" in payload["data"]
