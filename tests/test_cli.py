"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_run_defaults(self):
        args = build_parser().parse_args(["run", "table1"])
        assert args.experiment == "table1"
        assert args.scale == 4.0
        assert args.sentences == 24_000

    def test_run_overrides(self):
        args = build_parser().parse_args(
            ["run", "figure4", "--scale", "2", "--sentences", "5000",
             "--seed", "7"]
        )
        assert args.scale == 2.0
        assert args.sentences == 5000
        assert args.seed == 7

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "table9"])

    def test_command_required(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestMain:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "table3" in out
        assert "figure5c" in out

    def test_run_small_experiment(self, capsys):
        code = main(
            ["run", "figure4", "--scale", "0.5", "--sentences", "2000"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Fig. 4" in out
        assert "finished in" in out

    def test_output_files_written(self, capsys, tmp_path):
        import json

        code = main(
            ["run", "figure4", "--scale", "0.5", "--sentences", "2000",
             "--output", str(tmp_path / "results")]
        )
        assert code == 0
        text = (tmp_path / "results" / "figure4.txt").read_text()
        assert "Fig. 4" in text
        payload = json.loads(
            (tmp_path / "results" / "figure4.json").read_text()
        )
        assert payload["name"] == "figure4"
        assert "bands" in payload["data"]
