"""Tests for deterministic RNG plumbing."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.rng import DEFAULT_SEED, RandomStreams, generator_from


class TestGeneratorFrom:
    def test_none_uses_default_seed(self):
        a = generator_from(None)
        b = np.random.default_rng(DEFAULT_SEED)
        assert a.integers(0, 1 << 30) == b.integers(0, 1 << 30)

    def test_int_seed(self):
        a = generator_from(5)
        b = generator_from(5)
        assert a.random() == b.random()

    def test_generator_passthrough(self):
        rng = np.random.default_rng(1)
        assert generator_from(rng) is rng


class TestRandomStreams:
    def test_same_name_same_stream(self):
        streams = RandomStreams(seed=42)
        a = streams.stream("corpus").random(5)
        b = streams.stream("corpus").random(5)
        assert np.array_equal(a, b)

    def test_different_names_differ(self):
        streams = RandomStreams(seed=42)
        a = streams.stream("corpus").random(5)
        b = streams.stream("noise").random(5)
        assert not np.array_equal(a, b)

    def test_different_seeds_differ(self):
        a = RandomStreams(seed=1).stream("x").random(5)
        b = RandomStreams(seed=2).stream("x").random(5)
        assert not np.array_equal(a, b)

    def test_spawn_is_deterministic(self):
        a = RandomStreams(seed=9).spawn("child")
        b = RandomStreams(seed=9).spawn("child")
        assert a.seed == b.seed

    def test_non_int_seed_rejected(self):
        with pytest.raises(TypeError):
            RandomStreams(seed="nope")  # type: ignore[arg-type]

    @given(st.integers(min_value=0, max_value=2**31 - 1), st.text(min_size=1, max_size=20))
    def test_stream_reproducible_property(self, seed, name):
        first = RandomStreams(seed).stream(name).integers(0, 1 << 30)
        second = RandomStreams(seed).stream(name).integers(0, 1 << 30)
        assert first == second
