"""Validation tests for configuration dataclasses."""

from __future__ import annotations

import pytest

from repro.config import (
    CleaningConfig,
    ConceptProfile,
    CorpusConfig,
    DetectorConfig,
    ExtractionConfig,
    LabelingConfig,
    PipelineConfig,
    SimilarityConfig,
)


class TestConceptProfile:
    def test_defaults_valid(self):
        profile = ConceptProfile()
        assert 0 <= profile.ambiguous_rate <= 1

    @pytest.mark.parametrize(
        "field", ["ambiguous_rate", "drift_rate", "bridge_rate",
                  "false_fact_rate", "typo_rate"],
    )
    def test_rates_bounded(self, field):
        with pytest.raises(ValueError):
            ConceptProfile(**{field: 1.5})
        with pytest.raises(ValueError):
            ConceptProfile(**{field: -0.1})

    def test_negative_share_rejected(self):
        with pytest.raises(ValueError):
            ConceptProfile(sentence_share=-1)

    def test_scaled_returns_copy(self):
        profile = ConceptProfile()
        changed = profile.scaled(ambiguous_rate=0.9)
        assert changed.ambiguous_rate == 0.9
        assert profile.ambiguous_rate != 0.9


class TestCorpusConfig:
    def test_profile_fallback(self):
        config = CorpusConfig(profiles={"animal": ConceptProfile(drift_rate=0.9)})
        assert config.profile_for("animal").drift_rate == 0.9
        assert config.profile_for("other") == config.default_profile

    def test_rejects_zero_sentences(self):
        with pytest.raises(ValueError):
            CorpusConfig(num_sentences=0)

    def test_rejects_bad_instance_bounds(self):
        with pytest.raises(ValueError):
            CorpusConfig(min_instances_per_sentence=5, max_instances_per_sentence=3)
        with pytest.raises(ValueError):
            CorpusConfig(min_instances_per_sentence=1)

    def test_rejects_bad_tail_settings(self):
        with pytest.raises(ValueError):
            CorpusConfig(tail_bias_rate=2.0)
        with pytest.raises(ValueError):
            CorpusConfig(tail_fraction=0.0)


class TestExtractionConfig:
    def test_rejects_unknown_policy(self):
        with pytest.raises(ValueError):
            ExtractionConfig(policy="bogus")

    def test_rejects_bad_bounds(self):
        with pytest.raises(ValueError):
            ExtractionConfig(max_iterations=0)
        with pytest.raises(ValueError):
            ExtractionConfig(min_evidence=0)
        with pytest.raises(ValueError):
            ExtractionConfig(stream_chunks=0)


class TestSimilarityConfig:
    def test_threshold_ordering_enforced(self):
        with pytest.raises(ValueError):
            SimilarityConfig(exclusive_threshold=0.5, similar_threshold=0.1)

    def test_min_core_size(self):
        with pytest.raises(ValueError):
            SimilarityConfig(min_core_size=0)


class TestOtherConfigs:
    def test_labeling_threshold_nonnegative(self):
        with pytest.raises(ValueError):
            LabelingConfig(evidence_threshold_k=-1)

    def test_detector_validation(self):
        with pytest.raises(ValueError):
            DetectorConfig(kpca_components=0)
        with pytest.raises(ValueError):
            DetectorConfig(lam=-1)
        with pytest.raises(ValueError):
            DetectorConfig(training_iterations=0)

    def test_cleaning_rounds(self):
        with pytest.raises(ValueError):
            CleaningConfig(max_cleaning_rounds=0)

    def test_pipeline_defaults_compose(self):
        config = PipelineConfig()
        assert config.corpus.num_sentences > 0
        assert config.extraction.max_iterations >= 1
