"""Tests for the DP-based cleaner on a hand-built drift scenario."""

from __future__ import annotations

from repro.cleaning import DPCleaner
from repro.config import CleaningConfig
from repro.corpus.corpus import Corpus
from repro.corpus.sentence import Sentence
from repro.extraction import SemanticIterativeExtractor
from repro.kb import IsAPair
from repro.labeling import DPLabel


def _sentence(sid, concepts, instances):
    return Sentence(sid=sid, surface=f"s{sid}", concepts=concepts,
                    instances=instances)


def _corpus():
    """Animal core + chicken-triggered food drift + one accidental error."""
    sentences = [
        # core animals, repeated for solid evidence
        _sentence(0, ("animal",), ("dog", "cat", "chicken")),
        _sentence(1, ("animal",), ("dog", "cat", "chicken")),
        _sentence(2, ("animal",), ("dog", "horse")),
        # food core
        _sentence(3, ("food",), ("pork", "beef", "rice")),
        _sentence(4, ("food",), ("pork", "beef", "noodle")),
        _sentence(5, ("food",), ("rice", "noodle", "chicken")),
        # city core (new york's true home)
        _sentence(6, ("city",), ("new york", "boston")),
        _sentence(7, ("city",), ("new york", "tokyo")),
        # drift: resolved to animal via chicken, truth is food; 'lard' is
        # a food absent from the food core, so it lands under animal only
        _sentence(8, ("animal", "food"), ("pork", "beef", "lard", "chicken")),
        # chained drift: resolvable only once lard is known under animal
        _sentence(9, ("animal", "plant"), ("lard", "ham")),
        # accidental: new york slips under animal via dog's sentence
        _sentence(10, ("animal", "plant"), ("new york", "dog")),
    ]
    return Corpus(tuple(sentences))


def _oracle_detect(kb):
    """A perfect detector for this scenario."""
    labels: dict[str, dict[str, DPLabel]] = {}
    if kb.has_instance("animal", "chicken"):
        labels.setdefault("animal", {})["chicken"] = DPLabel.INTENTIONAL
    if kb.has_instance("animal", "new york"):
        labels.setdefault("animal", {})["new york"] = DPLabel.ACCIDENTAL
    return labels


class TestDPCleaner:
    def _clean(self, config=None):
        result = SemanticIterativeExtractor().run(_corpus())
        cleaner = DPCleaner(_oracle_detect, config or CleaningConfig())
        report = cleaner.clean(result.kb, result.corpus)
        return result.kb, report

    def test_drift_errors_removed(self):
        kb, _report = self._clean()
        assert not kb.has_instance("animal", "pork")
        assert not kb.has_instance("animal", "beef")
        assert not kb.has_instance("animal", "lard")
        assert not kb.has_instance("animal", "ham")  # cascade

    def test_accidental_dp_removed(self):
        kb, _report = self._clean()
        assert not kb.has_instance("animal", "new york")

    def test_intentional_dp_kept(self):
        kb, _report = self._clean()
        assert kb.has_instance("animal", "chicken")

    def test_correct_pairs_untouched(self):
        kb, _report = self._clean()
        for instance in ("dog", "cat", "horse"):
            assert kb.has_instance("animal", instance)
        for instance in ("pork", "beef", "rice", "noodle", "chicken"):
            assert kb.has_instance("food", instance)
        assert kb.has_instance("city", "new york")

    def test_report_contents(self):
        _kb, report = self._clean()
        assert report.method == "dp_cleaning"
        removed = report.removed_pairs
        assert IsAPair("animal", "pork") in removed
        assert IsAPair("animal", "new york") in removed
        assert report.records_rolled_back >= 2
        assert report.rounds >= 1
        assert report.removed_under("animal") >= {"pork", "beef"}

    def test_sentence_checks_recorded(self):
        _kb, report = self._clean()
        checks = [
            check
            for stats in report.details["rounds"]
            for check in stats.sentence_checks
        ]
        assert any(check.is_drifting for check in checks)

    def test_idempotent_second_run(self):
        kb, _ = self._clean()
        cleaner = DPCleaner(_oracle_detect, CleaningConfig())
        second = cleaner.clean(kb, _corpus().deduplicated())
        assert second.num_removed == 0

    def test_well_evidenced_accidental_flag_ignored(self):
        # Flag a solidly-evidenced pair as accidental: the Property 3
        # guard must protect it.
        def bad_detect(kb):
            return {"animal": {"dog": DPLabel.ACCIDENTAL}}

        result = SemanticIterativeExtractor().run(_corpus())
        cleaner = DPCleaner(bad_detect, CleaningConfig(accidental_max_count=1))
        cleaner.clean(result.kb, result.corpus)
        assert result.kb.has_instance("animal", "dog")

    def test_round_cap_respected(self):
        result = SemanticIterativeExtractor().run(_corpus())
        cleaner = DPCleaner(
            _oracle_detect, CleaningConfig(max_cleaning_rounds=1)
        )
        report = cleaner.clean(result.kb, result.corpus)
        assert report.rounds == 1


class TestScoreCacheEquivalence:
    """The mutation-versioned score cache must never change outcomes."""

    def _run(self, use_cache: bool):
        result = SemanticIterativeExtractor().run(_corpus())
        cleaner = DPCleaner(
            _oracle_detect, CleaningConfig(), use_cache=use_cache
        )
        report = cleaner.clean(result.kb, result.corpus)
        return result.kb, report

    def test_cached_and_uncached_cleaning_identical(self):
        kb_cached, report_cached = self._run(use_cache=True)
        kb_uncached, report_uncached = self._run(use_cache=False)
        assert report_cached.removed_pairs == report_uncached.removed_pairs
        assert (
            report_cached.records_rolled_back
            == report_uncached.records_rolled_back
        )
        assert report_cached.rounds == report_uncached.rounds
        assert set(kb_cached.pairs()) == set(kb_uncached.pairs())

    def test_sentence_checks_bit_identical(self):
        # Eq. 21 scores must match exactly, not just approximately: the
        # cached path re-solves only touched concepts, so any kernel
        # drift between batch sizes would surface here.
        _, report_cached = self._run(use_cache=True)
        _, report_uncached = self._run(use_cache=False)
        checks_cached = [
            check.scores
            for stats in report_cached.details["rounds"]
            for check in stats.sentence_checks
        ]
        checks_uncached = [
            check.scores
            for stats in report_uncached.details["rounds"]
            for check in stats.sentence_checks
        ]
        assert checks_cached == checks_uncached
