"""Tests for Eq. 21 sentence re-scoring, including the paper's Example 1."""

from __future__ import annotations

import pytest

from repro.cleaning import check_extraction, score_sentence
from repro.corpus.sentence import Sentence


def _sentence():
    return Sentence(
        sid=0,
        surface="food from animals such as pork, beef and chicken",
        concepts=("animal", "food"),
        instances=("pork", "beef", "chicken"),
    )


#: The exact random-walk scores from the paper's Example 1.
_PAPER_SCORES = {
    "food": {"pork": 0.15, "beef": 0.10, "chicken": 0.35},
    "animal": {"pork": 0.001, "beef": 0.002, "chicken": 0.250},
}


class TestScoreSentence:
    def test_paper_example_values(self):
        # The paper rounds per-term (0.006 + 0.019 + 0.416 = 0.441); the
        # exact sums are 0.4429 and 2.5571.
        scores = score_sentence(_sentence(), _PAPER_SCORES)
        assert scores["animal"] == pytest.approx(0.4429, abs=0.001)
        assert scores["food"] == pytest.approx(2.5571, abs=0.001)

    def test_scores_sum_to_instance_count(self):
        scores = score_sentence(_sentence(), _PAPER_SCORES)
        assert sum(scores.values()) == pytest.approx(3.0)

    def test_unknown_instances_skipped(self):
        sentence = Sentence(
            sid=1, surface="x", concepts=("animal", "food"),
            instances=("mystery",),
        )
        scores = score_sentence(sentence, _PAPER_SCORES)
        assert scores == {"animal": 0.0, "food": 0.0}


class TestCheckExtraction:
    def test_paper_example_rolls_back(self):
        check = check_extraction(
            _sentence(), "animal", "chicken", _PAPER_SCORES
        )
        assert check.is_drifting
        assert check.chosen_concept == "animal"
        assert check.trigger_instance == "chicken"

    def test_correct_extraction_kept(self):
        check = check_extraction(_sentence(), "food", "chicken", _PAPER_SCORES)
        assert not check.is_drifting

    def test_scores_recorded(self):
        check = check_extraction(
            _sentence(), "animal", "chicken", _PAPER_SCORES
        )
        recorded = dict(check.scores)
        assert set(recorded) == {"animal", "food"}
