"""Tests for the four §5.3 baseline cleaners."""

from __future__ import annotations

import pytest

from repro.cleaning import (
    MutualExclusionCleaner,
    PRDualRankCleaner,
    RWRankCleaner,
    TypeCheckingCleaner,
)
from repro.cleaning.baselines.rw_rank import learn_relative_threshold
from repro.concepts import MutualExclusionIndex
from repro.config import LabelingConfig, SimilarityConfig
from repro.corpus.corpus import Corpus
from repro.corpus.sentence import Sentence
from repro.extraction import SemanticIterativeExtractor
from repro.kb import IsAPair
from repro.labeling import DPLabel, EvidenceIndex, SeedLabel
from repro.labeling.rules import SeedLabelSet
from repro.nlp import EntityType, SimulatedNER


def _sentence(sid, concepts, instances):
    return Sentence(sid=sid, surface=f"s{sid}", concepts=concepts,
                    instances=instances)


def _extraction():
    sentences = [
        _sentence(0, ("animal",), ("dog", "cat", "chicken")),
        _sentence(1, ("animal",), ("dog", "cat", "chicken")),
        _sentence(2, ("animal",), ("dog", "horse")),
        _sentence(3, ("food",), ("pork", "beef", "rice")),
        _sentence(4, ("food",), ("pork", "beef", "noodle")),
        _sentence(5, ("city",), ("new york", "boston")),
        _sentence(6, ("city",), ("new york", "tokyo")),
        _sentence(7, ("animal", "food"), ("pork", "beef", "chicken")),
        _sentence(8, ("animal", "plant"), ("new york", "dog")),
    ]
    return SemanticIterativeExtractor().run(Corpus(tuple(sentences)))


def _similarity_config():
    return SimilarityConfig(
        exclusive_threshold=0.4, similar_threshold=0.5, min_core_size=1
    )


class TestMutualExclusionCleaner:
    def test_removes_weaker_side(self):
        result = _extraction()
        cleaner = MutualExclusionCleaner(
            lambda kb: MutualExclusionIndex(kb, _similarity_config())
        )
        report = cleaner.clean(result.kb, result.corpus)
        # pork: 2 sentences under food vs 1 under animal → animal side dies
        assert IsAPair("animal", "pork") in report.removed_pairs
        assert result.kb.has_instance("food", "pork")
        # new york: 2 under city vs 1 under animal
        assert IsAPair("animal", "new york") in report.removed_pairs
        assert result.kb.has_instance("city", "new york")

    def test_keeps_unambiguous_instances(self):
        result = _extraction()
        MutualExclusionCleaner(
            lambda kb: MutualExclusionIndex(kb, _similarity_config())
        ).clean(result.kb, result.corpus)
        assert result.kb.has_instance("animal", "dog")
        assert result.kb.has_instance("food", "rice")


class TestTypeCheckingCleaner:
    def _ner(self, accuracy=1.0):
        gazetteer = {
            "dog": EntityType.MISC, "cat": EntityType.MISC,
            "chicken": EntityType.MISC, "horse": EntityType.MISC,
            "pork": EntityType.MISC, "beef": EntityType.MISC,
            "rice": EntityType.MISC, "noodle": EntityType.MISC,
            "new york": EntityType.LOCATION, "boston": EntityType.LOCATION,
            "tokyo": EntityType.LOCATION,
        }
        return SimulatedNER(gazetteer, accuracy=accuracy)

    def test_misc_concepts_left_alone(self):
        # animal expects MISC → the checker has nothing to contradict, so
        # pork (MISC) survives: the structural low recall of TCh.
        result = _extraction()
        TypeCheckingCleaner(self._ner()).clean(result.kb, result.corpus)
        assert result.kb.has_instance("animal", "pork")

    def test_cross_type_error_caught_in_named_concept(self):
        # An ORGANIZATION-typed instance under the LOCATION-typed city
        # concept is the kind of drift a type checker can see.  (A MISC
        # tag would mean "entity not recognised" and is never evidence.)
        result = _extraction()
        kb = result.kb
        gazetteer = dict(self._ner()._gazetteer)
        gazetteer["acme corp"] = EntityType.ORGANIZATION
        ner = SimulatedNER(gazetteer, accuracy=1.0)
        trigger = IsAPair("city", "new york")
        kb.add_extraction(
            100, "city", ("acme corp", "new york"), triggers=(trigger,),
            iteration=2,
        )
        report = TypeCheckingCleaner(ner).clean(kb, result.corpus)
        assert IsAPair("city", "acme corp") in report.removed_pairs
        assert kb.has_instance("city", "boston")

    def test_misc_tagged_instance_never_flagged(self):
        result = _extraction()
        kb = result.kb
        trigger = IsAPair("city", "new york")
        kb.add_extraction(
            100, "city", ("dog", "new york"), triggers=(trigger,), iteration=2
        )
        report = TypeCheckingCleaner(self._ner()).clean(kb, result.corpus)
        assert IsAPair("city", "dog") not in report.removed_pairs

    def test_expected_type_vote(self):
        result = _extraction()
        cleaner = TypeCheckingCleaner(self._ner())
        assert cleaner.expected_type(result.kb, "city") is EntityType.LOCATION
        assert cleaner.expected_type(result.kb, "animal") is EntityType.MISC
        assert cleaner.expected_type(result.kb, "ghost") is None

    def test_bad_agreement_bound(self):
        with pytest.raises(ValueError):
            TypeCheckingCleaner(self._ner(), min_agreement=0.0)


class TestThresholdLearning:
    def test_learns_separating_multiplier(self):
        scored = {
            "animal": {"dog": 0.4, "cat": 0.4, "junk1": 0.001, "junk2": 0.002},
        }
        seeds = SeedLabelSet()
        seeds.add(SeedLabel("animal", "dog", DPLabel.NON_DP))
        seeds.add(SeedLabel("animal", "junk1", DPLabel.ACCIDENTAL))
        multiplier = learn_relative_threshold(scored, seeds)
        # dog's relative score is 1.6, junk's is 0.004
        assert 0.004 < multiplier < 1.6

    def test_no_seeds_default(self):
        assert learn_relative_threshold({}, SeedLabelSet()) == 0.5


class TestRankingCleaners:
    def _seeds(self):
        seeds = SeedLabelSet()
        seeds.add(SeedLabel("animal", "dog", DPLabel.NON_DP))
        seeds.add(SeedLabel("animal", "cat", DPLabel.NON_DP))
        seeds.add(SeedLabel("animal", "new york", DPLabel.ACCIDENTAL))
        return seeds

    def test_rw_rank_removes_low_scores(self):
        result = _extraction()
        report = RWRankCleaner(self._seeds()).clean(result.kb, result.corpus)
        assert IsAPair("animal", "new york") in report.removed_pairs
        assert result.kb.has_instance("animal", "dog")

    def test_prdualrank_runs_and_keeps_seed_pairs(self):
        result = _extraction()
        exclusion = MutualExclusionIndex(result.kb, _similarity_config())
        evidence = EvidenceIndex(
            result.kb, exclusion, LabelingConfig(evidence_threshold_k=1)
        )
        report = PRDualRankCleaner(self._seeds(), evidence).clean(
            result.kb, result.corpus
        )
        # evidenced core pairs must survive the threshold
        assert result.kb.has_instance("animal", "dog")
        assert result.kb.has_instance("food", "pork")
        assert report.method == "prdualrank"

    def test_prdualrank_validation(self):
        result = _extraction()
        exclusion = MutualExclusionIndex(result.kb, _similarity_config())
        evidence = EvidenceIndex(result.kb, exclusion)
        with pytest.raises(ValueError):
            PRDualRankCleaner(self._seeds(), evidence, iterations=0)
