"""Tests for extraction records."""

from __future__ import annotations

import pytest

from repro.kb import IsAPair
from repro.kb.record import ExtractionRecord


def _record(**overrides):
    base = dict(
        rid=0,
        sid=10,
        concept="animal",
        instances=("pork", "beef"),
        triggers=(IsAPair("animal", "chicken"),),
        iteration=2,
    )
    base.update(overrides)
    return ExtractionRecord(**base)


class TestExtractionRecord:
    def test_produced_pairs(self):
        record = _record()
        assert record.produced == (
            IsAPair("animal", "pork"),
            IsAPair("animal", "beef"),
        )

    def test_trigger_instances(self):
        assert _record().trigger_instances == ("chicken",)

    def test_root_records_have_no_triggers(self):
        record = _record(triggers=(), iteration=1)
        assert record.is_root

    def test_kill_trigger_orphans_when_last(self):
        record = _record()
        orphaned = record.kill_trigger(IsAPair("animal", "chicken"))
        assert orphaned
        assert record.alive_triggers() == ()

    def test_kill_trigger_partial(self):
        record = _record(
            triggers=(IsAPair("animal", "chicken"), IsAPair("animal", "duck"))
        )
        assert not record.kill_trigger(IsAPair("animal", "chicken"))
        assert record.alive_triggers() == (IsAPair("animal", "duck"),)

    def test_kill_unknown_trigger_is_noop(self):
        record = _record()
        assert not record.kill_trigger(IsAPair("animal", "ghost"))

    def test_root_record_never_orphaned(self):
        record = _record(triggers=(), iteration=1)
        assert not record.kill_trigger(IsAPair("animal", "chicken"))

    def test_trigger_concept_mismatch_rejected(self):
        with pytest.raises(ValueError):
            _record(triggers=(IsAPair("food", "chicken"),))

    def test_bad_iteration_rejected(self):
        with pytest.raises(ValueError):
            _record(iteration=0)
