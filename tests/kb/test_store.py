"""Tests for the knowledge base store."""

from __future__ import annotations

import pytest

from repro.errors import KnowledgeBaseError
from repro.kb import IsAPair, KnowledgeBase


def _pair(concept="animal", instance="dog"):
    return IsAPair(concept, instance)


class TestAddExtraction:
    def test_creates_pairs_with_counts(self):
        kb = KnowledgeBase()
        kb.add_extraction(0, "animal", ("dog", "cat"), iteration=1)
        assert len(kb) == 2
        assert kb.count(_pair()) == 1
        assert kb.has_instance("animal", "cat")

    def test_repeated_evidence_increments(self):
        kb = KnowledgeBase()
        kb.add_extraction(0, "animal", ("dog",), iteration=1)
        kb.add_extraction(1, "animal", ("dog",), iteration=1)
        assert kb.count(_pair()) == 2
        assert len(kb) == 1

    def test_first_iteration_sticks(self):
        kb = KnowledgeBase()
        kb.add_extraction(0, "animal", ("dog",), iteration=1)
        trigger = _pair()
        kb.add_extraction(1, "animal", ("dog", "cat"), triggers=(trigger,), iteration=3)
        assert kb.first_iteration(_pair()) == 1
        assert kb.first_iteration(_pair(instance="cat")) == 3

    def test_unknown_trigger_rejected(self):
        kb = KnowledgeBase()
        with pytest.raises(KnowledgeBaseError):
            kb.add_extraction(
                0, "animal", ("cat",), triggers=(_pair(instance="ghost"),),
                iteration=2,
            )

    def test_empty_instances_rejected(self):
        kb = KnowledgeBase()
        with pytest.raises(KnowledgeBaseError):
            kb.add_extraction(0, "animal", (), iteration=1)

    def test_trigger_concept_mismatch_rejected(self):
        kb = KnowledgeBase()
        kb.add_extraction(0, "food", ("pork",), iteration=1)
        with pytest.raises(ValueError):
            kb.add_extraction(
                1, "animal", ("cat",),
                triggers=(IsAPair("food", "pork"),), iteration=2,
            )


class TestQueries:
    def _kb(self):
        kb = KnowledgeBase()
        kb.add_extraction(0, "animal", ("dog", "chicken"), iteration=1)
        kb.add_extraction(1, "animal", ("dog",), iteration=1)
        trigger = IsAPair("animal", "chicken")
        kb.add_extraction(
            2, "animal", ("pork", "beef", "chicken"), triggers=(trigger,),
            iteration=2,
        )
        return kb

    def test_core_instances(self):
        kb = self._kb()
        assert kb.core_instances("animal") == frozenset({"dog", "chicken"})

    def test_instances_by_iteration(self):
        kb = self._kb()
        assert kb.instances_by_iteration("animal", 1) == frozenset(
            {"dog", "chicken"}
        )
        assert "pork" in kb.instances_by_iteration("animal", 2)

    def test_core_count_only_counts_iteration1_records(self):
        kb = self._kb()
        assert kb.core_count(IsAPair("animal", "chicken")) == 1
        assert kb.core_count(IsAPair("animal", "dog")) == 2
        assert kb.core_count(IsAPair("animal", "pork")) == 0

    def test_sub_instance_counts(self):
        kb = self._kb()
        subs = kb.sub_instance_counts("animal", "chicken")
        assert subs == {"pork": 1, "beef": 1}

    def test_frequency_distribution(self):
        kb = self._kb()
        freq = kb.frequency_distribution("animal")
        assert freq["dog"] == 2
        # trigger mentions are inputs, not fresh evidence
        assert freq["chicken"] == 1

    def test_core_frequency_distribution(self):
        kb = self._kb()
        core = kb.core_frequency_distribution("animal")
        assert core == {"dog": 2, "chicken": 1}

    def test_records_triggered_by(self):
        kb = self._kb()
        triggered = kb.records_triggered_by(IsAPair("animal", "chicken"))
        assert [r.sid for r in triggered] == [2]

    def test_records_for_pair(self):
        kb = self._kb()
        records = kb.records_for_pair(IsAPair("animal", "dog"))
        assert {r.sid for r in records} == {0, 1}

    def test_concepts(self):
        assert self._kb().concepts() == ["animal"]

    def test_missing_pair_queries(self):
        kb = self._kb()
        assert kb.count(IsAPair("animal", "ghost")) == 0
        with pytest.raises(KnowledgeBaseError):
            kb.first_iteration(IsAPair("animal", "ghost"))

    def test_record_lookup_missing(self):
        with pytest.raises(KnowledgeBaseError):
            KnowledgeBase().record(5)


class TestDeactivate:
    def test_deactivate_decrements(self):
        kb = KnowledgeBase()
        r0 = kb.add_extraction(0, "animal", ("dog",), iteration=1)
        kb.add_extraction(1, "animal", ("dog",), iteration=1)
        died = kb.deactivate_record(r0.rid)
        assert died == []
        assert kb.count(IsAPair("animal", "dog")) == 1

    def test_deactivate_removes_at_zero(self):
        kb = KnowledgeBase()
        r0 = kb.add_extraction(0, "animal", ("dog",), iteration=1)
        died = kb.deactivate_record(r0.rid)
        assert died == [IsAPair("animal", "dog")]
        assert IsAPair("animal", "dog") not in kb
        assert not kb.has_instance("animal", "dog")
        assert IsAPair("animal", "dog") in kb.removed_pairs()

    def test_double_deactivate_rejected(self):
        kb = KnowledgeBase()
        r0 = kb.add_extraction(0, "animal", ("dog",), iteration=1)
        kb.deactivate_record(r0.rid)
        with pytest.raises(KnowledgeBaseError):
            kb.deactivate_record(r0.rid)

    def test_readding_removed_pair_clears_removed_set(self):
        kb = KnowledgeBase()
        r0 = kb.add_extraction(0, "animal", ("dog",), iteration=1)
        kb.deactivate_record(r0.rid)
        kb.add_extraction(1, "animal", ("dog",), iteration=1)
        assert IsAPair("animal", "dog") not in kb.removed_pairs()
