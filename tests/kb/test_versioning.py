"""Tests for the mutation version counters behind the score caches."""

from __future__ import annotations

from repro.kb import IsAPair, KnowledgeBase


def _kb():
    kb = KnowledgeBase()
    kb.add_extraction(0, "animal", ("dog", "cat", "chicken"), iteration=1)
    kb.add_extraction(1, "food", ("pork", "beef"), iteration=1)
    chicken = IsAPair("animal", "chicken")
    kb.add_extraction(
        2, "animal", ("pork", "chicken"), triggers=(chicken,), iteration=2
    )
    return kb


class TestVersionCounters:
    def test_add_extraction_bumps_global_version(self):
        kb = KnowledgeBase()
        before = kb.version
        kb.add_extraction(0, "animal", ("dog",), iteration=1)
        assert kb.version > before

    def test_concept_version_tracks_only_its_concept(self):
        kb = _kb()
        animal = kb.concept_version("animal")
        food = kb.concept_version("food")
        kb.add_extraction(3, "food", ("rice",), iteration=1)
        assert kb.concept_version("animal") == animal
        assert kb.concept_version("food") > food

    def test_remove_pair_bumps_version(self):
        kb = _kb()
        animal = kb.concept_version("animal")
        kb.remove_pair(IsAPair("animal", "pork"))
        assert kb.concept_version("animal") > animal

    def test_deactivate_record_bumps_version(self):
        kb = _kb()
        animal = kb.concept_version("animal")
        kb.deactivate_record(2)
        assert kb.concept_version("animal") > animal

    def test_reads_do_not_bump(self):
        kb = _kb()
        version = kb.version
        kb.concepts()
        kb.core_counts("animal")
        kb.sub_instance_counts("animal", "chicken")
        list(kb.records_for_concept("animal"))
        assert kb.version == version

    def test_dirty_concepts_since(self):
        kb = _kb()
        mark = kb.version
        kb.remove_pair(IsAPair("food", "beef"))
        dirty = kb.dirty_concepts_since(mark)
        assert "food" in dirty
        assert "animal" not in dirty


class TestConceptsCache:
    def test_sorted_and_refreshed_on_mutation(self):
        kb = _kb()
        first = kb.concepts()
        assert first == sorted(first)
        # unchanged KB: repeat reads come from the cached tuple
        assert kb.concepts() == first
        kb.add_extraction(4, "city", ("boston",), iteration=1)
        second = kb.concepts()
        assert "city" in second
        assert second == sorted(second)
