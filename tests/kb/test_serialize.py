"""Tests for knowledge-base persistence."""

from __future__ import annotations

import json

import pytest

from repro.cleaning import DPCleaner
from repro.config import CleaningConfig
from repro.errors import KnowledgeBaseError
from repro.extraction import SemanticIterativeExtractor
from repro.kb import IsAPair, KnowledgeBase, RollbackEngine, load_kb, save_kb
from repro.kb.serialize import SCHEMA_VERSION
from repro.labeling import DPLabel


def _kb():
    kb = KnowledgeBase()
    kb.add_extraction(0, "animal", ("dog", "chicken"), iteration=1)
    kb.add_extraction(1, "food", ("pork", "beef"), iteration=1)
    chicken = IsAPair("animal", "chicken")
    kb.add_extraction(
        2, "animal", ("pork", "beef", "chicken"), triggers=(chicken,),
        iteration=2,
    )
    return kb


def _same_state(a: KnowledgeBase, b: KnowledgeBase) -> None:
    assert set(a.pairs()) == set(b.pairs())
    for pair in a.pairs():
        assert a.count(pair) == b.count(pair)
        assert a.first_iteration(pair) == b.first_iteration(pair)
    assert a.removed_pairs() == b.removed_pairs()
    a_records = {r.rid: r for r in a.records(include_inactive=True)}
    b_records = {r.rid: r for r in b.records(include_inactive=True)}
    assert set(a_records) == set(b_records)
    for rid, record in a_records.items():
        other = b_records[rid]
        assert record.active == other.active
        assert record.instances == other.instances
        assert record.triggers == other.triggers
        assert record.alive_triggers() == other.alive_triggers()


class TestRoundTrip:
    def test_plain_roundtrip(self, tmp_path):
        kb = _kb()
        path = tmp_path / "kb.jsonl"
        save_kb(kb, path)
        _same_state(kb, load_kb(path))

    def test_roundtrip_after_rollback(self, tmp_path):
        kb = _kb()
        record = next(r for r in kb.records() if r.iteration == 2)
        RollbackEngine(kb).rollback_records([record.rid])
        path = tmp_path / "kb.jsonl"
        save_kb(kb, path)
        loaded = load_kb(path)
        _same_state(kb, loaded)
        assert not loaded.has_instance("animal", "pork")

    def test_roundtrip_after_force_removal(self, tmp_path):
        kb = _kb()
        RollbackEngine(kb).rollback_pair(IsAPair("animal", "chicken"))
        path = tmp_path / "kb.jsonl"
        save_kb(kb, path)
        loaded = load_kb(path)
        _same_state(kb, loaded)
        assert not loaded.has_instance("animal", "chicken")
        assert loaded.has_instance("animal", "dog")

    def test_loaded_kb_supports_further_rollback(self, tmp_path):
        kb = _kb()
        path = tmp_path / "kb.jsonl"
        save_kb(kb, path)
        loaded = load_kb(path)
        RollbackEngine(loaded).rollback_pair(IsAPair("animal", "chicken"))
        assert not loaded.has_instance("animal", "pork")

    def test_roundtrip_after_full_cleaning(self, tmp_path, toy_extraction,
                                           toy_corpus):
        kb = toy_extraction.kb
        # a light oracle-free cleaning pass to create mixed state
        def detect(current):
            labels = {}
            for concept in current.concepts():
                for instance in list(current.instances_of(concept))[:5]:
                    pair = IsAPair(concept, instance)
                    if current.count(pair) == 1:
                        labels.setdefault(concept, {})[instance] = (
                            DPLabel.ACCIDENTAL
                        )
            return labels

        DPCleaner(detect, CleaningConfig(max_cleaning_rounds=1)).clean(
            kb, toy_corpus.deduplicated()
        )
        path = tmp_path / "kb.jsonl"
        save_kb(kb, path)
        _same_state(kb, load_kb(path))


class TestValidation:
    def test_bad_header(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text("not json\n")
        with pytest.raises(KnowledgeBaseError):
            load_kb(path)

    def test_wrong_format(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text(json.dumps({"format": "other", "version": 1}) + "\n")
        with pytest.raises(KnowledgeBaseError):
            load_kb(path)

    def test_wrong_version(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text(
            json.dumps({"format": "repro-kb", "version": 99}) + "\n"
        )
        with pytest.raises(KnowledgeBaseError):
            load_kb(path)

    def test_corrupt_record(self, tmp_path):
        kb = _kb()
        path = tmp_path / "kb.jsonl"
        save_kb(kb, path)
        content = path.read_text().splitlines()
        content[1] = "{broken"
        path.write_text("\n".join(content) + "\n")
        with pytest.raises(KnowledgeBaseError):
            load_kb(path)


class TestSchemaVersion:
    def test_header_is_stamped(self, tmp_path):
        path = tmp_path / "kb.jsonl"
        save_kb(_kb(), path)
        header = json.loads(path.read_text().splitlines()[0])
        assert header["schema_version"] == SCHEMA_VERSION

    def test_stamped_file_round_trips(self, tmp_path):
        path = tmp_path / "kb.jsonl"
        kb = _kb()
        save_kb(kb, path)
        _same_state(kb, load_kb(path))

    def test_schema_mismatch_fails_loudly(self, tmp_path):
        path = tmp_path / "kb.jsonl"
        save_kb(_kb(), path)
        lines = path.read_text().splitlines()
        header = json.loads(lines[0])
        header["schema_version"] = SCHEMA_VERSION + 1
        lines[0] = json.dumps(header)
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(KnowledgeBaseError, match="schema"):
            load_kb(path)

    def test_missing_schema_version_rejected(self, tmp_path):
        path = tmp_path / "kb.jsonl"
        save_kb(_kb(), path)
        lines = path.read_text().splitlines()
        header = json.loads(lines[0])
        del header["schema_version"]
        lines[0] = json.dumps(header)
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(KnowledgeBaseError, match="schema"):
            load_kb(path)


class TestTruncationDetection:
    def test_truncated_file_fails_loudly(self, tmp_path):
        path = tmp_path / "kb.jsonl"
        save_kb(_kb(), path)
        lines = path.read_text().splitlines()
        path.write_text("\n".join(lines[:-1]) + "\n")
        with pytest.raises(KnowledgeBaseError, match="truncated"):
            load_kb(path)

    def test_padded_file_fails_loudly(self, tmp_path):
        path = tmp_path / "kb.jsonl"
        save_kb(_kb(), path)
        lines = path.read_text().splitlines()
        path.write_text("\n".join(lines + [lines[-1]]) + "\n")
        with pytest.raises(KnowledgeBaseError):
            load_kb(path)
