"""Tests for iteration logs."""

from __future__ import annotations

from repro.kb import IterationLog


class TestIterationLog:
    def test_record_and_iterate(self):
        log = IterationLog()
        log.record(iteration=1, sentences_resolved=10, new_pairs=5, total_pairs=5)
        log.record(iteration=2, sentences_resolved=4, new_pairs=3, total_pairs=8)
        assert len(log) == 2
        assert log.iterations == 2
        assert [e.iteration for e in log] == [1, 2]

    def test_cumulative_pairs(self):
        log = IterationLog()
        log.record(1, 10, 5, 5)
        log.record(2, 4, 3, 8)
        assert log.cumulative_pairs() == [5, 8]
