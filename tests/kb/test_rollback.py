"""Tests for cascading rollback."""

from __future__ import annotations

from repro.kb import IsAPair, KnowledgeBase, RollbackEngine


def _drift_chain():
    """chicken (core) triggers pork/beef; pork triggers ham."""
    kb = KnowledgeBase()
    kb.add_extraction(0, "animal", ("dog", "chicken"), iteration=1)
    chicken = IsAPair("animal", "chicken")
    r1 = kb.add_extraction(
        1, "animal", ("pork", "beef", "chicken"), triggers=(chicken,), iteration=2
    )
    pork = IsAPair("animal", "pork")
    r2 = kb.add_extraction(
        2, "animal", ("ham", "pork"), triggers=(pork,), iteration=3
    )
    return kb, r1, r2


class TestCascade:
    def test_rolling_back_trigger_record_cascades(self):
        kb, r1, r2 = _drift_chain()
        result = RollbackEngine(kb).rollback_records([r1.rid])
        assert set(result.records_rolled_back) == {r1.rid, r2.rid}
        removed = set(result.pairs_removed)
        assert IsAPair("animal", "pork") in removed
        assert IsAPair("animal", "beef") in removed
        assert IsAPair("animal", "ham") in removed
        # chicken keeps its core evidence
        assert kb.has_instance("animal", "chicken")
        assert kb.has_instance("animal", "dog")

    def test_rollback_is_idempotent(self):
        kb, r1, _ = _drift_chain()
        engine = RollbackEngine(kb)
        engine.rollback_records([r1.rid])
        result = engine.rollback_records([r1.rid])
        assert result.num_records == 0

    def test_surviving_evidence_blocks_cascade(self):
        kb = KnowledgeBase()
        kb.add_extraction(0, "animal", ("chicken",), iteration=1)
        kb.add_extraction(1, "animal", ("pork",), iteration=1)  # core evidence
        chicken = IsAPair("animal", "chicken")
        r1 = kb.add_extraction(
            2, "animal", ("pork", "beef"), triggers=(chicken,), iteration=2
        )
        result = RollbackEngine(kb).rollback_records([r1.rid])
        # pork had independent core evidence, so it survives; beef dies.
        assert IsAPair("animal", "beef") in set(result.pairs_removed)
        assert kb.has_instance("animal", "pork")

    def test_multi_trigger_record_survives_single_trigger_loss(self):
        kb = KnowledgeBase()
        kb.add_extraction(0, "animal", ("chicken",), iteration=1)
        kb.add_extraction(1, "animal", ("duck",), iteration=1)
        kb.add_extraction(1, "animal", ("duck",), iteration=1)
        chicken = IsAPair("animal", "chicken")
        duck = IsAPair("animal", "duck")
        r = kb.add_extraction(
            2, "animal", ("goose", "chicken", "duck"),
            triggers=(chicken, duck), iteration=2,
        )
        # Remove chicken's core record: chicken pair dies, but the dependent
        # record keeps its duck trigger and must survive.
        core = kb.records_for_pair(chicken)
        core_rids = [rec.rid for rec in core if rec.iteration == 1]
        result = RollbackEngine(kb).rollback_records(core_rids)
        assert r.rid not in result.records_rolled_back
        assert kb.has_instance("animal", "goose")
        # chicken's only real evidence was the core record; the dependent
        # record merely used it as a trigger, which is not fresh evidence.
        assert kb.count(chicken) == 0


class TestRollbackPair:
    def test_rollback_pair_removes_everything_it_activated(self):
        kb, _, _ = _drift_chain()
        chicken = IsAPair("animal", "chicken")
        RollbackEngine(kb).rollback_pair(chicken)
        assert not kb.has_instance("animal", "chicken")
        assert not kb.has_instance("animal", "pork")
        assert not kb.has_instance("animal", "beef")
        assert not kb.has_instance("animal", "ham")

    def test_sibling_pairs_of_producing_sentences_survive(self):
        # Dropping the DP must not kill innocent siblings from the same
        # sentence: record 0 produced both dog and chicken.
        kb, _, _ = _drift_chain()
        RollbackEngine(kb).rollback_pair(IsAPair("animal", "chicken"))
        assert kb.has_instance("animal", "dog")

    def test_rollback_pair_counts(self):
        kb, _, _ = _drift_chain()
        result = RollbackEngine(kb).rollback_pair(IsAPair("animal", "chicken"))
        assert result.num_records == 2  # the two triggered records
        assert result.num_pairs >= 4  # chicken, pork, beef, ham

    def test_removed_pair_tracked(self):
        kb, _, _ = _drift_chain()
        RollbackEngine(kb).rollback_pair(IsAPair("animal", "chicken"))
        assert IsAPair("animal", "chicken") in kb.removed_pairs()
