"""Shared small-but-real pipeline for experiment tests.

Scale 1.0 world with a 6 k-sentence corpus: large enough for drift and
detection to behave qualitatively like the paper-scale runs, small enough
to keep the suite fast.  Session-scoped: the artifacts are read-only.
"""

from __future__ import annotations

import pytest

from repro.experiments.pipeline import Pipeline, experiment_config
from repro.world import paper_world


@pytest.fixture(scope="session")
def small_pipeline():
    preset = paper_world(seed=11, scale=1.0)
    config = experiment_config(
        num_sentences=6000, seed=11, profiles=preset.profiles
    )
    return Pipeline(preset=preset, config=config)


@pytest.fixture(scope="session")
def small_artifacts(small_pipeline):
    return small_pipeline.analyze(fit_detector=False)
