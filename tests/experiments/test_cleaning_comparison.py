"""Integration tests for Table 3 / Table 5: the headline result.

These assert the paper's *qualitative* claims, which are the contract of
the reproduction: DP cleaning must dominate the baselines jointly on
precision and recall while preserving correct knowledge.
"""

from __future__ import annotations

import pytest

from repro.experiments.table3 import run_table3
from repro.experiments.table5 import run_table5


@pytest.fixture(scope="module")
def table3(small_pipeline):
    return run_table3(small_pipeline)


class TestTable3Shape:
    def test_before_cleaning_precision_low(self, table3):
        assert table3.data["Before Cleaning"]["p_corr"] < 0.75

    def test_dp_cleaning_dominates_f1(self, table3):
        def error_f1(row):
            p, r = row["p_error"], row["r_error"]
            return 0.0 if p + r == 0 else 2 * p * r / (p + r)

        data = table3.data
        dp = error_f1(data["DP Cleaning"])
        for method in ("MEx", "TCh", "PRDual-Rank", "RW-Rank"):
            assert dp > error_f1(data[method]), method

    def test_dp_cleaning_restores_precision(self, table3):
        before = table3.data["Before Cleaning"]["p_corr"]
        after = table3.data["DP Cleaning"]["p_corr"]
        assert after > before + 0.2
        assert after > 0.85

    def test_dp_cleaning_preserves_recall(self, table3):
        assert table3.data["DP Cleaning"]["r_corr"] > 0.9

    def test_constraint_baselines_precise_but_shallow(self, table3):
        for method in ("MEx", "TCh"):
            row = table3.data[method]
            assert row["r_error"] < 0.55, method
            assert row["r_corr"] > 0.9, method

    def test_ranking_baselines_sacrifice_correct_pairs(self, table3):
        dp_r_corr = table3.data["DP Cleaning"]["r_corr"]
        assert table3.data["PRDual-Rank"]["r_corr"] < dp_r_corr


class TestTable5Shape:
    @pytest.fixture(scope="class")
    def table5(self, small_pipeline):
        return run_table5(small_pipeline)

    def test_all_targets_present(self, table5):
        assert len(table5.data) == 21  # 20 concepts + Overall

    def test_overall_consistency(self, table5):
        overall = table5.data["Overall"]
        assert overall["p_error"] > 0.8
        assert overall["r_corr"] > 0.9
        assert 0 < overall["p_stc"] <= 1.0

    def test_sentence_checks_precise(self, table5):
        overall = table5.data["Overall"]
        assert overall["p_stc"] > 0.85
        assert overall["r_stc"] > 0.3
