"""Integration tests: every table/figure runner reproduces the paper's shape."""

from __future__ import annotations

import pytest

from repro.errors import ExperimentError
from repro.experiments import experiment_names, run_experiment
from repro.experiments.figure2 import run_figure2
from repro.experiments.figure3 import run_figure3
from repro.experiments.figure4 import run_figure4
from repro.experiments.figure5 import run_figure5a, run_figure5b, run_figure5c
from repro.experiments.table1 import run_table1
from repro.experiments.table2 import run_table2
from repro.experiments.table4 import run_table4


class TestRegistry:
    def test_names(self):
        names = experiment_names()
        assert "table3" in names and "figure5a" in names
        assert "ablation_rollback" in names
        assert "threshold_sweep" in names
        assert len(names) == 15

    def test_unknown_experiment(self):
        with pytest.raises(ExperimentError):
            run_experiment("table9")


class TestTable1:
    def test_shape(self, small_pipeline):
        result = run_table1(small_pipeline)
        concepts = result.data["concepts"]
        assert len(concepts) == 21  # 20 targets + Overall
        overall = concepts["Overall"]
        assert overall["instances"] > 2000
        # drift produced a substantial overall error rate
        assert 0.2 < overall["error_rate"] < 0.7
        # DP structure: accidental DPs outnumber intentional ones
        assert overall["accidental_dps"] > overall["intentional_dps"] > 0
        assert "key u.s. export" in result.text


class TestTable2:
    def test_random_walk_wins(self, small_pipeline):
        result = run_table2(small_pipeline, ks=(25, 100))
        data = result.data
        assert data["Random Walk"]["p@25"] >= data["Frequency"]["p@25"]
        assert data["Random Walk"]["p@25"] >= data["PageRank"]["p@25"]
        assert data["Random Walk"]["p@25"] > 0.7


class TestTable4:
    def test_paper_ordering(self, small_pipeline):
        result = run_table4(small_pipeline)
        data = result.data
        multitask = data["Semi-Supervised Multi-Task"]["f1"]
        semi = data["Semi-Supervised"]["f1"]
        supervised = data["Supervised"]["f1"]
        assert multitask >= semi >= 0
        assert multitask > supervised
        assert multitask > 0.35
        for label, row in data.items():
            assert 0 <= row["precision"] <= 1
            assert 0 <= row["recall"] <= 1


class TestFigure2:
    def test_dp_leaks_error_mass(self, small_pipeline):
        result = run_figure2(small_pipeline, concept="animal")
        data = result.data
        assert data["intentional_dps"], "no intentional DP found"
        series = data["series"]
        truth_axis = set(data["axis"])
        assert truth_axis
        # AVG distribution concentrates on the concept's frequent instances
        assert sum(series["AVG"].values()) > 0


class TestFigure3:
    def test_feature_separation(self, small_pipeline):
        result = run_figure3(small_pipeline)
        data = result.data
        non_dp = data["Non-DPs"]
        accidental = data["Accidental DPs"]
        # Property 1: non-DPs trigger class-like distributions
        assert non_dp["f1"]["mean"] > accidental["f1"]["mean"]
        # Property 3: accidental DPs rest on weak evidence
        assert non_dp["f3"]["mean"] > accidental["f3"]["mean"]
        # Property 4: their sub-instances score low
        assert non_dp["f4"]["mean"] > accidental["f4"]["mean"]


class TestFigure4:
    def test_three_bands(self, small_pipeline):
        result = run_figure4(small_pipeline)
        bands = result.data["bands"]
        # exclusivity dominates, a handful of highly-similar alias pairs
        assert bands["exclusive"] > bands["irrelevant"] > 0
        assert bands["similar"] >= 4


class TestFigure5:
    def test_5a_growth_and_decay(self, small_pipeline):
        result = run_figure5a(small_pipeline)
        series = result.data["series"]
        assert len(series) >= 6
        first, last = series[0], series[-1]
        assert first["precision"] > 0.9
        assert last["precision"] < first["precision"] - 0.2
        assert last["distinct_pairs"] > 1.5 * first["distinct_pairs"]
        pair_counts = [row["distinct_pairs"] for row in series]
        assert pair_counts == sorted(pair_counts)

    def test_5b_precision_recall_tradeoff(self, small_pipeline):
        result = run_figure5b(small_pipeline, k_values=(0, 2, 4))
        series = result.data["series"]
        assert series[0]["recall"] > series[-1]["recall"]
        assert series[-1]["precision"] > 0.9
        assert all(row["precision"] > 0.8 for row in series)

    def test_5c_accuracy_stabilises(self, small_pipeline):
        result = run_figure5c(small_pipeline, iterations=8)
        accuracy = result.data["accuracy"]
        assert len(accuracy) >= 2
        assert accuracy[-1] >= accuracy[0] - 0.02  # rises or stays stable
        assert 0.3 < accuracy[-1] <= 1.0
