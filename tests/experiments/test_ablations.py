"""Tests for the ablation experiments."""

from __future__ import annotations

import pytest

from repro.experiments.ablations import (
    run_ablation_features,
    run_ablation_policy,
    run_ablation_rollback,
)


class TestFeatureAblation:
    @pytest.fixture(scope="class")
    def result(self, small_pipeline):
        return run_ablation_features(small_pipeline)

    def test_all_variants_present(self, result):
        assert set(result.data) == {
            "all features", "without f1", "without f2", "without f3",
            "without f4",
        }

    def test_dropping_a_feature_rarely_helps_much(self, result):
        full = result.data["all features"]["f1"]
        for variant, row in result.data.items():
            if variant != "all features":
                assert row["f1"] <= full + 0.1, variant

    def test_some_feature_matters(self, result):
        full = result.data["all features"]["f1"]
        drops = [
            full - row["f1"]
            for variant, row in result.data.items()
            if variant != "all features"
        ]
        assert max(drops) > 0.02  # at least one property carries signal


class TestRollbackAblation:
    @pytest.fixture(scope="class")
    def result(self, small_pipeline):
        return run_ablation_rollback(small_pipeline)

    def test_rollback_improves_error_recall(self, result):
        full = result.data["full DP cleaning"]
        drop = result.data["drop-only (no rollback)"]
        assert full["r_error"] > drop["r_error"] + 0.1

    def test_full_cleaning_more_precise_too(self, result):
        # Without the cleaner's definition-level guards and Eq. 21
        # arbitration, naive dropping is also far less precise.
        full = result.data["full DP cleaning"]
        drop = result.data["drop-only (no rollback)"]
        assert full["p_error"] > drop["p_error"]


class TestPolicyAblation:
    @pytest.fixture(scope="class")
    def result(self, small_pipeline):
        return run_ablation_policy(small_pipeline)

    def test_nearest_drifts_more(self, result):
        nearest = result.data["nearest"]
        max_evidence = result.data["max_evidence"]
        assert nearest["target_precision"] < max_evidence["target_precision"]

    def test_both_policies_extract(self, result):
        for row in result.data.values():
            assert row["pairs"] > 1000
