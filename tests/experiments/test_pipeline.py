"""Tests for the end-to-end pipeline orchestrator."""

from __future__ import annotations

from repro.labeling import DPLabel


class TestPipeline:
    def test_corpus_cached(self, small_pipeline):
        assert small_pipeline.corpus() is small_pipeline.corpus()

    def test_extractions_independent(self, small_pipeline):
        a = small_pipeline.extract()
        b = small_pipeline.extract()
        assert a.kb is not b.kb
        assert set(a.kb.pairs()) == set(b.kb.pairs())

    def test_artifacts_complete(self, small_artifacts):
        assert len(small_artifacts.kb) > 1000
        assert small_artifacts.seeds.counts()
        assert small_artifacts.scores
        assert len(small_artifacts.matrices) > 10
        assert small_artifacts.verified

    def test_analysis_concepts_exclude_junk(self, small_pipeline, small_artifacts):
        world = small_artifacts.world
        for concept in small_pipeline.analysis_concepts(small_artifacts.kb):
            assert concept in world

    def test_drift_emerged(self, small_artifacts):
        truth = small_artifacts.truth
        kb = small_artifacts.kb
        errors = sum(
            1
            for concept in small_artifacts.target_concepts
            for instance in kb.instances_of(concept)
            if truth.is_error(concept, instance)
        )
        assert errors > 200

    def test_detect_fn_returns_labels(self, small_pipeline):
        detect = small_pipeline.detect_fn()
        extraction = small_pipeline.extract()
        labels = detect(extraction.kb)
        assert labels
        flat = [l for by in labels.values() for l in by.values()]
        assert any(l is DPLabel.ACCIDENTAL for l in flat)
        assert any(l is DPLabel.NON_DP for l in flat)

    def test_ner_cached_per_accuracy(self, small_artifacts):
        a = small_artifacts.ner(0.9)
        assert a is small_artifacts.ner(0.9)
        assert a is not small_artifacts.ner(0.95)

    def test_verified_sample_is_truthful(self, small_artifacts):
        world = small_artifacts.world
        for pair in small_artifacts.verified:
            assert world.is_member(pair.concept, pair.instance)


class TestDiagnose:
    def test_known_instance(self, small_artifacts):
        kb = small_artifacts.kb
        concept = "animal"
        instance = next(iter(kb.instances_of(concept)))
        report = small_artifacts.diagnose(concept, instance)
        assert report["in_kb"]
        assert report["evidence"]["count"] >= 1
        assert len(report["features"]) == 4
        assert isinstance(report["truth"]["correct"], bool)

    def test_unknown_instance(self, small_artifacts):
        report = small_artifacts.diagnose("animal", "no-such-instance")
        assert not report["in_kb"]
        assert "evidence" not in report
        assert report["truth"]["correct"] is False
