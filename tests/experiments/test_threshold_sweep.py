"""Tests for the threshold-sweep extension experiment."""

from __future__ import annotations

import pytest

from repro.experiments.threshold_sweep import run_threshold_sweep


@pytest.fixture(scope="module")
def sweep(small_pipeline):
    return run_threshold_sweep(small_pipeline)


class TestThresholdSweep:
    def test_curve_monotone_recall(self, sweep):
        recalls = [row["r_error"] for row in sweep.data["curve"]]
        assert recalls == sorted(recalls)  # bigger threshold removes more

    def test_correct_recall_decreases(self, sweep):
        r_corr = [row["r_corr"] for row in sweep.data["curve"]]
        assert r_corr == sorted(r_corr, reverse=True)

    def test_no_threshold_dominates_dp_cleaning(self, sweep):
        # The paper's §6 point: the threshold family cannot reach the DP
        # cleaning operating point on error recall *and* correct-pair
        # retention simultaneously.
        dp = sweep.data["dp_cleaning"]
        for row in sweep.data["curve"]:
            dominates = (
                row["r_error"] >= dp["r_error"]
                and row["p_error"] >= dp["p_error"]
                and row["r_corr"] >= dp["r_corr"]
            )
            assert not dominates, row
