"""Tests for the Corpus container, pages, dedup and serialisation."""

from __future__ import annotations

import pytest

from repro.corpus.corpus import Corpus
from repro.corpus.documents import deduplicate, group_pages
from repro.corpus.sentence import Sentence, SentenceKind, SentenceTruth
from repro.errors import CorpusError


def _sentence(sid, surface, concepts=("animal",), page=0):
    return Sentence(
        sid=sid,
        surface=surface,
        concepts=concepts,
        instances=("dog", "cat"),
        page_id=page,
        truth=SentenceTruth(concept=concepts[-1], kind=SentenceKind.UNAMBIGUOUS),
    )


class TestCorpus:
    def test_len_iter_getitem(self):
        corpus = Corpus((_sentence(0, "a"), _sentence(1, "b")))
        assert len(corpus) == 2
        assert [s.sid for s in corpus] == [0, 1]
        assert corpus[1].surface == "b"

    def test_getitem_missing(self):
        with pytest.raises(CorpusError):
            Corpus((_sentence(0, "a"),))[99]

    def test_splits(self):
        corpus = Corpus(
            (_sentence(0, "a"), _sentence(1, "b", concepts=("animal", "food")))
        )
        assert len(corpus.unambiguous()) == 1
        assert len(corpus.ambiguous()) == 1

    def test_without_truth(self):
        corpus = Corpus((_sentence(0, "a"),)).without_truth()
        assert all(s.truth is None for s in corpus)


class TestDeduplicate:
    def test_keeps_first(self):
        sentences = [_sentence(0, "same"), _sentence(1, "same"), _sentence(2, "x")]
        kept = deduplicate(sentences)
        assert [s.sid for s in kept] == [0, 2]

    def test_noop_when_unique(self):
        sentences = [_sentence(0, "a"), _sentence(1, "b")]
        assert deduplicate(sentences) == sentences


class TestPages:
    def test_grouping(self):
        sentences = [_sentence(0, "a", page=0), _sentence(1, "b", page=0),
                     _sentence(2, "c", page=1)]
        pages = group_pages(sentences)
        assert len(pages) == 2
        assert pages[0].sentence_ids == (0, 1)
        assert pages[1].sentence_ids == (2,)


class TestSerialisation:
    def test_roundtrip(self, tmp_path):
        corpus = Corpus(
            (_sentence(0, "a"), _sentence(1, "b", concepts=("animal", "food")))
        )
        path = tmp_path / "corpus.jsonl"
        corpus.dump_jsonl(path)
        loaded = Corpus.load_jsonl(path)
        assert loaded == corpus

    def test_roundtrip_without_truth(self, tmp_path):
        corpus = Corpus((_sentence(0, "a"),)).without_truth()
        path = tmp_path / "corpus.jsonl"
        corpus.dump_jsonl(path)
        assert Corpus.load_jsonl(path) == corpus

    def test_bad_record_raises(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text("{not json}\n")
        with pytest.raises(CorpusError):
            Corpus.load_jsonl(path)

    def test_skips_blank_lines(self, tmp_path):
        corpus = Corpus((_sentence(0, "a"),))
        path = tmp_path / "c.jsonl"
        corpus.dump_jsonl(path)
        path.write_text(path.read_text() + "\n\n")
        assert len(Corpus.load_jsonl(path)) == 1
