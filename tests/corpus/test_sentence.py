"""Tests for sentence value objects."""

from __future__ import annotations

import pytest

from repro.corpus.sentence import Sentence, SentenceKind, SentenceTruth


def _sentence(**overrides):
    base = dict(
        sid=1,
        surface="animals such as dog and cat",
        concepts=("animal",),
        instances=("dog", "cat"),
        truth=SentenceTruth(concept="animal", kind=SentenceKind.UNAMBIGUOUS),
    )
    base.update(overrides)
    return Sentence(**base)


class TestSentence:
    def test_unambiguous(self):
        assert not _sentence().is_ambiguous

    def test_ambiguous(self):
        sentence = _sentence(concepts=("animal", "food"))
        assert sentence.is_ambiguous

    def test_requires_concepts(self):
        with pytest.raises(ValueError):
            _sentence(concepts=())

    def test_requires_instances(self):
        with pytest.raises(ValueError):
            _sentence(instances=())

    def test_duplicate_candidates_rejected(self):
        with pytest.raises(ValueError):
            _sentence(concepts=("animal", "animal"))

    def test_without_truth(self):
        stripped = _sentence().without_truth()
        assert stripped.truth is None
        assert stripped.surface == _sentence().surface
