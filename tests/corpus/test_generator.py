"""Tests for the corpus generator and its drift mechanisms."""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import ConceptProfile, CorpusConfig
from repro.corpus import CorpusGenerator, SentenceKind, generate_corpus
from repro.errors import CorpusError
from repro.world import toy_world


@pytest.fixture(scope="module")
def preset():
    return toy_world(seed=7)


def _config(**overrides):
    base = dict(num_sentences=1200)
    base.update(overrides)
    return CorpusConfig(**base)


class TestBasics:
    def test_approximate_size(self, preset):
        corpus = generate_corpus(preset.world, _config(duplicate_rate=0.0), seed=1)
        assert 0.9 * 1200 <= len(corpus) <= 1200

    def test_deterministic(self, preset):
        a = generate_corpus(preset.world, _config(), seed=5)
        b = generate_corpus(preset.world, _config(), seed=5)
        assert [s.surface for s in a] == [s.surface for s in b]

    def test_seed_changes_output(self, preset):
        a = generate_corpus(preset.world, _config(), seed=5)
        b = generate_corpus(preset.world, _config(), seed=6)
        assert [s.surface for s in a] != [s.surface for s in b]

    def test_sids_unique_and_dense(self, preset):
        corpus = generate_corpus(preset.world, _config(), seed=1)
        sids = [s.sid for s in corpus]
        assert len(set(sids)) == len(sids)

    def test_every_sentence_has_truth(self, preset):
        corpus = generate_corpus(preset.world, _config(), seed=1)
        assert all(s.truth is not None for s in corpus)

    def test_empty_world_rejected(self):
        from repro.world.taxonomy import World

        with pytest.raises(CorpusError):
            CorpusGenerator(World([], [], []), _config())


class TestKinds:
    def test_kind_mix(self, preset):
        corpus = generate_corpus(
            preset.world, _config(profiles=preset.profiles), seed=1
        )
        counts = corpus.kind_counts()
        assert counts[SentenceKind.UNAMBIGUOUS] > 0
        assert counts[SentenceKind.AMBIGUOUS] > 0
        assert counts.get(SentenceKind.MISPARSE, 0) > 0

    def test_zero_ambiguity(self, preset):
        config = _config(
            default_profile=ConceptProfile(ambiguous_rate=0.0),
            profiles={},
            misparse_rate=0.0,
        )
        corpus = generate_corpus(preset.world, config, seed=1)
        assert all(not s.is_ambiguous for s in corpus)

    def test_misparse_candidates_are_instances(self, preset):
        corpus = generate_corpus(preset.world, _config(misparse_rate=0.05), seed=1)
        world = preset.world
        misparses = [
            s for s in corpus if s.truth.kind is SentenceKind.MISPARSE
        ]
        assert misparses
        for sentence in misparses:
            # the naive candidate is an instance surface, not a real concept
            assert sentence.concepts[0] not in world.concepts
            assert sentence.concepts[0] in world.instances


class TestAmbiguousStructure:
    def test_candidates_are_cross_domain(self, preset):
        world = preset.world
        corpus = generate_corpus(
            preset.world, _config(profiles=preset.profiles), seed=1
        )
        for sentence in corpus.ambiguous():
            first, second = sentence.concepts
            assert world.exclusive(first, second)

    def test_truth_concept_is_a_candidate(self, preset):
        corpus = generate_corpus(
            preset.world, _config(profiles=preset.profiles), seed=1
        )
        for sentence in corpus.ambiguous():
            assert sentence.truth.concept in sentence.concepts

    def test_drift_sentences_have_target_nearest(self, preset):
        corpus = generate_corpus(
            preset.world, _config(profiles=preset.profiles), seed=1
        )
        drift = [
            s
            for s in corpus.ambiguous()
            if s.truth.concept == "food" and "animal" in s.concepts
        ]
        assert drift  # the animal <- food channel produced fodder
        for sentence in drift:
            assert sentence.concepts[0] == "animal"  # nearest attachment

    def test_bridges_are_polysemous_members_of_both(self, preset):
        world = preset.world
        corpus = generate_corpus(
            preset.world, _config(profiles=preset.profiles), seed=1
        )
        bridged = [s for s in corpus if s.truth.bridge]
        assert bridged
        for sentence in bridged:
            bridge = sentence.truth.bridge
            assert bridge in sentence.instances
            assert world.is_member(sentence.concepts[0], bridge)
            assert world.is_member(sentence.truth.concept, bridge)


class TestNoise:
    def test_false_facts_are_exclusive_concept_members(self, preset):
        world = preset.world
        config = _config(
            default_profile=ConceptProfile(false_fact_rate=0.2, ambiguous_rate=0.2)
        )
        corpus = generate_corpus(preset.world, config, seed=1)
        contaminated = [s for s in corpus if s.truth.contaminants]
        assert contaminated
        for sentence in contaminated:
            for contaminant in sentence.truth.contaminants:
                assert contaminant in sentence.instances
                assert not world.is_member(sentence.truth.concept, contaminant)

    def test_typos_are_unknown_surfaces(self, preset):
        world = preset.world
        config = _config(
            default_profile=ConceptProfile(typo_rate=0.3, ambiguous_rate=0.0),
            misparse_rate=0.0,
        )
        corpus = generate_corpus(preset.world, config, seed=1)
        typos = [s for s in corpus if s.truth.typos]
        assert typos
        for sentence in typos:
            for typo in sentence.truth.typos:
                assert typo in sentence.instances
                assert world.concepts_of(typo) == frozenset()


class TestInstanceSampling:
    def test_instances_within_bounds(self, preset):
        config = _config(min_instances_per_sentence=2, max_instances_per_sentence=4)
        corpus = generate_corpus(preset.world, config, seed=1)
        for sentence in corpus:
            assert 1 <= len(sentence.instances) <= 4

    def test_no_duplicate_instances_in_sentence(self, preset):
        corpus = generate_corpus(preset.world, _config(), seed=1)
        for sentence in corpus:
            assert len(set(sentence.instances)) == len(sentence.instances)

    def test_popular_instances_appear_more(self, preset):
        world = preset.world
        config = _config(num_sentences=3000, tail_bias_rate=0.0)
        corpus = generate_corpus(preset.world, config, seed=1)
        counts: dict[str, int] = {}
        for sentence in corpus:
            if sentence.truth.concept != "animal":
                continue
            for name in sentence.instances:
                counts[name] = counts.get(name, 0) + 1
        members = sorted(
            world.members("animal"),
            key=lambda m: -world.instance(m).popularity,
        )
        head = sum(counts.get(m, 0) for m in members[:5])
        tail = sum(counts.get(m, 0) for m in members[-5:])
        assert head > tail


class TestDuplication:
    def test_duplicates_share_surface(self, preset):
        config = _config(duplicate_rate=0.5)
        corpus = generate_corpus(preset.world, config, seed=1)
        deduped = corpus.deduplicated()
        assert len(deduped) < len(corpus)

    def test_zero_duplicate_rate(self, preset):
        config = _config(duplicate_rate=0.0)
        corpus = generate_corpus(preset.world, config, seed=1)
        # Residual collisions are possible (same template + same draw), but
        # explicit duplication is off, so the overlap must be tiny.
        assert len(corpus) - len(corpus.deduplicated()) < 0.05 * len(corpus)
