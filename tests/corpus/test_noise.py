"""Tests for the corpus noise models."""

from __future__ import annotations

import numpy as np

from repro.corpus.noise import apply_typo, pick_false_fact, popular_members
from repro.world import toy_world


class TestPopularMembers:
    def test_returns_head_of_popularity(self, toy_preset):
        world = toy_preset.world
        top = popular_members(world, "animal", top_fraction=0.1)
        weights = [world.instance(m).popularity for m in top]
        all_weights = sorted(
            (world.instance(m).popularity for m in world.members("animal")),
            reverse=True,
        )
        assert min(weights) >= all_weights[len(top) - 1]

    def test_at_least_one(self, toy_preset):
        assert popular_members(toy_preset.world, "animal", 0.001)


class TestPickFalseFact:
    def test_contaminant_is_exclusive(self, toy_preset):
        world = toy_preset.world
        rng = np.random.default_rng(0)
        for _ in range(20):
            pick = pick_false_fact(world, "animal", rng)
            assert pick is not None
            assert not world.is_member("animal", pick)
            owners = world.concepts_of(pick)
            assert owners  # a real instance of something else

    def test_deterministic_with_seed(self, toy_preset):
        world = toy_preset.world
        a = pick_false_fact(world, "animal", np.random.default_rng(5))
        b = pick_false_fact(world, "animal", np.random.default_rng(5))
        assert a == b

    def test_no_candidates_returns_none(self):
        preset = toy_world(seed=3)
        # a single-domain world has nothing exclusive to draw from
        from repro.nlp.types import EntityType
        from repro.world import WorldBuilder

        builder = WorldBuilder(seed=1)
        builder.add_domain("animals", EntityType.MISC)
        builder.add_concept("animal", "animals", size=5)
        world = builder.build()
        assert pick_false_fact(world, "animal", np.random.default_rng(0)) is None


class TestApplyTypo:
    def test_result_differs(self):
        rng = np.random.default_rng(0)
        for _ in range(30):
            assert apply_typo("singapore", rng) != "singapore"
