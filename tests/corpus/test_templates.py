"""Tests for Hearst surface templates."""

from __future__ import annotations

import numpy as np
import pytest

from repro.corpus.templates import (
    join_instances,
    pluralize,
    render_ambiguous,
    render_misparse,
    render_unambiguous,
)


class TestPluralize:
    @pytest.mark.parametrize(
        "singular,plural",
        [
            ("dog", "dogs"),
            ("country", "countries"),
            ("asian country", "asian countries"),
            ("bus", "buses"),
            ("box", "boxes"),
            ("church", "churches"),
            ("dish", "dishes"),
            ("key u.s. export", "key u.s. exports"),
            ("toy", "toys"),  # vowel before y
        ],
    )
    def test_cases(self, singular, plural):
        assert pluralize(singular) == plural


class TestJoinInstances:
    def test_single(self):
        assert join_instances(("a",)) == "a"

    def test_two(self):
        assert join_instances(("a", "b")) == "a and b"

    def test_many(self):
        assert join_instances(("a", "b", "c")) == "a, b and c"


class TestRender:
    def test_unambiguous_contains_cue(self):
        rng = np.random.default_rng(0)
        surface = render_unambiguous("animal", ("dog", "cat"), rng)
        assert "animals such as dog and cat" in surface

    def test_ambiguous_orders_head_then_modifier(self):
        rng = np.random.default_rng(0)
        surface = render_ambiguous("food", "animal", ("pork", "beef"), rng)
        assert "foods from animals such as pork and beef" in surface

    def test_misparse_shape(self):
        rng = np.random.default_rng(0)
        surface = render_misparse("animal", "dog", ("cat",), rng)
        assert "animals other than dogs such as cat" in surface

    def test_leadin_variation(self):
        rng = np.random.default_rng(1)
        surfaces = {
            render_unambiguous("animal", ("dog", "cat"), rng) for _ in range(30)
        }
        assert len(surfaces) > 1  # lead-ins actually vary
