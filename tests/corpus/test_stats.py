"""Tests for corpus statistics."""

from __future__ import annotations

import pytest

from repro.corpus.stats import corpus_stats


class TestCorpusStats:
    @pytest.fixture(scope="class")
    def stats(self, toy_corpus):
        return corpus_stats(toy_corpus)

    def test_totals_consistent(self, stats, toy_corpus):
        assert stats.sentences == len(toy_corpus)
        assert stats.ambiguous + stats.unambiguous == stats.sentences
        assert stats.distinct_surfaces <= stats.sentences

    def test_ambiguity_rate(self, stats, toy_corpus):
        expected = len(toy_corpus.ambiguous()) / len(toy_corpus)
        assert stats.ambiguity_rate == pytest.approx(expected)

    def test_duplicate_rate_positive(self, stats):
        # the generator re-emits ~8 % of sentences on later pages
        assert 0.0 < stats.duplicate_rate < 0.3

    def test_mentions(self, stats):
        assert stats.instance_mentions >= 2 * stats.sentences
        assert stats.mentions_per_instance > 1.0

    def test_noise_counts(self, stats):
        assert stats.contaminated >= 0
        assert stats.misparse >= 0

    def test_empty_corpus(self):
        from repro.corpus.corpus import Corpus

        stats = corpus_stats(Corpus(()))
        assert stats.sentences == 0
        assert stats.ambiguity_rate == 0.0
        assert stats.duplicate_rate == 0.0
        assert stats.mentions_per_instance == 0.0
