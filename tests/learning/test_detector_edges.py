"""Edge-case tests for the detector facade and seed containers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import DetectorConfig
from repro.features.matrix import ConceptMatrix
from repro.labeling import DPLabel, SeedLabel
from repro.labeling.rules import SeedLabelSet
from repro.learning import DPDetector


def _matrix(concept, rows, names=None):
    x = np.array(rows, dtype=float) if rows else np.zeros((0, 4))
    names = names or tuple(f"{concept}_{i}" for i in range(len(rows)))
    return ConceptMatrix(concept=concept, instances=tuple(names), x=x)


def _seeds(entries):
    seeds = SeedLabelSet()
    for concept, instance, label in entries:
        seeds.add(SeedLabel(concept, instance, label))
    return seeds


class TestDetectorEdges:
    def _world(self):
        rng = np.random.default_rng(0)
        good = lambda: [rng.uniform(0.5, 1), 0.0, rng.uniform(0.005, 0.02),
                        rng.uniform(0.005, 0.02)]
        bad = lambda: [rng.uniform(0, 0.1), rng.uniform(1, 2),
                       rng.uniform(0, 0.001), rng.uniform(0, 0.001)]
        rows = [good() for _ in range(10)] + [bad() for _ in range(10)]
        names = tuple(f"e{i}" for i in range(20))
        matrices = {
            "c0": _matrix("c0", rows, names),
            "empty": _matrix("empty", []),
        }
        entries = [
            ("c0", f"e{i}", DPLabel.NON_DP) for i in range(0, 10, 2)
        ] + [
            ("c0", f"e{i}", DPLabel.ACCIDENTAL) for i in range(10, 20, 2)
        ]
        return matrices, _seeds(entries)

    def test_empty_concept_predicts_empty(self):
        matrices, seeds = self._world()
        detector = DPDetector(method="multitask", seed=0).fit(matrices, seeds)
        assert detector.predict_concept("empty") == {}

    def test_two_class_seeds_still_work(self):
        # no intentional seeds at all — the third class simply never wins
        matrices, seeds = self._world()
        detector = DPDetector(method="multitask", seed=0).fit(matrices, seeds)
        predictions = detector.predict_concept("c0")
        assert set(predictions.values()) <= {
            DPLabel.NON_DP, DPLabel.ACCIDENTAL, DPLabel.INTENTIONAL
        }
        flagged = [n for n, l in predictions.items() if l.is_dp]
        assert len(flagged) >= 8  # the bad half is found

    def test_duplicate_seeds_deduplicated(self):
        matrices, seeds = self._world()
        seeds.add(SeedLabel("c0", "e0", DPLabel.ACCIDENTAL))  # conflicts
        detector = DPDetector(method="multitask", seed=0).fit(matrices, seeds)
        assert detector.predict_concept("c0")

    def test_seeds_for_unknown_instances_ignored(self):
        matrices, seeds = self._world()
        seeds.add(SeedLabel("c0", "ghost", DPLabel.NON_DP))
        detector = DPDetector(method="supervised", seed=0).fit(matrices, seeds)
        assert "ghost" not in detector.predict_concept("c0")

    def test_class_balance_flag_off(self):
        matrices, seeds = self._world()
        config = DetectorConfig(class_balance=False)
        detector = DPDetector(config, method="multitask", seed=0)
        detector.fit(matrices, seeds)
        assert detector.predict_concept("c0")


class TestSeedLabelSet:
    def test_counts_and_len(self):
        seeds = _seeds([
            ("a", "x", DPLabel.NON_DP),
            ("a", "y", DPLabel.ACCIDENTAL),
            ("b", "z", DPLabel.NON_DP),
        ])
        assert len(seeds) == 3
        assert seeds.counts()[DPLabel.NON_DP] == 2
        assert len(seeds.labels_for("a")) == 2
        assert seeds.labels_for("missing") == []
