"""Tests for kernels and kernel PCA."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.errors import LearningError, NotFittedError
from repro.learning import KernelPCA, get_kernel, linear_kernel, rbf_kernel


class TestKernels:
    def test_rbf_diagonal_ones(self):
        x = np.random.default_rng(0).normal(size=(10, 4))
        k = rbf_kernel(x, x, gamma=0.5)
        assert np.allclose(np.diag(k), 1.0)

    def test_rbf_symmetric_psd(self):
        x = np.random.default_rng(1).normal(size=(12, 4))
        k = rbf_kernel(x, x, gamma=1.0)
        assert np.allclose(k, k.T)
        eigenvalues = np.linalg.eigvalsh(k)
        assert eigenvalues.min() > -1e-9

    def test_rbf_bounded(self):
        x = np.random.default_rng(2).normal(size=(8, 3))
        y = np.random.default_rng(3).normal(size=(5, 3))
        k = rbf_kernel(x, y, gamma=0.2)
        assert np.all(k <= 1.0 + 1e-12)
        assert np.all(k >= 0.0)

    def test_linear_matches_dot(self):
        x = np.arange(6, dtype=float).reshape(2, 3)
        assert np.allclose(linear_kernel(x, x), x @ x.T)

    def test_get_kernel(self):
        assert get_kernel("rbf") is rbf_kernel
        with pytest.raises(LearningError):
            get_kernel("bogus")


class TestKernelPCA:
    def _data(self, n=40, d=4, seed=0):
        return np.random.default_rng(seed).normal(size=(n, d))

    def test_transform_shape(self):
        x = self._data()
        kpca = KernelPCA(n_components=5).fit(x)
        z = kpca.transform(x)
        assert z.shape == (40, kpca.n_components)
        assert kpca.n_components <= 5

    def test_components_capped_by_rank(self):
        # Three distinct points give a centred kernel of rank <= 2.
        x = np.array([[0.0, 0], [1, 0], [0, 1]])
        kpca = KernelPCA(n_components=10).fit(x)
        assert kpca.n_components <= 2

    def test_training_projections_centred(self):
        x = self._data()
        z = KernelPCA(n_components=4).fit_transform(x)
        assert np.allclose(z.mean(axis=0), 0.0, atol=1e-8)

    def test_components_uncorrelated(self):
        x = self._data(n=60)
        z = KernelPCA(n_components=4).fit_transform(x)
        covariance = z.T @ z
        off_diagonal = covariance - np.diag(np.diag(covariance))
        assert np.abs(off_diagonal).max() < 1e-6

    def test_not_fitted(self):
        with pytest.raises(NotFittedError):
            KernelPCA().transform(np.zeros((2, 4)))

    def test_too_few_samples(self):
        with pytest.raises(LearningError):
            KernelPCA().fit(np.zeros((1, 4)))

    def test_bad_n_components(self):
        with pytest.raises(LearningError):
            KernelPCA(n_components=0)

    def test_fit_on_sample_respects_cap(self):
        x = self._data(n=500)
        kpca = KernelPCA.fit_on_sample(x, n_components=4, sample_size=50, seed=1)
        z = kpca.transform(x)
        assert z.shape[0] == 500

    def test_empty_transform(self):
        kpca = KernelPCA(n_components=3).fit(self._data())
        z = kpca.transform(np.zeros((0, 4)))
        assert z.shape == (0, kpca.n_components)

    def test_deterministic(self):
        x = self._data()
        a = KernelPCA(n_components=4).fit(x).transform(x)
        b = KernelPCA(n_components=4).fit(x).transform(x)
        assert np.allclose(a, b)

    @given(
        arrays(
            float, (12, 4),
            elements=st.floats(min_value=-5, max_value=5, allow_nan=False),
        )
    )
    @settings(max_examples=20, deadline=None)
    def test_transform_finite_property(self, x):
        x = x + np.random.default_rng(0).normal(scale=1e-3, size=x.shape)
        kpca = KernelPCA(n_components=3, gamma=0.5).fit(x)
        z = kpca.transform(x)
        assert np.all(np.isfinite(z))
