"""Tests for the manifold regulariser (Eqs. 9–14, 17, Lemma 1)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import LearningError
from repro.learning import knn_indices, local_laplacian, manifold_matrix


class TestKnnIndices:
    def test_self_first(self):
        x = np.array([[0.0], [1.0], [2.0], [10.0]])
        neighbours = knn_indices(x, k=2)
        assert list(neighbours[:, 0]) == [0, 1, 2, 3]

    def test_nearest_selected(self):
        x = np.array([[0.0], [1.0], [2.0], [10.0]])
        neighbours = knn_indices(x, k=1)
        assert neighbours[0, 1] == 1
        assert neighbours[3, 1] == 2

    def test_k_capped_by_n(self):
        x = np.zeros((3, 2))
        neighbours = knn_indices(x, k=10)
        assert neighbours.shape == (3, 3)

    def test_empty_rejected(self):
        with pytest.raises(LearningError):
            knn_indices(np.zeros((0, 2)), k=1)


class TestLocalLaplacian:
    def test_psd(self):
        # Lemma 1 of the paper: L_i is positive semi-definite.
        rng = np.random.default_rng(0)
        for _ in range(10):
            block = rng.normal(size=(6, 3))
            laplacian = local_laplacian(block, local_reg=0.1)
            eigenvalues = np.linalg.eigvalsh(laplacian)
            assert eigenvalues.min() > -1e-9

    def test_symmetric(self):
        block = np.random.default_rng(1).normal(size=(5, 3))
        laplacian = local_laplacian(block, local_reg=0.5)
        assert np.allclose(laplacian, laplacian.T)

    def test_annihilates_constant_vector(self):
        # H 1 = 0, so the all-ones vector is in the null space.
        block = np.random.default_rng(2).normal(size=(5, 3))
        laplacian = local_laplacian(block, local_reg=0.1)
        ones = np.ones(5)
        assert np.allclose(laplacian @ ones, 0.0, atol=1e-9)


class TestManifoldMatrix:
    def test_shape_and_psd(self):
        x = np.random.default_rng(3).normal(size=(30, 5))
        a = manifold_matrix(x, k_neighbors=4, local_reg=0.1)
        assert a.shape == (5, 5)
        eigenvalues = np.linalg.eigvalsh(0.5 * (a + a.T))
        assert eigenvalues.min() > -1e-8

    def test_empty_input(self):
        a = manifold_matrix(np.zeros((0, 4)), k_neighbors=3, local_reg=0.1)
        assert a.shape == (4, 4)
        assert np.allclose(a, 0.0)

    def test_penalises_manifold_violations(self):
        # Points on a line: a weight vector along the line direction gives
        # locally-linear predictions (small penalty); an orthogonal one is
        # penalised no more strongly than the aligned one is close to zero.
        t = np.linspace(0, 1, 20)
        x = np.stack([t, 2 * t], axis=1)
        noise = np.random.default_rng(4).normal(scale=1e-3, size=x.shape)
        a = manifold_matrix(x + noise, k_neighbors=3, local_reg=0.01)
        aligned = np.array([1.0, 2.0]) / np.sqrt(5)
        penalty_aligned = aligned @ a @ aligned
        assert penalty_aligned < np.trace(a)
