"""Tests for the from-scratch decision tree and random forest."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import LearningError, NotFittedError
from repro.learning import DecisionTreeClassifier, RandomForestClassifier


def _blobs(n=120, seed=0):
    """Three separable Gaussian blobs in 2-D."""
    rng = np.random.default_rng(seed)
    centres = np.array([[0.0, 0.0], [4.0, 0.0], [0.0, 4.0]])
    x = np.vstack([
        rng.normal(loc=centre, scale=0.5, size=(n // 3, 2))
        for centre in centres
    ])
    y = np.repeat(np.arange(3), n // 3)
    return x, y


class TestDecisionTree:
    def test_fits_separable_data(self):
        x, y = _blobs()
        tree = DecisionTreeClassifier().fit(x, y)
        assert (tree.predict(x) == y).mean() > 0.97

    def test_max_depth_limits_fit(self):
        x, y = _blobs()
        stump = DecisionTreeClassifier(max_depth=1).fit(x, y)
        deep = DecisionTreeClassifier(max_depth=8).fit(x, y)
        assert (deep.predict(x) == y).mean() >= (stump.predict(x) == y).mean()

    def test_predict_proba_rows_sum_to_one(self):
        x, y = _blobs()
        tree = DecisionTreeClassifier(max_depth=3).fit(x, y)
        proba = tree.predict_proba(x)
        assert np.allclose(proba.sum(axis=1), 1.0)

    def test_pure_node_is_leaf(self):
        x = np.array([[0.0], [1.0]])
        y = np.array([1, 1])
        tree = DecisionTreeClassifier().fit(x, y)
        assert (tree.predict(x) == 1).all()

    def test_constant_features_fall_back_to_majority(self):
        x = np.zeros((10, 3))
        y = np.array([0] * 7 + [1] * 3)
        tree = DecisionTreeClassifier().fit(x, y)
        assert (tree.predict(x) == 0).all()

    def test_not_fitted(self):
        with pytest.raises(NotFittedError):
            DecisionTreeClassifier().predict(np.zeros((1, 2)))

    def test_validation(self):
        with pytest.raises(LearningError):
            DecisionTreeClassifier(min_samples_split=1)
        with pytest.raises(LearningError):
            DecisionTreeClassifier().fit(np.zeros((0, 2)), np.zeros(0))


class TestRandomForest:
    def test_fits_separable_data(self):
        x, y = _blobs()
        forest = RandomForestClassifier(n_trees=15, seed=0).fit(x, y)
        assert (forest.predict(x) == y).mean() > 0.97

    def test_generalises(self):
        x, y = _blobs(n=120, seed=0)
        x_test, y_test = _blobs(n=60, seed=99)
        forest = RandomForestClassifier(n_trees=15, seed=0).fit(x, y)
        assert (forest.predict(x_test) == y_test).mean() > 0.9

    def test_deterministic_given_seed(self):
        x, y = _blobs()
        a = RandomForestClassifier(n_trees=5, seed=3).fit(x, y).predict(x)
        b = RandomForestClassifier(n_trees=5, seed=3).fit(x, y).predict(x)
        assert np.array_equal(a, b)

    def test_proba_shape(self):
        x, y = _blobs()
        forest = RandomForestClassifier(n_trees=5, seed=0).fit(x, y)
        assert forest.predict_proba(x).shape == (len(x), 3)

    def test_not_fitted(self):
        with pytest.raises(NotFittedError):
            RandomForestClassifier().predict(np.zeros((1, 2)))

    def test_validation(self):
        with pytest.raises(LearningError):
            RandomForestClassifier(n_trees=0)
        with pytest.raises(LearningError):
            RandomForestClassifier(max_features=1.5).fit(*_blobs())  # type: ignore[arg-type]

    def test_max_features_variants(self):
        x, y = _blobs()
        for max_features in (None, "sqrt", 1):
            forest = RandomForestClassifier(
                n_trees=5, max_features=max_features, seed=0
            ).fit(x, y)
            assert (forest.predict(x) == y).mean() > 0.9
