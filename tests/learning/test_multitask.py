"""Tests for Algorithm 1 (multi-task training) and the semi-supervised solver."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import LearningError
from repro.learning import (
    ConceptTrainingData,
    MultiTaskTrainer,
    solve_semisupervised,
)


def _dataset(concept, seed, n=40, r=5, n_labeled=12, shift=0.0):
    """Synthetic 3-class data in a shared feature space."""
    rng = np.random.default_rng(seed)
    centres = np.zeros((3, r))
    centres[0, 0] = 2.0 + shift
    centres[1, 1] = 2.0 + shift
    centres[2, 2] = 2.0 + shift
    classes = rng.integers(0, 3, size=n)
    x = centres[classes] + rng.normal(scale=0.4, size=(n, r))
    labeled_idx = np.arange(n_labeled)
    y = np.zeros((n_labeled, 3))
    y[np.arange(n_labeled), classes[:n_labeled]] = 1.0
    from repro.learning import manifold_matrix

    a = manifold_matrix(x, k_neighbors=4, local_reg=0.1)
    return (
        ConceptTrainingData(
            concept=concept,
            instances=tuple(f"i{j}" for j in range(n)),
            x=x,
            labeled_idx=labeled_idx,
            y=y,
            a=a,
        ),
        classes,
    )


class TestSemiSupervised:
    def test_learns_separable_classes(self):
        data, classes = _dataset("c1", seed=0)
        w = solve_semisupervised(data, lam=0.05, beta=0.1)
        predictions = (data.x @ w).argmax(axis=1)
        assert (predictions == classes).mean() > 0.85

    def test_rejects_unlabelled_concept(self):
        data, _ = _dataset("c1", seed=0)
        empty = ConceptTrainingData(
            concept="c1",
            instances=data.instances,
            x=data.x,
            labeled_idx=np.zeros(0, dtype=int),
            y=np.zeros((0, 3)),
            a=data.a,
        )
        with pytest.raises(LearningError):
            solve_semisupervised(empty, lam=0.1, beta=0.1)


class TestMultiTaskTrainer:
    def _datasets(self, t=3):
        datasets = []
        truths = {}
        for i in range(t):
            data, classes = _dataset(f"c{i}", seed=i, shift=0.2 * i)
            datasets.append(data)
            truths[f"c{i}"] = classes
        return datasets, truths

    def test_objective_monotonically_decreases(self):
        # Theorem 1 of the paper.
        datasets, _ = self._datasets()
        trainer = MultiTaskTrainer(iterations=15, tolerance=0.0, seed=0)
        result = trainer.fit(datasets)
        history = result.objective_history
        for earlier, later in zip(history, history[1:]):
            assert later <= earlier + 1e-8

    def test_learns_all_concepts(self):
        datasets, truths = self._datasets()
        result = MultiTaskTrainer(seed=0).fit(datasets)
        for data in datasets:
            w = result.weights[data.concept]
            predictions = (data.x @ w).argmax(axis=1)
            assert (predictions == truths[data.concept]).mean() > 0.8

    def test_convergence_flag(self):
        datasets, _ = self._datasets()
        result = MultiTaskTrainer(iterations=50, tolerance=1e-7, seed=0).fit(
            datasets
        )
        assert result.converged
        assert result.iterations_run < 50

    def test_eval_fn_called_each_iteration(self):
        datasets, _ = self._datasets()
        calls = []

        def eval_fn(weights):
            calls.append(len(weights))
            return 0.5

        result = MultiTaskTrainer(iterations=5, tolerance=0.0, seed=0).fit(
            datasets, eval_fn=eval_fn
        )
        assert len(calls) == result.iterations_run
        assert result.accuracy_history == [0.5] * result.iterations_run

    def test_requires_labelled_data(self):
        data, _ = _dataset("c1", seed=0)
        empty = ConceptTrainingData(
            concept="c1",
            instances=data.instances,
            x=data.x,
            labeled_idx=np.zeros(0, dtype=int),
            y=np.zeros((0, 3)),
            a=data.a,
        )
        with pytest.raises(LearningError):
            MultiTaskTrainer().fit([empty])

    def test_mismatched_feature_spaces_rejected(self):
        a, _ = _dataset("c1", seed=0, r=5)
        b, _ = _dataset("c2", seed=1, r=4)
        with pytest.raises(LearningError):
            MultiTaskTrainer().fit([a, b])

    def test_deterministic(self):
        datasets, _ = self._datasets()
        r1 = MultiTaskTrainer(seed=5).fit(datasets)
        r2 = MultiTaskTrainer(seed=5).fit(datasets)
        for concept in r1.weights:
            assert np.allclose(r1.weights[concept], r2.weights[concept])

    def test_weighted_rows_applied(self):
        data, classes = _dataset("c1", seed=0)
        weighted = ConceptTrainingData(
            concept=data.concept,
            instances=data.instances,
            x=data.x,
            labeled_idx=data.labeled_idx,
            y=data.y,
            a=data.a,
            weights=np.full(data.n_labeled, 2.0),
        )
        plain = MultiTaskTrainer(seed=0).fit([data])
        scaled = MultiTaskTrainer(seed=0).fit([weighted])
        # Uniform weights scale the loss but leave the solution close;
        # both must classify equally well.
        for result in (plain, scaled):
            w = result.weights["c1"]
            predictions = (data.x @ w).argmax(axis=1)
            assert (predictions == classes).mean() > 0.8
