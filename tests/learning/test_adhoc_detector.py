"""Tests for the ad-hoc detectors and the DPDetector facade."""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import DetectorConfig
from repro.errors import LearningError, NotFittedError
from repro.features.matrix import ConceptMatrix
from repro.labeling import DPLabel, SeedLabel
from repro.labeling.rules import SeedLabelSet
from repro.learning import AdHocDetector, DPDetector
from repro.learning.detector import DETECTION_METHODS


def _features(rng, label):
    """Synthetic features following the paper's per-class profiles."""
    if label is DPLabel.NON_DP:
        return [
            rng.uniform(0.5, 1.0),          # f1 high
            0.0,                            # f2 zero
            rng.uniform(0.004, 0.02),       # f3 high
            rng.uniform(0.003, 0.02),       # f4 high
        ]
    if label is DPLabel.INTENTIONAL:
        return [
            rng.uniform(0.1, 0.4),
            rng.uniform(1.0, 3.0),
            rng.uniform(0.004, 0.02),
            rng.uniform(0.0005, 0.003),
        ]
    return [                                # accidental
        rng.uniform(0.0, 0.1),
        rng.uniform(1.0, 2.0),
        rng.uniform(0.0, 0.0008),
        rng.uniform(0.0, 0.0008),
    ]


def _world(num_concepts=4, per_class=12, seed=0):
    rng = np.random.default_rng(seed)
    matrices = {}
    seeds = SeedLabelSet()
    truth = {}
    for c in range(num_concepts):
        concept = f"concept{c}"
        rows, names = [], []
        i = 0
        for label in (DPLabel.NON_DP, DPLabel.INTENTIONAL, DPLabel.ACCIDENTAL):
            for _ in range(per_class):
                name = f"e{c}_{i}"
                rows.append(_features(rng, label))
                names.append(name)
                truth[(concept, name)] = label
                if i % 2 == 0:  # half the instances are seeds
                    seeds.add(SeedLabel(concept, name, label))
                i += 1
        matrices[concept] = ConceptMatrix(
            concept=concept,
            instances=tuple(names),
            x=np.array(rows),
        )
    return matrices, seeds, truth


def _accuracy(detector, matrices, truth):
    good = total = 0
    for concept in matrices:
        for name, label in detector.predict_concept(concept).items():
            total += 1
            good += truth[(concept, name)] is label
    return good / total


class TestAdHocDetector:
    def test_threshold_learned(self):
        matrices, seeds, truth = _world()
        x = np.vstack([m.x for m in matrices.values()])
        labels = [truth[(c, n)] for c, m in matrices.items() for n in m.instances]
        is_dp = np.array([lab.is_dp for lab in labels])
        detector = AdHocDetector(3).fit(x, is_dp)
        assert 0 < detector.threshold < 0.02

    def test_f3_detector_separates(self):
        matrices, seeds, truth = _world()
        x = np.vstack([m.x for m in matrices.values()])
        labels = [truth[(c, n)] for c, m in matrices.items() for n in m.instances]
        is_dp = np.array([lab.is_dp for lab in labels])
        detector = AdHocDetector(2).fit(x, is_dp)
        predictions = detector.predict(x)
        flagged = np.array([p.is_dp for p in predictions])
        agreement = (flagged == is_dp).mean()
        assert agreement > 0.9

    def test_bad_property(self):
        with pytest.raises(LearningError):
            AdHocDetector(5)

    def test_unfitted_predict(self):
        with pytest.raises(LearningError):
            AdHocDetector(1).predict(np.zeros((1, 4)))

    def test_empty_fit_rejected(self):
        with pytest.raises(LearningError):
            AdHocDetector(1).fit(np.zeros((0, 4)), np.zeros(0, dtype=bool))


class TestDPDetector:
    @pytest.mark.parametrize("method", DETECTION_METHODS)
    def test_all_methods_beat_chance(self, method):
        matrices, seeds, truth = _world()
        detector = DPDetector(
            DetectorConfig(kpca_sample_size=100), method=method, seed=0
        )
        detector.fit(matrices, seeds)
        accuracy = _accuracy(detector, matrices, truth)
        assert accuracy > 0.5, f"{method} accuracy {accuracy:.3f}"

    def test_multitask_accuracy_high_on_clean_data(self):
        matrices, seeds, truth = _world()
        detector = DPDetector(method="multitask", seed=0).fit(matrices, seeds)
        assert _accuracy(detector, matrices, truth) > 0.8

    def test_unseeded_concept_uses_pooled_fallback(self):
        matrices, seeds, truth = _world()
        # strip concept3's seeds entirely
        seeds.by_concept.pop("concept3", None)
        detector = DPDetector(method="multitask", seed=0).fit(matrices, seeds)
        predictions = detector.predict_concept("concept3")
        assert len(predictions) == matrices["concept3"].size
        good = sum(
            truth[("concept3", n)] is label for n, label in predictions.items()
        )
        assert good / len(predictions) > 0.6

    def test_detected_dps_only_returns_dps(self):
        matrices, seeds, _ = _world()
        detector = DPDetector(method="multitask", seed=0).fit(matrices, seeds)
        for label in detector.detected_dps("concept0").values():
            assert label.is_dp

    def test_unknown_method(self):
        with pytest.raises(LearningError):
            DPDetector(method="bogus")

    def test_not_fitted(self):
        with pytest.raises(NotFittedError):
            DPDetector().predict_concept("concept0")

    def test_unknown_concept_after_fit(self):
        matrices, seeds, _ = _world()
        detector = DPDetector(method="supervised", seed=0).fit(matrices, seeds)
        with pytest.raises(LearningError):
            detector.predict_concept("ghost")

    def test_non_dp_bias_increases_dp_flags(self):
        matrices, seeds, _ = _world()
        plain = DPDetector(method="multitask", seed=0).fit(matrices, seeds)
        biased = DPDetector(
            DetectorConfig(non_dp_bias=5.0), method="multitask", seed=0
        ).fit(matrices, seeds)
        plain_dps = sum(len(plain.detected_dps(c)) for c in matrices)
        biased_dps = sum(len(biased.detected_dps(c)) for c in matrices)
        assert biased_dps >= plain_dps

    def test_requires_seeds(self):
        matrices, _, _ = _world()
        with pytest.raises(LearningError):
            DPDetector(method="multitask", seed=0).fit(matrices, SeedLabelSet())

    def test_requires_matrices(self):
        _, seeds, _ = _world()
        with pytest.raises(LearningError):
            DPDetector(method="multitask", seed=0).fit({}, seeds)
