"""Equivalence tests for the versioned analysis cache.

The cache's contract is observational: every cached artefact must be
exactly what a from-scratch rebuild over the same KB state would produce.
Hypothesis drives randomized rollback histories against the incremental
paths with fresh rebuilds as oracles, and a small-but-real pipeline pins
the end-to-end guarantee — toggling the analysis cache changes nothing
the DP cleaner observes or removes.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import AnalysisCache
from repro.cleaning import DPCleaner
from repro.concepts import CoreSimilarity, MutualExclusionIndex
from repro.config import CleaningConfig, LabelingConfig
from repro.experiments.pipeline import Pipeline, experiment_config
from repro.features import FeatureExtractor
from repro.kb import IsAPair, KnowledgeBase, RollbackEngine
from repro.labeling import EvidenceIndex, SeedLabeler
from repro.ranking import RandomWalkRanker
from repro.world import paper_world

_CONCEPTS = ("animal", "food", "city", "country", "tool")
_INSTANCES = tuple(f"i{k}" for k in range(10))


@st.composite
def extraction_kbs(draw):
    """A small KB with chained (trigger-linked) extraction records."""
    kb = KnowledgeBase()
    num_records = draw(st.integers(min_value=3, max_value=12))
    pairs: list[IsAPair] = []
    for rid in range(num_records):
        concept = draw(st.sampled_from(_CONCEPTS))
        names = tuple(
            draw(
                st.lists(
                    st.sampled_from(_INSTANCES),
                    min_size=1,
                    max_size=3,
                    unique=True,
                )
            )
        )
        iteration = draw(st.integers(min_value=1, max_value=3))
        triggers = ()
        own_pairs = [pair for pair in pairs if pair.concept == concept]
        if own_pairs and iteration > 1 and draw(st.booleans()):
            triggers = (draw(st.sampled_from(own_pairs)),)
        kb.add_extraction(
            rid, concept, names, triggers=triggers, iteration=iteration
        )
        pairs.extend(IsAPair(concept, name) for name in names)
    return kb


def _mutate(kb: KnowledgeBase, data) -> None:
    """One randomized rollback wave (records and/or a whole pair)."""
    engine = RollbackEngine(kb)
    active = [record.rid for record in kb.records()]
    if active and data.draw(st.booleans(), label="rollback_records"):
        victims = data.draw(
            st.lists(
                st.sampled_from(active), min_size=1, max_size=3, unique=True
            ),
            label="victim_records",
        )
        engine.rollback_records(victims)
    alive = sorted(kb.pairs())
    if alive and data.draw(st.booleans(), label="rollback_pair"):
        engine.rollback_pair(
            data.draw(st.sampled_from(alive), label="victim_pair")
        )


class TestSimilarityRefresh:
    @given(extraction_kbs(), st.data())
    @settings(max_examples=40, deadline=None)
    def test_refresh_matches_rebuild(self, kb, data):
        incremental = CoreSimilarity(kb)
        for _ in range(data.draw(st.integers(1, 3), label="rounds")):
            _mutate(kb, data)
            incremental.refresh()
            fresh = CoreSimilarity(kb)
            assert incremental.concepts == fresh.concepts
            for a in _CONCEPTS:
                assert incremental.core(a) == fresh.core(a)
                assert incremental.overlapping(a) == fresh.overlapping(a)
                for b in _CONCEPTS:
                    assert incremental.similarity(a, b) == fresh.similarity(
                        a, b
                    )

    @given(extraction_kbs(), st.data())
    @settings(max_examples=40, deadline=None)
    def test_refresh_reports_every_changed_row(self, kb, data):
        sim = CoreSimilarity(kb)
        for _ in range(data.draw(st.integers(1, 3), label="rounds")):
            before = {
                (a, b): sim.similarity(a, b)
                for a in _CONCEPTS
                for b in _CONCEPTS
            }
            _mutate(kb, data)
            affected = sim.refresh()
            for (a, b), value in before.items():
                if a not in affected and b not in affected:
                    assert sim.similarity(a, b) == value


class TestExclusionRefresh:
    @given(extraction_kbs(), st.data())
    @settings(max_examples=40, deadline=None)
    def test_refresh_matches_rebuild(self, kb, data):
        incremental = MutualExclusionIndex(kb)
        # Warm the pairwise memo so refresh() must invalidate correctly.
        for a in _CONCEPTS:
            for b in _CONCEPTS:
                incremental.exclusive(a, b)
        for _ in range(data.draw(st.integers(1, 3), label="rounds")):
            _mutate(kb, data)
            incremental.refresh()
            fresh = MutualExclusionIndex(kb)
            for a in _CONCEPTS:
                assert incremental.group(a) == fresh.group(a)
                for b in _CONCEPTS:
                    assert incremental.exclusive(a, b) == fresh.exclusive(
                        a, b
                    )
                    assert incremental.highly_similar(
                        a, b
                    ) == fresh.highly_similar(a, b)

    @given(extraction_kbs(), st.data())
    @settings(max_examples=40, deadline=None)
    def test_closure_covers_every_flipped_verdict(self, kb, data):
        index = MutualExclusionIndex(kb)
        for _ in range(data.draw(st.integers(1, 3), label="rounds")):
            before = {
                (a, b): index.exclusive(a, b)
                for a in _CONCEPTS
                for b in _CONCEPTS
            }
            epochs = {a: index.relations_version(a) for a in _CONCEPTS}
            _mutate(kb, data)
            closure = index.refresh()
            for (a, b), verdict in before.items():
                if a not in closure and b not in closure:
                    assert index.exclusive(a, b) == verdict
            # relations_version moves exactly for the closure.
            for a in _CONCEPTS:
                moved = index.relations_version(a) != epochs[a]
                assert moved == (a in closure)


def _verified_sampler(kb: KnowledgeBase, concept: str) -> frozenset[IsAPair]:
    """Deterministic stand-in for the pipeline's verified-source sampler
    (a pure function of the concept's alive instances, as required)."""
    return frozenset(
        IsAPair(concept, name)
        for name in kb.instances_of(concept)
        if name[-1] in "02468"
    )


class TestAnalysisCacheEquivalence:
    @given(extraction_kbs(), st.data())
    @settings(max_examples=25, deadline=None)
    def test_matrices_and_seeds_match_fresh_build(self, kb, data):
        cache = AnalysisCache()
        ranker = RandomWalkRanker(cache=False)
        config = LabelingConfig()
        for _ in range(data.draw(st.integers(1, 3), label="rounds")):
            _mutate(kb, data)
            concepts = kb.concepts()
            exclusion = cache.exclusion(kb)
            scores = ranker.score_all(kb, concepts)
            features = FeatureExtractor(kb, exclusion, scores)
            matrices = cache.matrices(kb, concepts, features)
            verified = cache.verified(kb, concepts, _verified_sampler)
            evidence = cache.evidence(kb, config, verified)
            seeds = cache.seeds(kb, concepts, evidence)

            fresh_exclusion = MutualExclusionIndex(kb)
            fresh_features = FeatureExtractor(kb, fresh_exclusion, scores)
            for concept in concepts:
                names, x = fresh_features.feature_matrix(concept)
                assert matrices[concept].instances == names
                assert np.array_equal(matrices[concept].x, x)
            fresh_verified: frozenset[IsAPair] = frozenset().union(
                *(_verified_sampler(kb, c) for c in concepts)
            )
            assert verified == fresh_verified
            fresh_evidence = EvidenceIndex(
                kb, fresh_exclusion, config, verified=fresh_verified
            )
            for concept in concepts:
                assert evidence.evidenced_correct(
                    concept
                ) == fresh_evidence.evidenced_correct(concept)
            fresh_seeds = SeedLabeler(
                kb, fresh_exclusion, fresh_evidence
            ).label_all(concepts)

            def key(label):
                return (label.concept, label.instance, label.label.value)

            assert sorted(map(key, seeds.all_labels())) == sorted(
                map(key, fresh_seeds.all_labels())
            )

    @given(extraction_kbs(), st.data())
    @settings(max_examples=15, deadline=None)
    def test_unchanged_matrices_keep_identity(self, kb, data):
        """A second pass with no KB mutation returns the same objects
        (downstream transform/manifold caches key on identity)."""
        cache = AnalysisCache()
        ranker = RandomWalkRanker(cache=False)
        _mutate(kb, data)
        concepts = kb.concepts()
        exclusion = cache.exclusion(kb)
        scores = ranker.score_all(kb, concepts)
        features = FeatureExtractor(kb, exclusion, scores)
        first = cache.matrices(kb, concepts, features)
        exclusion = cache.exclusion(kb)
        features = FeatureExtractor(kb, exclusion, scores)
        second = cache.matrices(kb, concepts, features)
        for concept in concepts:
            assert second[concept] is first[concept]


class TestCleanerCacheEquivalence:
    """Cache-on and cache-off cleaning must be indistinguishable."""

    def _outcome(self, analysis_cache: bool):
        preset = paper_world(seed=3, scale=0.5)
        config = experiment_config(
            num_sentences=3000, seed=3, profiles=preset.profiles
        )
        pipeline = Pipeline(preset=preset, config=config)
        extraction = pipeline.extract()
        detect = pipeline.detect_fn(analysis_cache=analysis_cache)
        cleaner = DPCleaner(
            detect,
            CleaningConfig(max_cleaning_rounds=2),
            use_cache=analysis_cache,
        )
        result = cleaner.clean(extraction.kb, extraction.corpus)
        rounds = [
            (
                stats.round_index,
                stats.intentional_dps,
                stats.accidental_dps,
                stats.records_rolled_back,
                stats.pairs_removed,
                stats.sentence_checks,
            )
            for stats in result.details["rounds"]
        ]
        return result.removed_pairs, result.records_rolled_back, rounds

    def test_cache_on_off_bit_identical(self):
        removed_on, rolled_on, rounds_on = self._outcome(True)
        removed_off, rolled_off, rounds_off = self._outcome(False)
        assert removed_on == removed_off
        assert rolled_on == rolled_off
        # Sentence checks compare bit-exactly: same sentences re-scored,
        # same chosen concepts, identical score tuples.
        assert rounds_on == rounds_off
        assert removed_on  # the scenario actually exercises the cleaner
