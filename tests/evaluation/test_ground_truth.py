"""Tests for the ground-truth oracle."""

from __future__ import annotations

from repro.evaluation import GroundTruth
from repro.kb import IsAPair, KnowledgeBase
from repro.labeling import DPLabel
from repro.nlp.types import EntityType
from repro.world.schema import ConceptSpec, Domain, InstanceSpec, Sense
from repro.world.taxonomy import World


def _world():
    domains = [Domain("animals", EntityType.MISC), Domain("foods", EntityType.MISC)]
    concepts = [
        ConceptSpec("animal", "animals", ("dog", "chicken")),
        ConceptSpec("food", "foods", ("pork", "beef", "chicken")),
    ]
    instances = [
        InstanceSpec("dog", (Sense("animals", frozenset({"animal"})),)),
        InstanceSpec("pork", (Sense("foods", frozenset({"food"})),)),
        InstanceSpec("beef", (Sense("foods", frozenset({"food"})),)),
        InstanceSpec(
            "chicken",
            (
                Sense("animals", frozenset({"animal"})),
                Sense("foods", frozenset({"food"})),
            ),
        ),
    ]
    return World(domains, concepts, instances)


def _kb():
    kb = KnowledgeBase()
    kb.add_extraction(0, "animal", ("dog", "chicken"), iteration=1)
    chicken = IsAPair("animal", "chicken")
    # chicken triggers pork (drift) and a typo
    kb.add_extraction(
        1, "animal", ("pork", "chicken"), triggers=(chicken,), iteration=2
    )
    kb.add_extraction(
        2, "animal", ("syngapore", "chicken"), triggers=(chicken,), iteration=2
    )
    return kb


class TestPairTruth:
    def test_correct(self):
        truth = GroundTruth(_world(), _kb())
        assert truth.is_correct("animal", "dog")
        assert not truth.is_correct("animal", "pork")

    def test_unknown_concept_everything_wrong(self):
        truth = GroundTruth(_world(), _kb())
        assert truth.is_error("vehicle", "dog")

    def test_drifting_vs_typo(self):
        truth = GroundTruth(_world(), _kb())
        assert truth.is_drifting_error("animal", "pork")
        assert not truth.is_drifting_error("animal", "syngapore")
        assert truth.is_typo_error("animal", "syngapore")
        assert not truth.is_typo_error("animal", "pork")


class TestDPTruth:
    def test_chicken_intentional(self):
        truth = GroundTruth(_world(), _kb())
        assert truth.dp_label("animal", "chicken") is DPLabel.INTENTIONAL

    def test_dog_non_dp(self):
        truth = GroundTruth(_world(), _kb())
        assert truth.dp_label("animal", "dog") is DPLabel.NON_DP

    def test_leaf_error_has_no_class(self):
        truth = GroundTruth(_world(), _kb())
        assert truth.dp_label("animal", "pork") is None
        assert truth.dp_label("animal", "syngapore") is None

    def test_accidental_when_error_triggers(self):
        kb = _kb()
        pork = IsAPair("animal", "pork")
        # pork drags beef (a real food) under animal → pork is a DP now
        kb.add_extraction(
            3, "animal", ("beef", "pork"), triggers=(pork,), iteration=3
        )
        truth = GroundTruth(_world(), kb)
        assert truth.dp_label("animal", "pork") is DPLabel.ACCIDENTAL
        assert truth.dp_label("animal", "beef") is None  # leaf error

    def test_concept_truth_breakdown(self):
        truth = GroundTruth(_world(), _kb())
        summary = truth.concept_truth("animal")
        assert summary.instances == 4
        assert summary.correct == 2
        assert summary.errors == 2
        assert summary.intentional_dps == 1
        assert summary.non_dps == 1
        assert summary.error_rate == 0.5
