"""Tests for text-table formatting."""

from __future__ import annotations

from repro.evaluation import format_float, format_table


class TestFormatFloat:
    def test_rounds(self):
        assert format_float(0.91194) == "0.9119"

    def test_integral(self):
        assert format_float(1.0) == "1.0"

    def test_digits(self):
        assert format_float(0.123456, digits=2) == "0.12"


class TestFormatTable:
    def test_alignment(self):
        text = format_table(("a", "bb"), [("x", 1), ("yyyy", 22)])
        lines = text.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("a")
        widths = {len(line) for line in lines}
        assert len(widths) == 1  # every line equally wide

    def test_title(self):
        text = format_table(("a",), [("x",)], title="T")
        assert text.splitlines()[0] == "T"

    def test_floats_formatted(self):
        text = format_table(("v",), [(0.123456,)])
        assert "0.1235" in text
