"""Tests for the §5 evaluation metrics."""

from __future__ import annotations

import pytest

from repro.corpus.corpus import Corpus
from repro.corpus.sentence import Sentence, SentenceKind, SentenceTruth
from repro.evaluation import (
    GroundTruth,
    cleaning_metrics,
    detection_metrics,
    precision_at_k,
    sentence_check_metrics,
)
from repro.cleaning.intentional import SentenceCheck
from repro.kb import IsAPair, KnowledgeBase
from repro.labeling import DPLabel
from repro.nlp.types import EntityType
from repro.world.schema import ConceptSpec, Domain, InstanceSpec, Sense
from repro.world.taxonomy import World


def _world():
    domains = [Domain("animals", EntityType.MISC)]
    concepts = [ConceptSpec("animal", "animals", ("dog", "cat", "pig"))]
    instances = [
        InstanceSpec(name, (Sense("animals", frozenset({"animal"})),))
        for name in ("dog", "cat", "pig")
    ]
    return World(domains, concepts, instances)


def _truth(kb=None):
    return GroundTruth(_world(), kb or KnowledgeBase())


class TestCleaningMetrics:
    def test_perfect_cleaning(self):
        truth = _truth()
        before = {"animal": frozenset({"dog", "cat", "junk1", "junk2"})}
        after = {"animal": frozenset({"dog", "cat"})}
        m = cleaning_metrics(truth, before, after)
        assert m.p_error == 1.0
        assert m.r_error == 1.0
        assert m.p_corr == 1.0
        assert m.r_corr == 1.0

    def test_collateral_damage(self):
        truth = _truth()
        before = {"animal": frozenset({"dog", "cat", "junk"})}
        after = {"animal": frozenset({"dog"})}
        m = cleaning_metrics(truth, before, after)
        assert m.p_error == pytest.approx(0.5)   # junk + cat removed
        assert m.r_error == 1.0
        assert m.r_corr == pytest.approx(0.5)    # cat was sacrificed

    def test_no_cleaning(self):
        truth = _truth()
        before = {"animal": frozenset({"dog", "junk"})}
        m = cleaning_metrics(truth, before, before)
        assert m.p_error == 0.0
        assert m.r_error == 0.0
        assert m.p_corr == pytest.approx(0.5)
        assert m.r_corr == 1.0

    def test_concept_filter(self):
        truth = _truth()
        before = {
            "animal": frozenset({"dog"}),
            "other": frozenset({"junk"}),
        }
        m = cleaning_metrics(truth, before, before, concepts=["animal"])
        assert m.remaining == 1


class TestDetectionMetrics:
    def test_perfect(self):
        kb = KnowledgeBase()
        kb.add_extraction(0, "animal", ("dog",), iteration=1)
        truth = _truth(kb)
        predictions = {"animal": {"dog": DPLabel.NON_DP}}
        m = detection_metrics(truth, predictions)
        assert m.accuracy == 1.0
        assert m.support == 1

    def test_leaf_errors_excluded(self):
        kb = KnowledgeBase()
        kb.add_extraction(0, "animal", ("dog", "junk"), iteration=1)
        truth = _truth(kb)
        predictions = {
            "animal": {"dog": DPLabel.NON_DP, "junk": DPLabel.ACCIDENTAL}
        }
        m = detection_metrics(truth, predictions)
        assert m.support == 1  # junk has no DP class

    def test_precision_recall(self):
        kb = KnowledgeBase()
        kb.add_extraction(0, "animal", ("dog", "cat", "chicken2"), iteration=1)
        truth = _truth(kb)
        # dog: true non-DP predicted DP (fp); cat: non-DP ok (tn)
        predictions = {
            "animal": {
                "dog": DPLabel.INTENTIONAL,
                "cat": DPLabel.NON_DP,
            }
        }
        m = detection_metrics(truth, predictions)
        assert m.precision == 0.0
        assert m.recall == 0.0
        assert m.accuracy == pytest.approx(0.5)


class TestPrecisionAtK:
    def test_top_k(self):
        truth = _truth()
        scores = {"animal": {"dog": 0.9, "junk": 0.8, "cat": 0.1}}
        assert precision_at_k(truth, scores, 2) == pytest.approx(0.5)
        assert precision_at_k(truth, scores, 3) == pytest.approx(2 / 3)

    def test_k_larger_than_concept(self):
        truth = _truth()
        scores = {"animal": {"dog": 0.9}}
        assert precision_at_k(truth, scores, 100) == 1.0

    def test_empty(self):
        assert precision_at_k(_truth(), {}, 10) == 0.0


class TestSentenceCheckMetrics:
    def _corpus(self):
        sentences = (
            Sentence(
                sid=0, surface="a", concepts=("animal", "food"),
                instances=("pork",),
                truth=SentenceTruth(concept="food", kind=SentenceKind.AMBIGUOUS),
            ),
            Sentence(
                sid=1, surface="b", concepts=("animal", "food"),
                instances=("cat",),
                truth=SentenceTruth(concept="animal", kind=SentenceKind.AMBIGUOUS),
            ),
        )
        return Corpus(sentences)

    def _check(self, sid, concept, drifting):
        return SentenceCheck(
            sid=sid, chosen_concept=concept, trigger_instance="x",
            scores=(), is_drifting=drifting,
        )

    def test_perfect_checks(self):
        checks = [
            self._check(0, "animal", True),   # truly wrong, flagged
            self._check(1, "animal", False),  # truly right, kept
        ]
        p, r = sentence_check_metrics(self._corpus(), checks)
        assert p == 1.0
        assert r == 1.0

    def test_missed_bad_extraction(self):
        checks = [self._check(0, "animal", False)]
        p, r = sentence_check_metrics(self._corpus(), checks)
        assert p == 0.0
        assert r == 0.0

    def test_concept_filter(self):
        checks = [self._check(0, "animal", True)]
        p, r = sentence_check_metrics(self._corpus(), checks, ["food"])
        assert (p, r) == (0.0, 0.0)
