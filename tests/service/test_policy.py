"""Tests for the cleaning-trigger policy."""

from __future__ import annotations

import pytest

from repro.service import IngestPolicy


class TestValidation:
    def test_negative_staleness_rejected(self):
        with pytest.raises(ValueError):
            IngestPolicy(staleness_threshold=-1)

    def test_drift_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            IngestPolicy(drift_threshold=1.5)
        with pytest.raises(ValueError):
            IngestPolicy(drift_threshold=-0.1)

    def test_negative_min_new_pairs_rejected(self):
        with pytest.raises(ValueError):
            IngestPolicy(min_new_pairs=-1)

    def test_none_disables_either_trigger(self):
        IngestPolicy(staleness_threshold=None)
        IngestPolicy(drift_threshold=None)


class TestDecide:
    def test_below_both_thresholds(self):
        policy = IngestPolicy(staleness_threshold=100, drift_threshold=0.5)
        decision = policy.decide(staleness=50, drift=0.1, new_pairs=100)
        assert not decision.clean
        assert decision.reason is None
        assert decision.staleness == 50
        assert decision.drift == 0.1

    def test_staleness_fires(self):
        policy = IngestPolicy(staleness_threshold=100, drift_threshold=0.5)
        decision = policy.decide(staleness=100, drift=0.0, new_pairs=0)
        assert decision.clean
        assert decision.reason == "staleness"

    def test_drift_fires(self):
        policy = IngestPolicy(staleness_threshold=1000, drift_threshold=0.2)
        decision = policy.decide(staleness=10, drift=0.3, new_pairs=50)
        assert decision.clean
        assert decision.reason == "drift"

    def test_staleness_wins_when_both_fire(self):
        policy = IngestPolicy(staleness_threshold=10, drift_threshold=0.1)
        decision = policy.decide(staleness=10, drift=0.9, new_pairs=100)
        assert decision.reason == "staleness"

    def test_forced_wins_over_everything(self):
        policy = IngestPolicy(staleness_threshold=0)
        decision = policy.decide(
            staleness=999, drift=0.9, new_pairs=100, forced=True
        )
        assert decision.reason == "forced"

    def test_drift_suppressed_on_tiny_batches(self):
        policy = IngestPolicy(
            staleness_threshold=None, drift_threshold=0.1, min_new_pairs=20
        )
        quiet = policy.decide(staleness=0, drift=0.9, new_pairs=19)
        assert not quiet.clean
        loud = policy.decide(staleness=0, drift=0.9, new_pairs=20)
        assert loud.clean

    def test_disabled_triggers_never_fire(self):
        policy = IngestPolicy.never()
        decision = policy.decide(staleness=10**9, drift=1.0, new_pairs=10**6)
        assert not decision.clean

    def test_every_batch_policy(self):
        policy = IngestPolicy.every_batch()
        assert policy.decide(staleness=0, drift=0.0, new_pairs=0).clean


class TestPolicyMonitor:
    """The monitor derives trigger inputs purely from bus events."""

    def _bus_and_monitor(self):
        from repro.runtime.events import EventBus
        from repro.service import PolicyMonitor

        bus = EventBus()
        return bus, PolicyMonitor(bus)

    def _batch(self, sentences_new=100, new_pairs=10, index=0):
        from repro.runtime.events import BatchExtracted

        return BatchExtracted(
            index=index, sentences_seen=sentences_new,
            sentences_new=sentences_new, new_pairs=new_pairs,
            total_pairs=new_pairs, iterations_run=1,
        )

    def test_staleness_accumulates_from_batches(self):
        bus, monitor = self._bus_and_monitor()
        bus.publish(self._batch(sentences_new=60))
        bus.publish(self._batch(sentences_new=40, index=1))
        assert monitor.staleness == 100

    def test_cleaning_completed_resets_staleness(self):
        from repro.runtime.events import CleaningCompleted

        bus, monitor = self._bus_and_monitor()
        bus.publish(self._batch(sentences_new=500))
        bus.publish(
            CleaningCompleted(rounds=2, pairs_removed=5,
                              records_rolled_back=1)
        )
        assert monitor.staleness == 0
        assert monitor.cleanings == 1

    def test_drift_events_fold_totals_and_track_last(self):
        from repro.runtime.events import DriftMeasured

        bus, monitor = self._bus_and_monitor()
        bus.publish(DriftMeasured(
            index=0, new_pairs=30, conflicted=3, fraction=0.1,
            per_concept=(("animal", 20, 2), ("food", 10, 1)),
        ))
        bus.publish(DriftMeasured(
            index=1, new_pairs=50, conflicted=10, fraction=0.2,
            per_concept=(("animal", 50, 10),),
        ))
        assert monitor.last_drift == 0.2
        assert monitor.last_new_pairs == 50
        assert monitor.drift_totals == {
            "animal": [70, 12], "food": [10, 1],
        }

    def test_decide_reads_the_accumulated_state(self):
        from repro.runtime.events import DriftMeasured

        bus, monitor = self._bus_and_monitor()
        policy = IngestPolicy(
            staleness_threshold=None, drift_threshold=0.1, min_new_pairs=20
        )
        bus.publish(DriftMeasured(
            index=0, new_pairs=25, conflicted=5, fraction=0.2,
        ))
        decision = monitor.decide(policy)
        assert decision.clean and decision.reason == "drift"

    def test_close_detaches_from_the_bus(self):
        bus, monitor = self._bus_and_monitor()
        monitor.close()
        bus.publish(self._batch(sentences_new=100))
        assert monitor.staleness == 0
        assert not bus.has_subscribers

    def test_session_monitor_matches_reports(self, service_corpus):
        """The live session's monitor agrees with its committed reports."""
        from .conftest import make_pipeline

        pipeline = make_pipeline()
        session = pipeline.session(policy=IngestPolicy.never())
        for batch in service_corpus.batches(500):
            session.ingest(batch)
        expected = sum(r.sentences_new for r in session.reports)
        assert session.staleness == expected
        assert session.monitor.staleness == expected
        assert session.cleanings == 0
