"""Tests for the cleaning-trigger policy."""

from __future__ import annotations

import pytest

from repro.service import IngestPolicy


class TestValidation:
    def test_negative_staleness_rejected(self):
        with pytest.raises(ValueError):
            IngestPolicy(staleness_threshold=-1)

    def test_drift_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            IngestPolicy(drift_threshold=1.5)
        with pytest.raises(ValueError):
            IngestPolicy(drift_threshold=-0.1)

    def test_negative_min_new_pairs_rejected(self):
        with pytest.raises(ValueError):
            IngestPolicy(min_new_pairs=-1)

    def test_none_disables_either_trigger(self):
        IngestPolicy(staleness_threshold=None)
        IngestPolicy(drift_threshold=None)


class TestDecide:
    def test_below_both_thresholds(self):
        policy = IngestPolicy(staleness_threshold=100, drift_threshold=0.5)
        decision = policy.decide(staleness=50, drift=0.1, new_pairs=100)
        assert not decision.clean
        assert decision.reason is None
        assert decision.staleness == 50
        assert decision.drift == 0.1

    def test_staleness_fires(self):
        policy = IngestPolicy(staleness_threshold=100, drift_threshold=0.5)
        decision = policy.decide(staleness=100, drift=0.0, new_pairs=0)
        assert decision.clean
        assert decision.reason == "staleness"

    def test_drift_fires(self):
        policy = IngestPolicy(staleness_threshold=1000, drift_threshold=0.2)
        decision = policy.decide(staleness=10, drift=0.3, new_pairs=50)
        assert decision.clean
        assert decision.reason == "drift"

    def test_staleness_wins_when_both_fire(self):
        policy = IngestPolicy(staleness_threshold=10, drift_threshold=0.1)
        decision = policy.decide(staleness=10, drift=0.9, new_pairs=100)
        assert decision.reason == "staleness"

    def test_forced_wins_over_everything(self):
        policy = IngestPolicy(staleness_threshold=0)
        decision = policy.decide(
            staleness=999, drift=0.9, new_pairs=100, forced=True
        )
        assert decision.reason == "forced"

    def test_drift_suppressed_on_tiny_batches(self):
        policy = IngestPolicy(
            staleness_threshold=None, drift_threshold=0.1, min_new_pairs=20
        )
        quiet = policy.decide(staleness=0, drift=0.9, new_pairs=19)
        assert not quiet.clean
        loud = policy.decide(staleness=0, drift=0.9, new_pairs=20)
        assert loud.clean

    def test_disabled_triggers_never_fire(self):
        policy = IngestPolicy.never()
        decision = policy.decide(staleness=10**9, drift=1.0, new_pairs=10**6)
        assert not decision.clean

    def test_every_batch_policy(self):
        policy = IngestPolicy.every_batch()
        assert policy.decide(staleness=0, drift=0.0, new_pairs=0).clean
