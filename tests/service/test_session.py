"""Tests for the streaming ingestion session."""

from __future__ import annotations

import pytest

from repro.errors import ServiceError
from repro.service import IngestPolicy

from .conftest import make_pipeline


@pytest.fixture(scope="module")
def quiet_session_run(service_corpus):
    """One four-batch run with cleaning disabled, reused read-only."""
    pipeline = make_pipeline()
    session = pipeline.session(policy=IngestPolicy.never())
    reports = [session.ingest(b) for b in service_corpus.batches(400)]
    return session, reports


class TestIngest:
    def test_batches_accumulate(self, quiet_session_run, service_corpus):
        session, reports = quiet_session_run
        assert session.batches_ingested == len(reports)
        assert [r.index for r in reports] == list(range(len(reports)))
        assert [r.seq for r in reports] == list(
            range(1, len(reports) + 1)
        )
        total_new = sum(r.sentences_new for r in reports)
        assert total_new == len(session.corpus())
        assert total_new <= len(service_corpus)
        assert len(session.kb) > 0

    def test_duplicates_skipped_across_batches(self, quiet_session_run,
                                               service_corpus):
        session, _ = quiet_session_run
        pipeline = make_pipeline()
        replayed = pipeline.session(policy=IngestPolicy.never())
        replayed.ingest(service_corpus)
        report = replayed.ingest(service_corpus)  # everything is a dup now
        assert report.sentences_new == 0
        assert report.new_pairs == 0
        assert report.drift.fraction == 0.0

    def test_staleness_accumulates_without_cleaning(self, quiet_session_run):
        session, reports = quiet_session_run
        assert session.staleness == sum(r.sentences_new for r in reports)
        assert session.cleanings == 0
        assert all(r.cleaning is None for r in reports)

    def test_drift_telemetry_populated(self, quiet_session_run):
        session, reports = quiet_session_run
        # The synthetic world plants drifting errors, so some fraction of
        # new pairs must land in mutually exclusive concepts.
        assert any(r.drift.conflicted > 0 for r in reports)
        for report in reports:
            drift = report.drift
            assert 0.0 <= drift.fraction <= 1.0
            assert drift.conflicted <= drift.new_pairs
            assert sum(c[0] for c in drift.per_concept.values()) == (
                drift.new_pairs
            )
            assert sum(c[1] for c in drift.per_concept.values()) == (
                drift.conflicted
            )
        totals = session.drift_totals()
        assert sum(c[1] for c in totals.values()) == sum(
            r.drift.conflicted for r in reports
        )

    def test_stats_summary(self, quiet_session_run):
        session, reports = quiet_session_run
        stats = session.stats()
        assert stats["batches"] == len(reports)
        assert stats["cleanings"] == 0
        assert stats["pairs"] == len(session.kb)
        assert stats["drift_history"] == [
            r.drift.fraction for r in reports
        ]


class TestCleaningTriggers:
    def test_staleness_trigger_fires_and_resets(self, service_corpus):
        pipeline = make_pipeline()
        session = pipeline.session(
            policy=IngestPolicy(staleness_threshold=700,
                                drift_threshold=None)
        )
        reports = [session.ingest(b) for b in service_corpus.batches(400)]
        reasons = [r.cleaning.reason for r in reports if r.cleaning]
        assert "staleness" in reasons
        # The counter resets after each pass, so no two consecutive
        # batches can both fire on staleness with a 700 threshold.
        fired = [r.cleaning is not None for r in reports]
        assert not any(a and b for a, b in zip(fired, fired[1:]))
        assert session.cleanings == len(reasons)
        assert len(session.kb.removed_pairs()) > 0

    def test_drift_trigger_fires(self, service_corpus):
        pipeline = make_pipeline()
        session = pipeline.session(
            policy=IngestPolicy(staleness_threshold=None,
                                drift_threshold=0.05, min_new_pairs=10)
        )
        report = session.ingest(next(service_corpus.batches(600)))
        assert report.cleaning is not None
        assert report.cleaning.reason == "drift"
        assert report.cleaning.removed_pairs > 0
        assert report.cleaning.rounds >= 1
        assert len(report.cleaning.round_stats) == report.cleaning.rounds

    def test_forced_clean(self, service_corpus):
        pipeline = make_pipeline()
        session = pipeline.session(policy=IngestPolicy.never())
        report = session.ingest(
            next(service_corpus.batches(600)), force_clean=True
        )
        assert report.cleaning is not None
        assert report.cleaning.reason == "forced"
        assert session.staleness == 0


class TestDurabilityGuards:
    def test_resume_requires_checkpoint_dir(self):
        pipeline = make_pipeline()
        with pytest.raises(ServiceError):
            pipeline.session(resume=True)

    def test_checkpoint_requires_store(self):
        pipeline = make_pipeline()
        session = pipeline.session()
        with pytest.raises(ServiceError):
            session.checkpoint()

    def test_resume_from_empty_dir_starts_fresh(self, tmp_path):
        pipeline = make_pipeline()
        session = pipeline.session(
            checkpoint_dir=tmp_path / "ckpt", resume=True
        )
        assert session.batches_ingested == 0

    def test_replay_divergence_detected(self, tmp_path, service_corpus):
        ckpt = tmp_path / "ckpt"
        pipeline = make_pipeline()
        session = pipeline.session(
            policy=IngestPolicy.never(), checkpoint_dir=ckpt
        )
        session.ingest(next(service_corpus.batches(300)))
        # Tamper with the journaled outcome: replay must notice the
        # extraction no longer reproduces it.
        import json

        path = ckpt / "journal.jsonl"
        entry = json.loads(path.read_text().splitlines()[0])
        entry["report"]["total_pairs"] += 1
        path.write_text(json.dumps(entry) + "\n")
        with pytest.raises(ServiceError, match="diverged"):
            make_pipeline().session(checkpoint_dir=ckpt, resume=True)
