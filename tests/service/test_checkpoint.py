"""Tests for the checkpoint store (snapshots + journal lifecycle)."""

from __future__ import annotations

import json

import pytest

from repro.corpus import Sentence
from repro.errors import ServiceError
from repro.kb import KnowledgeBase
from repro.service import CheckpointStore
from repro.service.checkpoint import CHECKPOINT_VERSION


def _kb() -> KnowledgeBase:
    kb = KnowledgeBase()
    kb.add_extraction(0, "animal", ("dog", "cat"), iteration=1)
    return kb


def _sentences() -> list[Sentence]:
    return [
        Sentence(
            sid=0, surface="animals such as dog and cat",
            concepts=("animal",), instances=("dog", "cat"),
        ),
        Sentence(
            sid=1, surface="food from animals such as pork",
            concepts=("food", "animal"), instances=("pork",),
        ),
    ]


class TestCheckpointStore:
    def test_empty_store_has_no_state(self, tmp_path):
        store = CheckpointStore(tmp_path / "ckpt")
        assert not store.has_state()
        assert store.load_snapshot() is None

    def test_journal_alone_counts_as_state(self, tmp_path):
        store = CheckpointStore(tmp_path / "ckpt")
        store.journal.append({"seq": 1, "type": "batch"})
        assert store.has_state()

    def test_snapshot_roundtrip(self, tmp_path):
        store = CheckpointStore(tmp_path / "ckpt")
        kb = _kb()
        store.save_snapshot(
            seq=3, kb=kb, sentences=_sentences(), meta={"iteration": 2}
        )
        loaded = store.load_snapshot()
        assert loaded is not None
        loaded_kb, sentences, meta = loaded
        assert set(loaded_kb.pairs()) == set(kb.pairs())
        assert [s.sid for s in sentences] == [0, 1]
        assert sentences[1].concepts == ("food", "animal")
        assert meta["seq"] == 3
        assert meta["iteration"] == 2
        assert meta["checkpoint_version"] == CHECKPOINT_VERSION

    def test_snapshot_resets_journal(self, tmp_path):
        store = CheckpointStore(tmp_path / "ckpt")
        store.journal.append({"seq": 1, "type": "batch"})
        store.save_snapshot(seq=1, kb=_kb(), sentences=[], meta={})
        assert list(store.journal.entries()) == []

    def test_new_snapshot_replaces_old(self, tmp_path):
        store = CheckpointStore(tmp_path / "ckpt")
        store.save_snapshot(seq=1, kb=_kb(), sentences=[], meta={})
        store.save_snapshot(seq=2, kb=_kb(), sentences=[], meta={})
        _, _, meta = store.load_snapshot()
        assert meta["seq"] == 2
        snapshots = [
            p.name for p in store.directory.glob("snapshot-*") if p.is_dir()
        ]
        assert snapshots == ["snapshot-2"]

    def test_dangling_current_pointer_raises(self, tmp_path):
        store = CheckpointStore(tmp_path / "ckpt")
        (store.directory / "CURRENT").write_text("snapshot-9\n")
        with pytest.raises(ServiceError):
            store.load_snapshot()

    def test_wrong_checkpoint_version_raises(self, tmp_path):
        store = CheckpointStore(tmp_path / "ckpt")
        store.save_snapshot(seq=1, kb=_kb(), sentences=[], meta={})
        snapshot = store.directory / "snapshot-1"
        meta = json.loads((snapshot / "META.json").read_text())
        meta["checkpoint_version"] = 99
        (snapshot / "META.json").write_text(json.dumps(meta))
        with pytest.raises(ServiceError):
            store.load_snapshot()

    def test_corrupt_meta_raises(self, tmp_path):
        store = CheckpointStore(tmp_path / "ckpt")
        store.save_snapshot(seq=1, kb=_kb(), sentences=[], meta={})
        (store.directory / "snapshot-1" / "META.json").write_text("{broken")
        with pytest.raises(ServiceError):
            store.load_snapshot()
