"""Streaming ↔ batch equivalence.

The acceptance invariant for the streaming subsystem: a session fed the
full corpus as one batch, with cleaning forced, must reproduce the batch
pipeline (``Pipeline.extract()`` + ``DPCleaner.clean()``) bit-identically
— same KB bytes, same removed-pair set, same per-round cleaner counters.
Extraction alone must match :class:`SemanticIterativeExtractor` exactly,
including the iteration log.
"""

from __future__ import annotations

import pytest

from repro.cleaning import DPCleaner
from repro.extraction import IncrementalExtractor, SemanticIterativeExtractor
from repro.kb.serialize import save_kb
from repro.service import IngestPolicy

from .conftest import make_pipeline


def _kb_bytes(kb, tmp_path, name):
    path = tmp_path / f"{name}.jsonl"
    save_kb(kb, path)
    return path.read_bytes()


@pytest.fixture(scope="module")
def batch_reference(service_corpus, tmp_path_factory):
    """The classic batch run: full extraction, then one cleaning pass."""
    pipeline = make_pipeline()
    extraction = pipeline.extract()
    result = DPCleaner(pipeline.detect_fn(), pipeline.config.cleaning).clean(
        extraction.kb, extraction.corpus
    )
    tmp = tmp_path_factory.mktemp("batch-ref")
    return {
        "extraction": extraction,
        "result": result,
        "kb_bytes": _kb_bytes(extraction.kb, tmp, "ref"),
    }


class TestExtractionEquivalence:
    def test_one_batch_matches_batch_extractor(self, service_corpus):
        config = make_pipeline().config.extraction
        batch = SemanticIterativeExtractor(config).run(service_corpus)
        incremental = IncrementalExtractor(config)
        incremental.ingest(service_corpus)
        streamed = incremental.result()
        assert streamed.iterations == batch.iterations
        assert streamed.log == batch.log
        assert set(streamed.kb.pairs()) == set(batch.kb.pairs())
        assert streamed.kb.version == batch.kb.version
        ref = {r.rid: r for r in batch.kb.records(include_inactive=True)}
        got = {r.rid: r for r in streamed.kb.records(include_inactive=True)}
        assert set(ref) == set(got)
        for rid, record in ref.items():
            assert got[rid].concept == record.concept
            assert got[rid].instances == record.instances
            assert got[rid].triggers == record.triggers
            assert got[rid].iteration == record.iteration

    def test_many_small_batches_converge(self, service_corpus):
        """Multi-batch extraction covers the same sentences as one-shot.

        Bit-identity is a single-batch property: with many small batches
        the visible snapshot grows in a different order, so an ambiguous
        sentence may legitimately attach to a different candidate concept.
        What must still hold: the identical core (iteration-1 commits are
        order-independent), every sentence resolved exactly once, and the
        same overall sentence coverage as the one-shot run.
        """
        config = make_pipeline().config.extraction
        batch = SemanticIterativeExtractor(config).run(service_corpus)
        incremental = IncrementalExtractor(config)
        for chunk in service_corpus.batches(250):
            incremental.ingest(chunk)
        batch_core = {
            (r.sid, r.concept, r.instances)
            for r in batch.kb.records() if r.iteration == 1
        }
        streamed_core = {
            (r.sid, r.concept, r.instances)
            for r in incremental.kb.records() if r.iteration == 1
        }
        assert streamed_core == batch_core
        batch_sids = [r.sid for r in batch.kb.records(include_inactive=True)]
        streamed_sids = [
            r.sid for r in incremental.kb.records(include_inactive=True)
        ]
        assert len(streamed_sids) == len(set(streamed_sids))
        assert set(streamed_sids) == set(batch_sids)
        assert set(incremental.unresolved_sids()) == set(
            batch.unresolved_sids
        )


class TestCleaningEquivalence:
    def test_single_batch_forced_clean_is_bit_identical(
        self, service_corpus, batch_reference, tmp_path
    ):
        pipeline = make_pipeline()
        session = pipeline.session(policy=IngestPolicy.never())
        report = session.ingest(service_corpus, force_clean=True)
        reference = batch_reference["result"]
        assert report.cleaning is not None
        assert session.kb.removed_pairs() == (
            batch_reference["extraction"].kb.removed_pairs()
        )
        assert report.cleaning.removed_pairs == reference.num_removed
        assert report.cleaning.rounds == reference.rounds
        ref_rounds = reference.details["rounds"]
        for got, ref in zip(report.cleaning.round_stats, ref_rounds):
            assert got["round_index"] == ref.round_index
            assert got["intentional_dps"] == ref.intentional_dps
            assert got["accidental_dps"] == ref.accidental_dps
            assert got["records_rolled_back"] == ref.records_rolled_back
            assert got["pairs_removed"] == ref.pairs_removed
            assert got["sentence_checks"] == len(ref.sentence_checks)
        assert _kb_bytes(session.kb, tmp_path, "session") == (
            batch_reference["kb_bytes"]
        )
        assert session.kb.version == batch_reference["extraction"].kb.version

    def test_every_batch_policy_cleans_each_batch(self, service_corpus):
        pipeline = make_pipeline()
        session = pipeline.session(policy=IngestPolicy.every_batch())
        reports = [session.ingest(b) for b in service_corpus.batches(500)]
        assert all(r.cleaning is not None for r in reports)
        assert session.cleanings == len(reports)
