"""Shared fixtures for the streaming-service tests.

One small pipeline configuration used everywhere, so the batch reference
run and the streaming/crash-resume runs are always comparable.
"""

from __future__ import annotations

import pytest

from repro.experiments.pipeline import Pipeline, experiment_config
from repro.world.presets import paper_world


SCALE = 0.5
SENTENCES = 1500
SEED = 20140324


def make_pipeline() -> Pipeline:
    """A fresh small pipeline (independent caches, identical corpus)."""
    preset = paper_world(seed=SEED, scale=SCALE)
    config = experiment_config(
        num_sentences=SENTENCES, seed=SEED, profiles=preset.profiles
    )
    return Pipeline(preset=preset, config=config)


@pytest.fixture(scope="session")
def service_corpus():
    return make_pipeline().corpus()
