"""Crash-resume drills: killed sessions must resume bit-identically.

The durability invariant: whatever instant the process dies at —
mid-journal-append (torn record), between batches, right after a snapshot
— resuming from ``checkpoint + journal replay`` and ingesting the
remaining batches produces a byte-identical serialized KB and identical
per-batch reports versus a session that was never interrupted.
"""

from __future__ import annotations

import pytest

from repro.kb.serialize import save_kb
from repro.service import CheckpointStore, IngestPolicy

from .conftest import make_pipeline


POLICY = IngestPolicy(
    staleness_threshold=600, drift_threshold=0.08, min_new_pairs=10
)
BATCH_SIZE = 400


def _kb_bytes(kb, tmp_path, name):
    path = tmp_path / f"{name}.jsonl"
    save_kb(kb, path)
    return path.read_bytes()


@pytest.fixture(scope="module")
def batches(service_corpus):
    return list(service_corpus.batches(BATCH_SIZE))


@pytest.fixture(scope="module")
def uninterrupted(batches, tmp_path_factory):
    """The reference: one session, never killed."""
    session = make_pipeline().session(policy=POLICY)
    for batch in batches:
        session.ingest(batch)
    tmp = tmp_path_factory.mktemp("uninterrupted")
    return {
        "kb_bytes": _kb_bytes(session.kb, tmp, "ref"),
        "reports": [r.to_dict() for r in session.reports],
        "stats": session.stats(),
    }


def _resume_and_finish(ckpt, batches, tmp_path, uninterrupted):
    session = make_pipeline().session(
        policy=POLICY, checkpoint_dir=ckpt, resume=True
    )
    for batch in batches[session.batches_ingested:]:
        session.ingest(batch)
    assert _kb_bytes(session.kb, tmp_path, "resumed") == (
        uninterrupted["kb_bytes"]
    )
    assert [r.to_dict() for r in session.reports] == (
        uninterrupted["reports"]
    )
    assert session.stats() == uninterrupted["stats"]
    return session


class TestCrashResume:
    def test_killed_mid_journal_append(self, batches, tmp_path,
                                       uninterrupted):
        """Die while appending batch 4's journal record (torn tail)."""
        ckpt = tmp_path / "ckpt"
        session = make_pipeline().session(
            policy=POLICY, checkpoint_dir=ckpt, checkpoint_every=2
        )
        for batch in batches[:3]:
            session.ingest(batch)
        del session  # the process is gone; only the directory survives
        with open(CheckpointStore(ckpt).journal.path, "a",
                  encoding="utf-8") as handle:
            handle.write('{"seq": 4, "type": "batch", "sent')
        _resume_and_finish(ckpt, batches, tmp_path, uninterrupted)

    def test_killed_after_committed_batch(self, batches, tmp_path,
                                          uninterrupted):
        """Die cleanly between batches: journal tail fully committed."""
        ckpt = tmp_path / "ckpt"
        session = make_pipeline().session(
            policy=POLICY, checkpoint_dir=ckpt, checkpoint_every=2
        )
        for batch in batches[:3]:
            session.ingest(batch)
        del session
        _resume_and_finish(ckpt, batches, tmp_path, uninterrupted)

    def test_killed_with_last_record_dropped(self, batches, tmp_path,
                                             uninterrupted):
        """The final journal record never hit the disk at all.

        The batch was applied in memory but its commit record is absent,
        so on resume the session re-ingests that batch from the caller —
        exactly the at-least-once contract — and still converges.
        """
        ckpt = tmp_path / "ckpt"
        session = make_pipeline().session(
            policy=POLICY, checkpoint_dir=ckpt, checkpoint_every=2
        )
        for batch in batches[:3]:
            session.ingest(batch)
        del session
        store = CheckpointStore(ckpt)
        assert store.journal.truncate_last_entry()
        resumed = make_pipeline().session(
            policy=POLICY, checkpoint_dir=ckpt, resume=True
        )
        # Batch 3's commit record is gone: only two batches survive.
        assert resumed.batches_ingested == 2
        for batch in batches[2:]:
            resumed.ingest(batch)
        assert _kb_bytes(resumed.kb, tmp_path, "resumed") == (
            uninterrupted["kb_bytes"]
        )
        assert [r.to_dict() for r in resumed.reports] == (
            uninterrupted["reports"]
        )

    def test_killed_right_after_snapshot(self, batches, tmp_path,
                                         uninterrupted):
        """Die immediately after a snapshot published (empty journal)."""
        ckpt = tmp_path / "ckpt"
        session = make_pipeline().session(
            policy=POLICY, checkpoint_dir=ckpt
        )
        for batch in batches[:2]:
            session.ingest(batch)
        session.checkpoint()
        del session
        _resume_and_finish(ckpt, batches, tmp_path, uninterrupted)

    def test_journal_only_resume(self, batches, tmp_path, uninterrupted):
        """No snapshot ever taken: the journal alone rebuilds everything."""
        ckpt = tmp_path / "ckpt"
        session = make_pipeline().session(
            policy=POLICY, checkpoint_dir=ckpt, checkpoint_every=0
        )
        for batch in batches[:3]:
            session.ingest(batch)
        del session
        _resume_and_finish(ckpt, batches, tmp_path, uninterrupted)

    def test_double_crash(self, batches, tmp_path, uninterrupted):
        """Crash, resume, crash again mid-append, resume again."""
        ckpt = tmp_path / "ckpt"
        session = make_pipeline().session(
            policy=POLICY, checkpoint_dir=ckpt, checkpoint_every=1
        )
        session.ingest(batches[0])
        del session
        second = make_pipeline().session(
            policy=POLICY, checkpoint_dir=ckpt, resume=True
        )
        second.ingest(batches[1])
        second.ingest(batches[2])
        del second
        with open(CheckpointStore(ckpt).journal.path, "a",
                  encoding="utf-8") as handle:
            handle.write('{"torn')
        _resume_and_finish(ckpt, batches, tmp_path, uninterrupted)
