"""Crash drill for the worklist under drift-triggered cleaning rollbacks.

The tentpole hazard: the evidence index caches which ``(concept,
instance)`` pairs each pending sentence waits on, so a cleaning pass that
rolls knowledge back underneath the extractor must shrink the tracked
snapshot — otherwise resolution keeps triggering off removed pairs, and
a pair re-extracted after rollback would be silently treated as
already-known (a missed wake).  These drills pin both directions, then
repeat the crash-resume invariant on a drift-heavy schedule where
cleanings interleave with the worklist's index state.
"""

from __future__ import annotations

import pytest

from repro.config import ExtractionConfig
from repro.corpus.sentence import Sentence
from repro.extraction import IncrementalExtractor
from repro.kb import IsAPair
from repro.kb.serialize import save_kb
from repro.service import IngestPolicy

from .conftest import make_pipeline

# Drift-only triggers: every cleaning in these drills is caused by the
# measured f2 conflict signal, never by the staleness schedule.
POLICY = IngestPolicy(
    staleness_threshold=None, drift_threshold=0.05, min_new_pairs=10
)
BATCH_SIZE = 300


def _sentence(sid, concepts, instances):
    return Sentence(sid=sid, surface=f"s{sid}", concepts=concepts,
                    instances=instances)


def _kb_bytes(kb, tmp_path, name):
    path = tmp_path / f"{name}.jsonl"
    save_kb(kb, path)
    return path.read_bytes()


class TestResyncInvalidation:
    """Rollback semantics at the extractor level."""

    def test_no_resolution_off_rolled_back_pairs(self):
        extractor = IncrementalExtractor(ExtractionConfig())
        # Batch 1: "pork isA animal" becomes visible; sentence 1 stays
        # pending (its only candidate evidence is ham/pork under food).
        extractor.ingest([
            _sentence(0, ("animal",), ("dog", "pork")),
            _sentence(1, ("food", "plant"), ("pork", "ham")),
        ])
        assert extractor.unresolved_sids() == (1,)

        # Rollback removes animal/pork out-of-band (what a cleaning pass
        # does), and the session resyncs the dirty concepts.
        version_before = extractor.kb.version
        extractor.kb.remove_pair(IsAPair("animal", "pork"))
        extractor.resync_visible(
            extractor.kb.dirty_concepts_since(version_before)
        )
        assert "pork" not in extractor.worklist.visible.get(
            "animal", frozenset()
        )

        # Batch 2 makes "pork isA food" visible: sentence 1 must now
        # resolve to food — and only via the fresh pair, not the removed
        # one (which would have required no new evidence at all).
        extractor.ingest([_sentence(2, ("food",), ("bread", "pork"))])
        assert extractor.unresolved_sids() == ()
        assert extractor.kb.has_instance("food", "ham")
        assert not extractor.kb.has_instance("animal", "ham")

    def test_rollback_then_reextraction_wakes_waiters(self):
        extractor = IncrementalExtractor(ExtractionConfig())
        extractor.ingest([
            _sentence(0, ("animal",), ("dog", "pork")),
            _sentence(1, ("animal", "food"), ("pork", "ham")),
        ])
        # Sentence 1 resolved off animal/pork; roll the whole cascade back.
        version_before = extractor.kb.version
        for pair in (IsAPair("animal", "pork"), IsAPair("animal", "ham")):
            if pair in extractor.kb:
                extractor.kb.remove_pair(pair)
        extractor.resync_visible(
            extractor.kb.dirty_concepts_since(version_before)
        )

        # Re-extraction of animal/pork is a *fresh* visibility transition:
        # the still-pending pool must be woken by it, not starved by a
        # stale "already visible" snapshot.
        extractor.ingest([_sentence(2, ("food", "plant"), ("pork", "ham"))])
        assert 2 in extractor.unresolved_sids()
        extractor.ingest([_sentence(3, ("food",), ("cheese", "pork"))])
        assert extractor.unresolved_sids() == ()
        assert extractor.kb.has_instance("food", "ham")


@pytest.fixture(scope="module")
def batches(service_corpus):
    return list(service_corpus.batches(BATCH_SIZE))


@pytest.fixture(scope="module")
def uninterrupted(batches, tmp_path_factory):
    """The reference: drift-cleaned stream, never killed."""
    session = make_pipeline().session(policy=POLICY)
    for batch in batches:
        session.ingest(batch)
    tmp = tmp_path_factory.mktemp("worklist-ref")
    return {
        "kb_bytes": _kb_bytes(session.kb, tmp, "ref"),
        "reports": [r.to_dict() for r in session.reports],
        "stats": session.stats(),
        "cleanings": session.cleanings,
    }


class TestDriftCleaningCrashDrill:
    def test_reference_run_actually_cleans_on_drift(self, uninterrupted):
        assert uninterrupted["cleanings"] > 0
        reasons = [
            r["cleaning"]["reason"]
            for r in uninterrupted["reports"]
            if r["cleaning"]
        ]
        assert reasons and all(reason == "drift" for reason in reasons)

    def test_resume_after_drift_clean_matches_bit_for_bit(
        self, batches, tmp_path, uninterrupted
    ):
        """Kill right after the first drift-triggered clean, then resume.

        The resumed session rebuilds the worklist with a conservatively
        woken pool (attempt history is not checkpointed) and must still
        converge byte-identically — spurious wakes are sound, missed
        wakes would diverge here.
        """
        ckpt = tmp_path / "ckpt"
        session = make_pipeline().session(
            policy=POLICY, checkpoint_dir=ckpt, checkpoint_every=1
        )
        cleaned_at = None
        for index, batch in enumerate(batches):
            report = session.ingest(batch)
            if report.cleaning is not None:
                cleaned_at = index
                break
        assert cleaned_at is not None, "drill needs a drift-triggered clean"
        assert cleaned_at < len(batches) - 1, "need batches after the clean"
        del session  # crash

        resumed = make_pipeline().session(
            policy=POLICY, checkpoint_dir=ckpt, resume=True
        )
        for batch in batches[resumed.batches_ingested:]:
            resumed.ingest(batch)
        assert _kb_bytes(resumed.kb, tmp_path, "resumed") == (
            uninterrupted["kb_bytes"]
        )
        assert [r.to_dict() for r in resumed.reports] == (
            uninterrupted["reports"]
        )
        assert resumed.stats() == uninterrupted["stats"]

    def test_journal_replay_through_clean_matches(
        self, batches, tmp_path, uninterrupted
    ):
        """No snapshot at all: replaying journaled rollback ops must leave
        the worklist's snapshot consistent for the live batches after."""
        ckpt = tmp_path / "ckpt"
        session = make_pipeline().session(
            policy=POLICY, checkpoint_dir=ckpt, checkpoint_every=0
        )
        ingested = 0
        for batch in batches:
            report = session.ingest(batch)
            ingested += 1
            if report.cleaning is not None:
                break
        del session  # crash with only the journal on disk

        resumed = make_pipeline().session(
            policy=POLICY, checkpoint_dir=ckpt, resume=True
        )
        assert resumed.batches_ingested == ingested
        assert resumed.cleanings > 0
        for batch in batches[ingested:]:
            resumed.ingest(batch)
        assert _kb_bytes(resumed.kb, tmp_path, "replayed") == (
            uninterrupted["kb_bytes"]
        )
        assert resumed.stats() == uninterrupted["stats"]
