"""Tests for the redo journal and journaled cleaning operations."""

from __future__ import annotations

import json

import pytest

from repro.errors import ServiceError
from repro.kb import IsAPair, KnowledgeBase, RollbackEngine
from repro.service import Journal, JournalingRollbackEngine, replay_clean_ops


def _entry(seq: int, **extra) -> dict:
    return {"seq": seq, "type": "batch", **extra}


class TestJournal:
    def test_append_and_replay(self, tmp_path):
        journal = Journal(tmp_path / "j.jsonl")
        journal.append(_entry(1, payload="a"))
        journal.append(_entry(2, payload="b"))
        entries = list(journal.entries())
        assert [e["seq"] for e in entries] == [1, 2]
        assert entries[0]["payload"] == "a"

    def test_missing_file_is_empty(self, tmp_path):
        journal = Journal(tmp_path / "absent.jsonl")
        assert list(journal.entries()) == []

    def test_entry_without_seq_rejected(self, tmp_path):
        journal = Journal(tmp_path / "j.jsonl")
        with pytest.raises(ServiceError):
            journal.append({"type": "batch"})

    def test_seq_guard_skips_covered_entries(self, tmp_path):
        journal = Journal(tmp_path / "j.jsonl")
        for seq in (1, 2, 3):
            journal.append(_entry(seq))
        assert [e["seq"] for e in journal.entries(after_seq=2)] == [3]

    def test_torn_tail_dropped_silently(self, tmp_path):
        journal = Journal(tmp_path / "j.jsonl")
        journal.append(_entry(1))
        journal.append(_entry(2))
        with open(journal.path, "a", encoding="utf-8") as handle:
            handle.write('{"seq": 3, "type": "bat')  # crash mid-append
        assert [e["seq"] for e in journal.entries()] == [1, 2]

    def test_mid_file_corruption_raises(self, tmp_path):
        journal = Journal(tmp_path / "j.jsonl")
        journal.append(_entry(1))
        journal.append(_entry(2))
        lines = journal.path.read_text().splitlines()
        lines[0] = "{broken"
        journal.path.write_text("\n".join(lines) + "\n")
        with pytest.raises(ServiceError):
            list(journal.entries())

    def test_reset_drops_everything(self, tmp_path):
        journal = Journal(tmp_path / "j.jsonl")
        journal.append(_entry(1))
        journal.reset()
        assert list(journal.entries()) == []

    def test_truncate_last_entry(self, tmp_path):
        journal = Journal(tmp_path / "j.jsonl")
        journal.append(_entry(1))
        journal.append(_entry(2))
        assert journal.truncate_last_entry()
        assert [e["seq"] for e in journal.entries()] == [1]
        assert journal.truncate_last_entry()
        assert not journal.truncate_last_entry()

    def test_entries_are_compact_json_lines(self, tmp_path):
        journal = Journal(tmp_path / "j.jsonl")
        journal.append(_entry(1, payload=[1, 2]))
        line = journal.path.read_text().splitlines()[0]
        assert json.loads(line) == {"seq": 1, "type": "batch",
                                    "payload": [1, 2]}


def _kb() -> KnowledgeBase:
    kb = KnowledgeBase()
    kb.add_extraction(0, "animal", ("dog", "chicken"), iteration=1)
    kb.add_extraction(1, "food", ("pork", "beef"), iteration=1)
    chicken = IsAPair("animal", "chicken")
    kb.add_extraction(
        2, "animal", ("pork", "beef"), triggers=(chicken,), iteration=2
    )
    return kb


class TestJournalingRollbackEngine:
    def test_records_top_level_ops_only(self):
        kb = _kb()
        engine = JournalingRollbackEngine(kb)
        engine.rollback_pair(IsAPair("animal", "chicken"))
        # The pair rollback cascades into record rollbacks internally,
        # but only the top-level request is journaled.
        assert engine.ops == [["pair", "animal", "chicken"]]

    def test_records_record_rollbacks(self):
        kb = _kb()
        engine = JournalingRollbackEngine(kb)
        engine.rollback_records([1])
        assert engine.ops == [["records", [1]]]

    def test_replay_reproduces_mutations(self):
        live = _kb()
        engine = JournalingRollbackEngine(live)
        engine.rollback_pair(IsAPair("animal", "chicken"))
        engine.rollback_records([1])

        replayed = _kb()
        replay_clean_ops(replayed, engine.ops)
        assert set(live.pairs()) == set(replayed.pairs())
        assert live.removed_pairs() == replayed.removed_pairs()
        assert live.version == replayed.version

    def test_replay_matches_plain_engine(self):
        reference = _kb()
        RollbackEngine(reference).rollback_pair(IsAPair("animal", "chicken"))
        replayed = _kb()
        replay_clean_ops(replayed, [["pair", "animal", "chicken"]])
        assert set(reference.pairs()) == set(replayed.pairs())
        assert reference.version == replayed.version

    def test_unknown_op_rejected(self):
        with pytest.raises(ServiceError):
            replay_clean_ops(_kb(), [["warp", 1]])
