"""Cross-cutting, property-based invariants over randomly built worlds.

Hypothesis drives the world/corpus parameters; each property asserts an
invariant the whole system relies on:

* extraction never invents pairs for concepts absent from the sentences;
* every non-root record's triggers were known before its iteration;
* rollback never leaves dangling evidence counts;
* the KB's instance↔concept indexes stay mutually consistent.
"""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.config import ConceptProfile, CorpusConfig, ExtractionConfig
from repro.corpus import generate_corpus
from repro.extraction import SemanticIterativeExtractor
from repro.kb import RollbackEngine
from repro.world import toy_world

_SETTINGS = dict(
    max_examples=8,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def _pipeline(seed, sentences, ambiguous_rate, chunks):
    preset = toy_world(seed=seed % 50)
    config = CorpusConfig(
        num_sentences=sentences,
        profiles=preset.profiles,
        default_profile=ConceptProfile(ambiguous_rate=ambiguous_rate),
    )
    corpus = generate_corpus(preset.world, config, seed=seed)
    result = SemanticIterativeExtractor(
        ExtractionConfig(stream_chunks=chunks)
    ).run(corpus)
    return preset, corpus, result


world_params = st.tuples(
    st.integers(min_value=0, max_value=10_000),       # seed
    st.integers(min_value=200, max_value=900),        # sentences
    st.floats(min_value=0.1, max_value=0.8),          # ambiguous rate
    st.integers(min_value=1, max_value=6),            # stream chunks
)


class TestExtractionInvariants:
    @given(world_params)
    @settings(**_SETTINGS)
    def test_pairs_come_from_sentences(self, params):
        _preset, corpus, result = _pipeline(*params)
        allowed: dict[str, set[str]] = {}
        for sentence in corpus:
            for concept in sentence.concepts:
                allowed.setdefault(concept, set()).update(sentence.instances)
        for pair in result.kb.pairs():
            assert pair.instance in allowed.get(pair.concept, set())

    @given(world_params)
    @settings(**_SETTINGS)
    def test_triggers_precede_their_records(self, params):
        _preset, _corpus, result = _pipeline(*params)
        kb = result.kb
        for record in kb.records():
            if record.is_root:
                continue
            for trigger in record.triggers:
                assert kb.first_iteration(trigger) < record.iteration

    @given(world_params)
    @settings(**_SETTINGS)
    def test_counts_match_active_records(self, params):
        _preset, _corpus, result = _pipeline(*params)
        kb = result.kb
        for pair in kb.pairs():
            producing = kb.records_for_pair(pair)
            assert kb.count(pair) == len(producing)
            assert all(record.active for record in producing)

    @given(world_params)
    @settings(**_SETTINGS)
    def test_indexes_consistent(self, params):
        _preset, _corpus, result = _pipeline(*params)
        kb = result.kb
        for concept in kb.concepts():
            for instance in kb.instances_of(concept):
                assert concept in kb.concepts_with_instance(instance)

    @given(world_params)
    @settings(**_SETTINGS)
    def test_log_totals_monotone(self, params):
        _preset, _corpus, result = _pipeline(*params)
        totals = result.log.cumulative_pairs()
        assert totals == sorted(totals)


class TestRollbackInvariants:
    @given(world_params)
    @settings(**_SETTINGS)
    def test_rollback_everything_empties_derived_pairs(self, params):
        _preset, _corpus, result = _pipeline(*params)
        kb = result.kb
        engine = RollbackEngine(kb)
        ambiguous_records = [r.rid for r in kb.records() if not r.is_root]
        engine.rollback_records(ambiguous_records)
        # Only iteration-1 knowledge may survive.
        for pair in kb.pairs():
            assert kb.first_iteration(pair) == 1
        for pair in kb.pairs():
            assert kb.count(pair) >= 1

    @given(world_params)
    @settings(**_SETTINGS)
    def test_rollback_preserves_index_consistency(self, params):
        _preset, _corpus, result = _pipeline(*params)
        kb = result.kb
        engine = RollbackEngine(kb)
        victims = [r.rid for r in kb.records() if not r.is_root][:20]
        engine.rollback_records(victims)
        for concept in kb.concepts():
            for instance in kb.instances_of(concept):
                assert concept in kb.concepts_with_instance(instance)
        removed = kb.removed_pairs()
        for pair in removed:
            assert pair not in kb
