"""Tests for the tokenizer/normaliser."""

from __future__ import annotations

from hypothesis import given
from hypothesis import strategies as st

from repro.nlp.tokenizer import detokenize, normalize, tokenize


class TestNormalize:
    def test_lowercases(self):
        assert normalize("New York") == "new york"

    def test_collapses_whitespace(self):
        assert normalize("  a   b  ") == "a b"

    def test_strips_punctuation(self):
        assert normalize("dogs, ") == "dogs"

    def test_idempotent(self):
        assert normalize(normalize("  New   York. ")) == normalize("  New   York. ")

    @given(st.text(alphabet="abc XY.,", max_size=40))
    def test_never_leading_trailing_space(self, text):
        result = normalize(text)
        assert result == result.strip()


class TestTokenize:
    def test_basic(self):
        assert tokenize("Animals such as dogs, cats.") == [
            "Animals", "such", "as", "dogs", "cats",
        ]

    def test_keeps_hyphens_and_apostrophes(self):
        assert tokenize("well-known u.s. state's") == ["well-known", "u.s.", "state's"]

    def test_roundtrip_simple(self):
        tokens = ["animals", "such", "as", "dogs"]
        assert tokenize(detokenize(tokens)) == tokens
