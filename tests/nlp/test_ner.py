"""Tests for the simulated NER."""

from __future__ import annotations

import pytest

from repro.nlp.ner import SimulatedNER
from repro.nlp.types import COARSE_TYPES, EntityType


def _gazetteer():
    return {
        "paris": EntityType.LOCATION,
        "acme": EntityType.ORGANIZATION,
        "alice": EntityType.PERSON,
        "chicken": EntityType.MISC,
    }


class TestSimulatedNER:
    def test_perfect_accuracy_returns_truth(self):
        ner = SimulatedNER(_gazetteer(), accuracy=1.0)
        assert ner.tag("paris") is EntityType.LOCATION
        assert ner.tag("alice") is EntityType.PERSON

    def test_unknown_surface_is_misc(self):
        ner = SimulatedNER(_gazetteer(), accuracy=1.0)
        assert ner.tag("syngapore") is EntityType.MISC

    def test_zero_accuracy_always_wrong(self):
        ner = SimulatedNER(_gazetteer(), accuracy=0.0)
        assert ner.tag("paris") is not EntityType.LOCATION

    def test_confusion_is_deterministic_per_surface(self):
        ner = SimulatedNER(_gazetteer(), accuracy=0.5, seed=3)
        tags = {ner.tag("paris") for _ in range(10)}
        assert len(tags) == 1

    def test_confused_tag_is_valid_type(self):
        ner = SimulatedNER(_gazetteer(), accuracy=0.0, seed=3)
        assert ner.tag("acme") in COARSE_TYPES

    def test_accuracy_statistics(self):
        gazetteer = {f"name{i}": EntityType.PERSON for i in range(800)}
        ner = SimulatedNER(gazetteer, accuracy=0.9, seed=0)
        correct = sum(ner.tag(name) is EntityType.PERSON for name in gazetteer)
        assert 0.85 < correct / len(gazetteer) < 0.95

    def test_tag_many(self):
        ner = SimulatedNER(_gazetteer(), accuracy=1.0)
        tags = ner.tag_many(["paris", "nope"])
        assert tags == {"paris": EntityType.LOCATION, "nope": EntityType.MISC}

    def test_bad_accuracy_rejected(self):
        with pytest.raises(ValueError):
            SimulatedNER({}, accuracy=1.2)

    def test_container_protocol(self):
        ner = SimulatedNER(_gazetteer())
        assert "paris" in ner
        assert "ghost" not in ner
        assert len(ner) == 4
