"""Tests for core-set similarity."""

from __future__ import annotations

import math

import pytest

from repro.concepts import CoreSimilarity
from repro.kb import KnowledgeBase


def _kb():
    kb = KnowledgeBase()
    kb.add_extraction(0, "animal", ("dog", "cat", "chicken"), iteration=1)
    kb.add_extraction(1, "food", ("pork", "beef", "chicken"), iteration=1)
    kb.add_extraction(2, "country", ("france", "japan", "china"), iteration=1)
    kb.add_extraction(3, "nation", ("france", "japan", "brazil"), iteration=1)
    return kb


class TestCoreSimilarity:
    def test_shared_core_instance(self):
        sim = CoreSimilarity(_kb())
        expected = 1 / math.sqrt(3 * 3)
        assert sim.similarity("animal", "food") == pytest.approx(expected)

    def test_disjoint_cores(self):
        sim = CoreSimilarity(_kb())
        assert sim.similarity("animal", "country") == 0.0

    def test_symmetry(self):
        sim = CoreSimilarity(_kb())
        assert sim.similarity("animal", "food") == sim.similarity("food", "animal")

    def test_self_similarity_is_one(self):
        sim = CoreSimilarity(_kb())
        assert sim.similarity("animal", "animal") == pytest.approx(1.0)

    def test_alias_pair_high(self):
        sim = CoreSimilarity(_kb())
        assert sim.similarity("country", "nation") == pytest.approx(2 / 3)

    def test_overlapping_finds_partners(self):
        sim = CoreSimilarity(_kb())
        assert set(sim.overlapping("animal")) == {"food"}

    def test_overlapping_pairs_unique(self):
        sim = CoreSimilarity(_kb())
        pairs = list(sim.overlapping_pairs())
        keys = [(a, b) for a, b, _ in pairs]
        assert len(set(keys)) == len(keys)
        assert ("country", "nation") in keys

    def test_min_core_size_filters(self):
        kb = _kb()
        kb.add_extraction(4, "tiny", ("x",), iteration=1)
        sim = CoreSimilarity(kb, min_core_size=2)
        assert "tiny" not in sim.concepts

    def test_only_core_counts(self):
        kb = _kb()
        # late extraction must not affect core similarity
        from repro.kb import IsAPair

        trigger = IsAPair("animal", "chicken")
        kb.add_extraction(
            5, "animal", ("france", "chicken"), triggers=(trigger,),
            iteration=2,
        )
        sim = CoreSimilarity(kb)
        assert sim.similarity("animal", "country") == 0.0

    def test_histogram(self):
        sim = CoreSimilarity(_kb())
        counts, zero_pairs = sim.similarity_histogram([0.0, 0.5, 1.01])
        assert sum(counts) == 2  # animal-food, country-nation
        assert zero_pairs == 4

    def test_histogram_pinned_on_known_kb(self):
        # animal-food = 1/3 → first bin; country-nation = 2/3 → second;
        # the remaining 4 of the C(4,2) = 6 pairs are zero-similarity.
        sim = CoreSimilarity(_kb())
        edges = [0.0, 0.25, 0.5, 0.75, 1.01]
        counts, zero_pairs = sim.similarity_histogram(edges)
        assert counts == [0, 1, 1, 0]
        assert zero_pairs == 4

    def test_histogram_edge_values_bin_left_inclusive(self):
        # A value sitting exactly on an inner edge belongs to the bin it
        # opens; values outside [first, last) are dropped.
        sim = CoreSimilarity(_kb())
        third = 1 / 3
        counts, _ = sim.similarity_histogram([third, 2 / 3, 1.0])
        assert counts == [1, 1]
        counts, _ = sim.similarity_histogram([0.4, 0.6])
        assert counts == [0]

    def test_bad_min_core_size(self):
        with pytest.raises(ValueError):
            CoreSimilarity(_kb(), min_core_size=0)
