"""Tests for the mutual-exclusion index."""

from __future__ import annotations

from repro.concepts import MutualExclusionIndex
from repro.config import SimilarityConfig
from repro.kb import KnowledgeBase


def _kb():
    kb = KnowledgeBase()
    kb.add_extraction(0, "animal", ("dog", "cat", "pig", "hen"), iteration=1)
    kb.add_extraction(1, "food", ("pork", "beef", "rice", "hen"), iteration=1)
    kb.add_extraction(
        2, "country", ("france", "japan", "china", "india"), iteration=1
    )
    kb.add_extraction(
        3, "nation", ("france", "japan", "china", "brazil"), iteration=1
    )
    kb.add_extraction(
        4, "asian country", ("japan", "china", "india"), iteration=1
    )
    return kb


def _index(exclusive=0.2, similar=0.5):
    return MutualExclusionIndex(
        _kb(),
        SimilarityConfig(
            exclusive_threshold=exclusive,
            similar_threshold=similar,
            min_core_size=1,
        ),
    )


class TestExclusion:
    def test_disjoint_concepts_exclusive(self):
        index = _index()
        assert index.exclusive("animal", "country")

    def test_self_never_exclusive(self):
        assert not _index().exclusive("animal", "animal")

    def test_shared_instance_below_threshold_still_exclusive(self):
        # animal/food share one of four core instances → sim 0.25 ≥ 0.2
        index = _index(exclusive=0.2)
        assert not index.exclusive("animal", "food")
        strict = _index(exclusive=0.3)
        assert strict.exclusive("animal", "food")

    def test_highly_similar(self):
        index = _index()
        assert index.highly_similar("country", "nation")
        assert not index.highly_similar("country", "animal")
        assert index.highly_similar("country", "country")

    def test_group_contains_similar_siblings(self):
        index = _index()
        assert "nation" in index.group("country")

    def test_propagation_blocks_exclusion_through_groups(self):
        # asian country overlaps country strongly; nation is in country's
        # group, so nation and asian country must not be exclusive even if
        # their direct cosine were low.
        index = _index()
        assert not index.exclusive("nation", "asian country")

    def test_exclusive_concepts_containing(self):
        kb = _kb()
        index = MutualExclusionIndex(
            kb,
            SimilarityConfig(
                exclusive_threshold=0.3, similar_threshold=0.5, min_core_size=1
            ),
        )
        result = index.exclusive_concepts_containing(kb, "animal", "hen")
        assert result == frozenset({"food"})

    def test_unknown_concept_group_is_singleton(self):
        index = _index()
        assert index.group("ghost") == frozenset({"ghost"})
