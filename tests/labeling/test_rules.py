"""Tests for seed-labelling RULES 1–3."""

from __future__ import annotations

import pytest

from repro.concepts import MutualExclusionIndex
from repro.config import LabelingConfig, SimilarityConfig
from repro.kb import IsAPair, KnowledgeBase
from repro.labeling import DPLabel, EvidenceIndex, SeedLabeler
from repro.labeling.labels import label_to_vector, vector_to_label


def _kb():
    """The paper's walkthrough: chicken bridges animal and food."""
    kb = KnowledgeBase()
    for sid in range(4):
        kb.add_extraction(sid, "animal", ("dog", "chicken"), iteration=1)
    for sid in range(4, 8):
        kb.add_extraction(sid, "animal", ("horse",), iteration=1)
    for sid in range(8, 12):
        kb.add_extraction(sid, "food", ("pork", "beef"), iteration=1)
    for sid in range(12, 16):
        kb.add_extraction(sid, "city", ("new york",), iteration=1)
    chicken = IsAPair("animal", "chicken")
    # chicken pulls pork and beef into animal, and (once) new york
    kb.add_extraction(
        16, "animal", ("pork", "beef", "chicken"), triggers=(chicken,),
        iteration=2,
    )
    kb.add_extraction(
        17, "animal", ("new york", "chicken"), triggers=(chicken,),
        iteration=3,
    )
    # dog triggers a clean sentence re-listing core animals
    dog = IsAPair("animal", "dog")
    kb.add_extraction(
        18, "animal", ("chicken", "dog"), triggers=(dog,), iteration=2
    )
    # horse triggers a sentence with an obscure (unevidenced) tail animal
    horse = IsAPair("animal", "horse")
    kb.add_extraction(
        19, "animal", ("emu", "horse"), triggers=(horse,), iteration=2
    )
    return kb


def _labeler(kb, rule3_mode="tolerant", k=3):
    # chicken sits in both the animal and food cores (sim 1/3), so the
    # exclusive threshold must exceed that for the pair to register.
    exclusion = MutualExclusionIndex(
        kb,
        SimilarityConfig(
            exclusive_threshold=0.4, similar_threshold=0.5, min_core_size=1
        ),
    )
    evidence = EvidenceIndex(kb, exclusion, LabelingConfig(evidence_threshold_k=k))
    return SeedLabeler(kb, exclusion, evidence, rule3_mode=rule3_mode)


def _labels(kb=None, **kwargs):
    return {
        seed.instance: seed.label
        for seed in _labeler(kb or _kb(), **kwargs).label_concept("animal")
    }


class TestRules:
    def test_rule1_chicken_is_intentional(self):
        assert _labels()["chicken"] is DPLabel.INTENTIONAL

    def test_rule2_new_york_is_accidental(self):
        assert _labels()["new york"] is DPLabel.ACCIDENTAL

    def test_rule2_cross_extracted_drift_errors_accidental(self):
        labels = _labels()
        assert labels["pork"] is DPLabel.ACCIDENTAL
        assert labels["beef"] is DPLabel.ACCIDENTAL

    def test_rule3_dog_is_non_dp(self):
        assert _labels()["dog"] is DPLabel.NON_DP

    def test_benign_trigger_of_bridge_not_intentional(self):
        # dog triggered a sentence containing chicken; chicken is evidenced
        # food, but it is also evidenced (and core) animal, so RULE 1 must
        # not incriminate dog.
        assert _labels()["dog"] is not DPLabel.INTENTIONAL

    def test_unevidenced_instances_stay_unlabelled(self):
        assert "emu" not in _labels()

    def test_tolerant_rule3_labels_horse(self):
        assert _labels()["horse"] is DPLabel.NON_DP

    def test_strict_rule3_skips_horse(self):
        # horse's sub-instance emu is not evidenced, so the paper-verbatim
        # rule refuses to label horse; the tolerant reading accepts it.
        strict = _labels(rule3_mode="strict")
        assert "horse" not in strict
        assert strict["dog"] is DPLabel.NON_DP  # all of dog's subs evidenced

    def test_bad_rule3_mode(self):
        with pytest.raises(ValueError):
            _labeler(_kb(), rule3_mode="loose")

    def test_label_all_grouping(self):
        seeds = _labeler(_kb()).label_all()
        assert len(seeds.labels_for("animal")) >= 3
        assert seeds.counts()[DPLabel.INTENTIONAL] >= 1
        assert len(seeds) == len(seeds.all_labels())


class TestLabelVectors:
    @pytest.mark.parametrize("label", list(DPLabel))
    def test_roundtrip(self, label):
        assert vector_to_label(label_to_vector(label)) is label

    def test_is_dp(self):
        assert DPLabel.INTENTIONAL.is_dp
        assert DPLabel.ACCIDENTAL.is_dp
        assert not DPLabel.NON_DP.is_dp
