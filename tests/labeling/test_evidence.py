"""Tests for evidenced correct / incorrect instances."""

from __future__ import annotations

from repro.concepts import MutualExclusionIndex
from repro.config import LabelingConfig, SimilarityConfig
from repro.kb import IsAPair, KnowledgeBase
from repro.labeling import EvidenceIndex


def _kb():
    kb = KnowledgeBase()
    for sid in range(4):  # france: 4 core sentences
        kb.add_extraction(sid, "country", ("france",), iteration=1)
    kb.add_extraction(4, "country", ("tuvalu",), iteration=1)  # rare core
    for sid in range(5, 10):
        kb.add_extraction(sid, "city", ("new york",), iteration=1)
    france = IsAPair("country", "france")
    # new york accidentally extracted once under country, in iteration 2
    kb.add_extraction(
        10, "country", ("new york", "france"), triggers=(france,), iteration=2
    )
    return kb


def _evidence(kb, k=3, verified=()):
    exclusion = MutualExclusionIndex(
        kb,
        SimilarityConfig(
            exclusive_threshold=0.05, similar_threshold=0.5, min_core_size=1
        ),
    )
    return EvidenceIndex(
        kb, exclusion, LabelingConfig(evidence_threshold_k=k),
        verified=verified,
    )


class TestEvidencedCorrect:
    def test_frequent_core_is_evidenced(self):
        evidence = _evidence(_kb())
        assert evidence.is_evidenced_correct("country", "france")

    def test_rare_core_is_not(self):
        evidence = _evidence(_kb())
        assert not evidence.is_evidenced_correct("country", "tuvalu")

    def test_verified_source_counts(self):
        evidence = _evidence(
            _kb(), verified=[IsAPair("country", "tuvalu")]
        )
        assert evidence.is_evidenced_correct("country", "tuvalu")

    def test_threshold_semantics_strictly_greater(self):
        evidence = _evidence(_kb(), k=4)
        assert not evidence.is_evidenced_correct("country", "france")

    def test_evidenced_correct_set(self):
        evidence = _evidence(_kb())
        assert evidence.evidenced_correct("city") == frozenset({"new york"})


class TestEvidencedIncorrect:
    def test_new_york_under_country(self):
        evidence = _evidence(_kb())
        assert evidence.is_evidenced_incorrect("country", "new york")

    def test_core_pairs_never_incorrect(self):
        evidence = _evidence(_kb())
        assert not evidence.is_evidenced_incorrect("country", "tuvalu")

    def test_requires_single_count(self):
        kb = _kb()
        france = IsAPair("country", "france")
        kb.add_extraction(
            11, "country", ("new york", "france"), triggers=(france,),
            iteration=3,
        )
        evidence = _evidence(kb)
        assert not evidence.is_evidenced_incorrect("country", "new york")

    def test_requires_exclusive_home(self):
        kb = KnowledgeBase()
        kb.add_extraction(0, "country", ("france",), iteration=1)
        france = IsAPair("country", "france")
        kb.add_extraction(
            1, "country", ("atlantis", "france"), triggers=(france,),
            iteration=2,
        )
        evidence = _evidence(kb)
        # atlantis exists nowhere else, so there is no contrary evidence
        assert not evidence.is_evidenced_incorrect("country", "atlantis")

    def test_missing_pair(self):
        evidence = _evidence(_kb())
        assert not evidence.is_evidenced_incorrect("country", "ghost")

    def test_evidenced_incorrect_set(self):
        evidence = _evidence(_kb())
        assert evidence.evidenced_incorrect("country") == frozenset(
            {"new york"}
        )
