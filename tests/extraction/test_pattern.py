"""Tests for the surface Hearst parser, including generator round-trips."""

from __future__ import annotations

import pytest

from repro.config import ConceptProfile, CorpusConfig
from repro.corpus import generate_corpus
from repro.extraction.pattern import HearstParser, naive_singularize


class TestNaiveSingularize:
    @pytest.mark.parametrize(
        "plural,singular",
        [
            ("dogs", "dog"),
            ("countries", "country"),
            ("asian countries", "asian country"),
            ("buses", "bus"),
            ("boxes", "box"),
            ("churches", "church"),
            ("glass", "glass"),  # -ss guarded
        ],
    )
    def test_cases(self, plural, singular):
        assert naive_singularize(plural) == singular


class TestHearstParser:
    def test_unambiguous(self):
        parser = HearstParser(concept_lexicon=["animal"])
        parsed = parser.parse("many animals such as dog, cat and pig")
        assert parsed.concepts == ("animal",)
        assert parsed.instances == ("dog", "cat", "pig")

    def test_ambiguous_orders_modifier_first(self):
        parser = HearstParser(concept_lexicon=["animal", "food"])
        parsed = parser.parse("foods from animals such as pork and beef")
        assert parsed.concepts == ("animal", "food")

    def test_misparse_attaches_to_excluded(self):
        parser = HearstParser(concept_lexicon=["animal"], entity_lexicon=["dog"])
        parsed = parser.parse("animals other than dogs such as cat")
        assert parsed.concepts == ("dog",)
        assert parsed.instances == ("cat",)

    def test_no_cue_returns_none(self):
        parser = HearstParser()
        assert parser.parse("the dog barked") is None

    def test_single_instance(self):
        parser = HearstParser(concept_lexicon=["animal"])
        parsed = parser.parse("animals such as dog")
        assert parsed.instances == ("dog",)

    def test_fallback_singularisation_without_lexicon(self):
        parser = HearstParser()
        parsed = parser.parse("popular animals such as dog and cat")
        assert parsed.concepts == ("animal",)

    def test_multiword_concept(self):
        parser = HearstParser(concept_lexicon=["asian country"])
        parsed = parser.parse("some asian countries such as japan and china")
        assert parsed.concepts == ("asian country",)


class TestRoundTrip:
    def test_generated_corpus_roundtrips(self, toy_preset):
        world = toy_preset.world
        config = CorpusConfig(
            num_sentences=600,
            profiles=toy_preset.profiles,
            default_profile=ConceptProfile(ambiguous_rate=0.5, typo_rate=0.05),
            misparse_rate=0.02,
        )
        corpus = generate_corpus(world, config, seed=23)
        parser = HearstParser(
            concept_lexicon=world.concepts.keys(),
            entity_lexicon=world.instances.keys(),
        )
        for sentence in corpus:
            parsed = parser.parse(sentence.surface)
            assert parsed is not None, sentence.surface
            assert parsed.concepts == sentence.concepts, sentence.surface
            assert parsed.instances == sentence.instances, sentence.surface
