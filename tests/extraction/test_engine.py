"""Tests for the iterative extraction engine."""

from __future__ import annotations

import pytest

from repro.config import ConceptProfile, CorpusConfig, ExtractionConfig
from repro.corpus import Corpus, generate_corpus
from repro.corpus.sentence import Sentence
from repro.extraction import SemanticIterativeExtractor
from repro.kb import IsAPair


def _sentence(sid, concepts, instances):
    return Sentence(sid=sid, surface=f"s{sid}", concepts=concepts,
                    instances=instances)


class TestHandwrittenScenario:
    """The paper's Fig. 1(b) drift walkthrough, end to end."""

    def _corpus(self):
        return Corpus((
            _sentence(0, ("animal",), ("dog", "cat", "chicken")),
            _sentence(1, ("food",), ("bread", "cheese")),
            # drift fodder: truth is food, nearest candidate is animal
            _sentence(2, ("animal", "food"), ("pork", "beef", "chicken")),
            # chained drift: resolvable only after pork lands under animal
            _sentence(3, ("animal", "food"), ("pork", "ham")),
        ))

    def test_core_extraction(self):
        result = SemanticIterativeExtractor().run(self._corpus())
        kb = result.kb
        assert kb.core_instances("animal") == frozenset({"dog", "cat", "chicken"})
        assert kb.core_instances("food") == frozenset({"bread", "cheese"})

    def test_drift_happens_via_bridge(self):
        result = SemanticIterativeExtractor().run(self._corpus())
        kb = result.kb
        assert kb.has_instance("animal", "pork")
        assert kb.has_instance("animal", "beef")

    def test_chained_drift_next_iteration(self):
        result = SemanticIterativeExtractor().run(self._corpus())
        kb = result.kb
        assert kb.has_instance("animal", "ham")
        assert kb.first_iteration(IsAPair("animal", "pork")) == 2
        assert kb.first_iteration(IsAPair("animal", "ham")) == 3

    def test_provenance_triggers(self):
        result = SemanticIterativeExtractor().run(self._corpus())
        kb = result.kb
        subs = kb.sub_instance_counts("animal", "chicken")
        assert set(subs) == {"pork", "beef"}
        subs_pork = kb.sub_instance_counts("animal", "pork")
        assert set(subs_pork) == {"ham"}

    def test_log_progression(self):
        result = SemanticIterativeExtractor().run(self._corpus())
        entries = list(result.log)
        assert entries[0].iteration == 1
        assert entries[0].total_pairs == 5
        assert result.iterations >= 3
        assert result.total_pairs == 8

    def test_unresolved_sentences_reported(self):
        corpus = Corpus((
            _sentence(0, ("animal",), ("dog",)),
            _sentence(1, ("food", "plant"), ("kale", "fern")),
        ))
        result = SemanticIterativeExtractor().run(corpus)
        assert result.unresolved_sids == (1,)


class TestSnapshotSemantics:
    def test_knowledge_not_visible_within_iteration(self):
        # Sentence 1 (lower sid) would trigger sentence 2's resolution, but
        # both arrive in iteration 2; snapshot semantics delays sentence 2
        # to iteration 3.
        corpus = Corpus((
            _sentence(0, ("animal",), ("chicken",)),
            _sentence(1, ("animal", "food"), ("pork", "chicken")),
            _sentence(2, ("animal", "food"), ("pork", "ham")),
        ))
        result = SemanticIterativeExtractor().run(corpus)
        kb = result.kb
        assert kb.first_iteration(IsAPair("animal", "pork")) == 2
        assert kb.first_iteration(IsAPair("animal", "ham")) == 3


class TestStreaming:
    def test_stream_chunks_stretch_iterations(self, toy_preset):
        config = CorpusConfig(
            num_sentences=1500,
            profiles=toy_preset.profiles,
            default_profile=ConceptProfile(ambiguous_rate=0.5),
        )
        corpus = generate_corpus(toy_preset.world, config, seed=11)
        fast = SemanticIterativeExtractor(ExtractionConfig(stream_chunks=1)).run(corpus)
        slow = SemanticIterativeExtractor(ExtractionConfig(stream_chunks=6)).run(corpus)
        assert slow.iterations > fast.iterations
        # Both runs commit the same sentences; streaming yields at least as
        # many distinct pairs because early drift changes later resolutions.
        assert len(list(slow.kb.records())) == len(list(fast.kb.records()))
        assert slow.total_pairs >= fast.total_pairs

    def test_max_iterations_respected(self):
        corpus = Corpus((
            _sentence(0, ("animal",), ("chicken",)),
            _sentence(1, ("animal", "food"), ("pork", "chicken")),
        ))
        result = SemanticIterativeExtractor(
            ExtractionConfig(max_iterations=1)
        ).run(corpus)
        assert result.iterations == 1
        assert result.unresolved_sids == (1,)


class TestAgainstGeneratedCorpus:
    def test_extraction_never_reads_truth(self, toy_corpus):
        stripped = toy_corpus.without_truth()
        a = SemanticIterativeExtractor().run(toy_corpus)
        b = SemanticIterativeExtractor().run(stripped)
        assert set(a.kb.pairs()) == set(b.kb.pairs())

    def test_drift_emerges(self, toy_preset, toy_extraction):
        world = toy_preset.world
        kb = toy_extraction.kb
        animal = kb.instances_of("animal")
        errors = {e for e in animal if not world.is_member("animal", e)}
        assert len(errors) > 5
        food_members = world.members("food")
        assert any(e in food_members for e in errors)

    def test_core_is_high_precision(self, toy_preset, toy_extraction):
        world = toy_preset.world
        kb = toy_extraction.kb
        core_ok = core_bad = 0
        for concept in ("animal", "food", "country", "city"):
            for instance in kb.core_instances(concept):
                if world.is_member(concept, instance):
                    core_ok += 1
                else:
                    core_bad += 1
        assert core_ok / (core_ok + core_bad) > 0.9
