"""Unit tests for the evidence index and resolution worklist."""

from __future__ import annotations

from repro.corpus.sentence import Sentence
from repro.extraction import EvidenceIndex, ResolutionWorklist
from repro.kb import IsAPair
from repro.kb.store import KnowledgeBase


def _sentence(sid, concepts, instances):
    return Sentence(sid=sid, surface=f"s{sid}", concepts=concepts,
                    instances=instances)


class TestEvidenceIndex:
    def test_watch_registers_every_candidate_pair(self):
        index = EvidenceIndex()
        index.watch(_sentence(7, ("animal", "food"), ("pork", "ham")))
        assert 7 in index
        assert len(index) == 1
        assert index.pairs_indexed == 4
        for concept in ("animal", "food"):
            for instance in ("pork", "ham"):
                assert index.waiters(concept, instance) == {7}

    def test_watch_is_idempotent(self):
        index = EvidenceIndex()
        sentence = _sentence(1, ("a", "b"), ("x",))
        index.watch(sentence)
        index.watch(sentence)
        assert len(index) == 1
        assert index.waiters("a", "x") == {1}

    def test_discard_drops_all_entries(self):
        index = EvidenceIndex()
        index.watch(_sentence(1, ("a", "b"), ("x",)))
        index.watch(_sentence(2, ("a",), ("x", "y")))
        index.discard(1)
        assert 1 not in index
        assert index.waiters("a", "x") == {2}
        assert index.waiters("b", "x") == frozenset()
        index.discard(2)
        assert index.pairs_indexed == 0
        index.discard(99)  # unknown sid is a no-op

    def test_waiters_unknown_pair_is_empty(self):
        assert EvidenceIndex().waiters("a", "x") == frozenset()


class TestResolutionWorklist:
    def test_commit_deltas_wakes_only_new_instances(self):
        kb = KnowledgeBase()
        worklist = ResolutionWorklist()
        worklist.watch(_sentence(1, ("animal", "food"), ("pork", "ham")))
        worklist.watch(_sentence(2, ("animal",), ("beef",)))

        kb.add_extraction(sid=10, concept="animal", instances=("dog", "pork"),
                          triggers=(), iteration=1)
        worklist.commit_deltas(kb, ["animal"])
        assert worklist.visible["animal"] == frozenset({"dog", "pork"})
        assert worklist.take_woken({1: None}) == {1}

        # Same snapshot again: no transition, nobody wakes.
        worklist.commit_deltas(kb, ["animal"])
        assert worklist.take_woken({1: None, 2: None}) == set()

        kb.add_extraction(sid=11, concept="animal", instances=("beef",),
                          triggers=(), iteration=2)
        worklist.commit_deltas(kb, ["animal"])
        assert worklist.take_woken({1: None, 2: None}) == {2}

    def test_resolved_clears_index_and_wake_set(self):
        kb = KnowledgeBase()
        worklist = ResolutionWorklist()
        worklist.watch(_sentence(1, ("animal",), ("pork",)))
        kb.add_extraction(sid=10, concept="animal", instances=("pork",),
                          triggers=(), iteration=1)
        worklist.commit_deltas(kb, ["animal"])
        worklist.resolved(1)
        assert worklist.wake_set_size == 0
        assert 1 not in worklist.index

    def test_take_woken_filters_to_pending_and_drains(self):
        worklist = ResolutionWorklist()
        worklist.wake_all([1, 2, 3])
        assert worklist.take_woken({2: None, 3: None}) == {2, 3}
        assert worklist.wake_set_size == 0
        assert worklist.take_woken({2: None}) == set()

    def test_resync_forgets_removed_pairs_and_rearms_the_delta(self):
        kb = KnowledgeBase()
        worklist = ResolutionWorklist()
        worklist.watch(_sentence(1, ("animal",), ("pork",)))

        kb.add_extraction(sid=10, concept="animal", instances=("pork",),
                          triggers=(), iteration=1)
        worklist.commit_deltas(kb, ["animal"])
        worklist.take_woken({1: None})  # drain the initial wake

        # Rollback removes the pair out-of-band; resync must shrink the
        # snapshot (and pop the now-empty concept) without waking anyone.
        kb.remove_pair(IsAPair("animal", "pork"))
        worklist.resync(kb, ["animal"])
        assert "animal" not in worklist.visible
        assert worklist.take_woken({1: None}) == set()

        # A later re-extraction of the same pair is a fresh transition.
        kb.add_extraction(sid=11, concept="animal", instances=("pork",),
                          triggers=(), iteration=5)
        worklist.commit_deltas(kb, ["animal"])
        assert worklist.take_woken({1: None}) == {1}

    def test_shared_visible_dict_is_advanced_in_place(self):
        visible = {}
        worklist = ResolutionWorklist(visible)
        kb = KnowledgeBase()
        kb.add_extraction(sid=1, concept="food", instances=("bread",),
                          triggers=(), iteration=1)
        worklist.commit_deltas(kb, ["food"])
        assert visible["food"] == frozenset({"bread"})
