"""Property-based round-trip tests for the Hearst surface grammar."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.corpus.templates import (
    pluralize,
    render_ambiguous,
    render_misparse,
    render_unambiguous,
)
from repro.extraction.pattern import HearstParser
from repro.world.vocabulary import Vocabulary

# Pseudo-word pools drawn from the same generator the worlds use, so the
# property covers exactly the surface space the corpus can produce.
_vocab = Vocabulary(np.random.default_rng(99), two_word_rate=0.3)
_WORDS = _vocab.batch(120)

_names = st.sampled_from(_WORDS)
_instance_lists = st.lists(_names, min_size=1, max_size=5, unique=True)


def _parser():
    return HearstParser(concept_lexicon=_WORDS, entity_lexicon=_WORDS)


class TestRoundTripProperties:
    @given(_names, _instance_lists, st.integers(0, 1 << 30))
    @settings(max_examples=80, deadline=None)
    def test_unambiguous_roundtrip(self, concept, instances, seed):
        rng = np.random.default_rng(seed)
        surface = render_unambiguous(concept, tuple(instances), rng)
        parsed = _parser().parse(surface)
        assert parsed is not None
        assert parsed.concepts == (concept,)
        assert parsed.instances == tuple(instances)

    @given(_names, _names, _instance_lists, st.integers(0, 1 << 30))
    @settings(max_examples=80, deadline=None)
    def test_ambiguous_roundtrip(self, head, modifier, instances, seed):
        if head == modifier:
            return
        rng = np.random.default_rng(seed)
        surface = render_ambiguous(head, modifier, tuple(instances), rng)
        parsed = _parser().parse(surface)
        assert parsed is not None
        assert parsed.concepts == (modifier, head)
        assert parsed.instances == tuple(instances)

    @given(_names, _names, _instance_lists, st.integers(0, 1 << 30))
    @settings(max_examples=60, deadline=None)
    def test_misparse_roundtrip(self, concept, excluded, instances, seed):
        if concept == excluded:
            return
        rng = np.random.default_rng(seed)
        surface = render_misparse(concept, excluded, tuple(instances), rng)
        parsed = _parser().parse(surface)
        assert parsed is not None
        assert parsed.concepts == (excluded,)
        assert parsed.instances == tuple(instances)

    @given(_names)
    @settings(max_examples=60)
    def test_plural_differs_and_is_deterministic(self, noun):
        assert pluralize(noun) != noun
        assert pluralize(noun) == pluralize(noun)
