"""Delta-driven resolution is bit-identical to the naive full scan.

Property suite pinning the tentpole equivalence: across random corpora,
resolution policies, ``min_evidence``, ``stream_chunks`` and batch
splits, ``ExtractionConfig(delta_index=True)`` and ``delta_index=False``
produce byte-equal KB saves (records, triggers, iteration numbers —
everything provenance serialises) and identical ``IterationLog``s.
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from hypothesis import given, settings, strategies as st

from repro.config import CorpusConfig, ExtractionConfig
from repro.corpus import Corpus, generate_corpus
from repro.corpus.sentence import Sentence
from repro.extraction import IncrementalExtractor, SemanticIterativeExtractor
from repro.kb.serialize import save_kb
from repro.world import toy_world

CONCEPTS = ("animal", "food", "plant", "city")
INSTANCES = tuple(f"e{i}" for i in range(10))


@st.composite
def sentences(draw):
    corpus_size = draw(st.integers(min_value=0, max_value=40))
    out = []
    for sid in range(corpus_size):
        concepts = tuple(
            draw(
                st.lists(
                    st.sampled_from(CONCEPTS),
                    min_size=1,
                    max_size=2,
                    unique=True,
                )
            )
        )
        instances = tuple(
            draw(
                st.lists(
                    st.sampled_from(INSTANCES),
                    min_size=1,
                    max_size=3,
                    unique=True,
                )
            )
        )
        out.append(
            Sentence(
                sid=sid,
                surface=f"s{sid}",
                concepts=concepts,
                instances=instances,
            )
        )
    return out


configs = st.builds(
    ExtractionConfig,
    max_iterations=st.sampled_from([3, 100]),
    min_evidence=st.integers(min_value=1, max_value=2),
    policy=st.sampled_from(["nearest", "max_evidence"]),
    stream_chunks=st.sampled_from([1, 2, 3, 7]),
    delta_index=st.just(True),
)


def _kb_bytes(kb) -> bytes:
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "kb.json"
        save_kb(kb, path)
        return path.read_bytes()


def _assert_equivalent(delta_result, naive_result):
    assert _kb_bytes(delta_result.kb) == _kb_bytes(naive_result.kb)
    assert list(delta_result.log) == list(naive_result.log)
    assert delta_result.unresolved_sids == naive_result.unresolved_sids
    assert delta_result.iterations == naive_result.iterations


class TestBatchEquivalence:
    @given(corpus_sentences=sentences(), config=configs)
    @settings(max_examples=120, deadline=None)
    def test_random_corpora(self, corpus_sentences, config):
        corpus = Corpus(tuple(corpus_sentences))
        delta = SemanticIterativeExtractor(config).run(corpus)
        naive = SemanticIterativeExtractor(
            ExtractionConfig(
                max_iterations=config.max_iterations,
                min_evidence=config.min_evidence,
                policy=config.policy,
                stream_chunks=config.stream_chunks,
                delta_index=False,
            )
        ).run(corpus)
        _assert_equivalent(delta, naive)

    def test_generated_corpus_with_chunked_arrival(self):
        preset = toy_world(seed=7)
        corpus = generate_corpus(
            preset.world,
            CorpusConfig(num_sentences=800, profiles=preset.profiles),
            seed=11,
        )
        for chunks in (1, 4):
            delta = SemanticIterativeExtractor(
                ExtractionConfig(stream_chunks=chunks)
            ).run(corpus)
            naive = SemanticIterativeExtractor(
                ExtractionConfig(stream_chunks=chunks, delta_index=False)
            ).run(corpus)
            _assert_equivalent(delta, naive)


class TestIncrementalEquivalence:
    @given(
        corpus_sentences=sentences(),
        config=configs,
        batch_size=st.integers(min_value=1, max_value=15),
    )
    @settings(max_examples=80, deadline=None)
    def test_random_batch_streams(self, corpus_sentences, config, batch_size):
        naive_config = ExtractionConfig(
            max_iterations=config.max_iterations,
            min_evidence=config.min_evidence,
            policy=config.policy,
            stream_chunks=config.stream_chunks,
            delta_index=False,
        )
        delta = IncrementalExtractor(config)
        naive = IncrementalExtractor(naive_config)
        for start in range(0, len(corpus_sentences), batch_size):
            batch = corpus_sentences[start:start + batch_size]
            delta_batch = delta.ingest(batch)
            naive_batch = naive.ingest(batch)
            assert delta_batch.core_resolved == naive_batch.core_resolved
            assert (
                delta_batch.ambiguous_resolved
                == naive_batch.ambiguous_resolved
            )
            assert delta_batch.new_pairs == naive_batch.new_pairs
            assert delta_batch.total_pairs == naive_batch.total_pairs
            assert (
                delta_batch.iterations_run == naive_batch.iterations_run
            )
        assert _kb_bytes(delta.kb) == _kb_bytes(naive.kb)
        assert list(delta.log) == list(naive.log)
        assert delta.unresolved_sids() == naive.unresolved_sids()
        assert delta.iteration == naive.iteration

    def test_incremental_matches_batch_extractor_one_shot(self):
        preset = toy_world(seed=7)
        corpus = generate_corpus(
            preset.world,
            CorpusConfig(num_sentences=600, profiles=preset.profiles),
            seed=7,
        )
        batch = SemanticIterativeExtractor(ExtractionConfig()).run(corpus)
        incremental = IncrementalExtractor(ExtractionConfig())
        incremental.ingest(corpus.sentences)
        assert _kb_bytes(incremental.kb) == _kb_bytes(batch.kb)
        assert list(incremental.log) == list(batch.log)
        assert incremental.unresolved_sids() == batch.unresolved_sids
