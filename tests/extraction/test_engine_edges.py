"""Edge-case tests for the extraction engine."""

from __future__ import annotations

from repro.config import ExtractionConfig
from repro.corpus.corpus import Corpus
from repro.corpus.sentence import Sentence
from repro.extraction import SemanticIterativeExtractor


def _sentence(sid, concepts, instances, surface=None):
    return Sentence(
        sid=sid, surface=surface or f"s{sid}", concepts=concepts,
        instances=instances,
    )


class TestEngineEdges:
    def test_only_ambiguous_sentences_yield_nothing(self):
        corpus = Corpus((
            _sentence(0, ("a", "b"), ("x", "y")),
            _sentence(1, ("c", "d"), ("z",)),
        ))
        result = SemanticIterativeExtractor().run(corpus)
        assert result.total_pairs == 0
        assert set(result.unresolved_sids) == {0, 1}

    def test_duplicate_surfaces_counted_once(self):
        corpus = Corpus((
            _sentence(0, ("animal",), ("dog",), surface="same"),
            _sentence(1, ("animal",), ("dog",), surface="same"),
            _sentence(2, ("animal",), ("dog",), surface="other"),
        ))
        result = SemanticIterativeExtractor().run(corpus)
        from repro.kb import IsAPair

        assert result.kb.count(IsAPair("animal", "dog")) == 2

    def test_single_sentence_corpus(self):
        corpus = Corpus((_sentence(0, ("animal",), ("dog", "cat")),))
        result = SemanticIterativeExtractor().run(corpus)
        assert result.total_pairs == 2
        assert result.iterations == 1

    def test_max_evidence_policy_resolves_to_stronger_side(self):
        corpus = Corpus((
            _sentence(0, ("animal",), ("chicken",)),
            _sentence(1, ("food",), ("pork", "beef", "chicken")),
            _sentence(2, ("animal", "food"), ("pork", "beef", "chicken")),
        ))
        nearest = SemanticIterativeExtractor(
            ExtractionConfig(policy="nearest")
        ).run(corpus)
        assert nearest.kb.has_instance("animal", "pork")  # drift
        stronger = SemanticIterativeExtractor(
            ExtractionConfig(policy="max_evidence")
        ).run(corpus)
        assert not stronger.kb.has_instance("animal", "pork")

    def test_stream_chunks_larger_than_corpus(self):
        corpus = Corpus((
            _sentence(0, ("animal",), ("chicken",)),
            _sentence(1, ("animal", "food"), ("pork", "chicken")),
        ))
        result = SemanticIterativeExtractor(
            ExtractionConfig(stream_chunks=50)
        ).run(corpus)
        assert result.kb.has_instance("animal", "pork")
        assert not result.unresolved_sids

    def test_resolution_independent_of_sid_gaps(self):
        sparse = Corpus((
            _sentence(10, ("animal",), ("chicken",)),
            _sentence(99, ("animal", "food"), ("pork", "chicken")),
        ))
        result = SemanticIterativeExtractor().run(sparse)
        assert result.kb.has_instance("animal", "pork")
