"""Tests for resolution policies, including the paper's Fig. 1(b) cases."""

from __future__ import annotations

import pytest

from repro.corpus.sentence import Sentence
from repro.errors import ExtractionError
from repro.extraction.trigger import resolve
from repro.kb import IsAPair


def _sentence(concepts, instances):
    return Sentence(
        sid=0, surface="x", concepts=concepts, instances=instances
    )


class TestNearestPolicy:
    def test_paper_drift_case(self):
        # "food from animals such as pork, beef and chicken" with
        # (chicken isA animal) known: nearest candidate 'animal' wins.
        sentence = _sentence(("animal", "food"), ("pork", "beef", "chicken"))
        known = {"animal": frozenset({"chicken", "dog"})}
        resolution = resolve(sentence, known, policy="nearest")
        assert resolution.concept == "animal"
        assert resolution.triggers == (IsAPair("animal", "chicken"),)

    def test_paper_benign_case(self):
        # "animals from african countries such as giraffe and lion" with
        # (lion isA animal) known: nearest candidate has no evidence, so
        # knowledge falls through to 'animal'.
        sentence = _sentence(("african country", "animal"), ("giraffe", "lion"))
        known = {"animal": frozenset({"lion"})}
        resolution = resolve(sentence, known, policy="nearest")
        assert resolution.concept == "animal"
        assert resolution.triggers == (IsAPair("animal", "lion"),)

    def test_unresolvable_returns_none(self):
        sentence = _sentence(("animal", "food"), ("pork", "beef"))
        assert resolve(sentence, {}, policy="nearest") is None

    def test_min_evidence_gate(self):
        sentence = _sentence(("animal", "food"), ("pork", "chicken"))
        known = {"animal": frozenset({"chicken"})}
        assert resolve(sentence, known, min_evidence=2) is None

    def test_multiple_triggers_collected(self):
        sentence = _sentence(("animal",), ("dog", "cat", "emu"))
        known = {"animal": frozenset({"dog", "cat"})}
        resolution = resolve(sentence, known)
        assert set(resolution.triggers) == {
            IsAPair("animal", "dog"), IsAPair("animal", "cat"),
        }


class TestMaxEvidencePolicy:
    def test_prefers_more_evidence(self):
        sentence = _sentence(("animal", "food"), ("pork", "beef", "chicken"))
        known = {
            "animal": frozenset({"chicken"}),
            "food": frozenset({"pork", "beef", "chicken"}),
        }
        resolution = resolve(sentence, known, policy="max_evidence")
        assert resolution.concept == "food"
        assert len(resolution.triggers) == 3

    def test_tie_broken_by_proximity(self):
        sentence = _sentence(("animal", "food"), ("chicken", "emu"))
        known = {
            "animal": frozenset({"chicken"}),
            "food": frozenset({"chicken"}),
        }
        resolution = resolve(sentence, known, policy="max_evidence")
        assert resolution.concept == "animal"


class TestValidation:
    def test_unknown_policy(self):
        sentence = _sentence(("animal",), ("dog",))
        with pytest.raises(ExtractionError):
            resolve(sentence, {}, policy="bogus")

    def test_bad_min_evidence(self):
        sentence = _sentence(("animal",), ("dog",))
        with pytest.raises(ExtractionError):
            resolve(sentence, {}, min_evidence=0)
