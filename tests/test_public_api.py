"""Smoke tests for the top-level public API."""

from __future__ import annotations

import repro


class TestPublicAPI:
    def test_version(self):
        assert repro.__version__

    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert getattr(repro, name, None) is not None, name

    def test_core_types_importable(self):
        assert repro.KnowledgeBase
        assert repro.DPCleaner
        assert repro.DPDetector
        assert repro.Pipeline

    def test_docstring_mentions_paper(self):
        assert "EDBT 2014" in repro.__doc__

    def test_experiment_names_via_api(self):
        names = repro.experiment_names()
        assert "table1" in names
