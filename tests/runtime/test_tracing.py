"""Tracer: span nesting, ordering, counters, JSONL round-trip, schema."""

from __future__ import annotations

from repro.runtime.tracing import (
    TRACE_SCHEMA_VERSION,
    Tracer,
    read_trace,
)


class TestSpanTree:
    def test_nesting_builds_a_tree(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner-a"):
                pass
            with tracer.span("inner-b"):
                with tracer.span("leaf"):
                    pass
        assert [root.name for root in tracer.roots] == ["outer"]
        outer = tracer.roots[0]
        assert [child.name for child in outer.children] == [
            "inner-a", "inner-b",
        ]
        assert [s.name for s in outer.children[1].children] == ["leaf"]
        assert tracer.current is None

    def test_walk_is_depth_first_in_start_order(self):
        tracer = Tracer()
        with tracer.span("a"):
            with tracer.span("b"):
                pass
            with tracer.span("c"):
                pass
        with tracer.span("d"):
            pass
        assert [s.name for s in tracer.spans()] == ["a", "b", "c", "d"]

    def test_timings_close_with_the_span(self):
        tracer = Tracer()
        with tracer.span("timed") as span:
            assert span.wall_ms is None
        assert span.wall_ms is not None and span.wall_ms >= 0
        assert span.cpu_ms is not None and span.cpu_ms >= 0

    def test_attributes_and_counters(self):
        tracer = Tracer()
        with tracer.span("s", mode="fast") as span:
            span.set(items=3)
            span.add("hits")
            span.add("hits", 2)
        assert span.attributes == {"mode": "fast", "items": 3}
        assert span.counters == {"hits": 3}

    def test_counts_outside_any_span_land_in_loose_pool(self):
        tracer = Tracer()
        tracer.count("orphan", 5)
        with tracer.span("s"):
            tracer.count("scoped", 1)
        assert tracer.loose_counters == {"orphan": 5}
        assert tracer.find("s").counters == {"scoped": 1}
        assert tracer.counter_total("orphan") == 5
        assert tracer.counter_total("scoped") == 1

    def test_record_event_attaches_to_current_span(self):
        tracer = Tracer()
        with tracer.span("s"):
            tracer.record_event("Thing", {"n": 1})
        assert tracer.find("s").events == [{"event": "Thing", "n": 1}]

    def test_span_survives_exceptions(self):
        tracer = Tracer()
        try:
            with tracer.span("fails"):
                raise RuntimeError("boom")
        except RuntimeError:
            pass
        span = tracer.find("fails")
        assert span.wall_ms is not None
        assert tracer.current is None


class TestJsonlExport:
    def test_round_trip(self, tmp_path):
        tracer = Tracer()
        with tracer.span("root", stage="x") as root:
            root.add("n", 7)
            tracer.record_event("E", {"k": "v"})
            with tracer.span("child"):
                pass
        tracer.count("loose", 2)
        path = tracer.export_jsonl(tmp_path / "trace.jsonl")
        records = read_trace(path)
        header, spans, trailer = records[0], records[1:-1], records[-1]
        assert header == {
            "kind": "trace",
            "schema": TRACE_SCHEMA_VERSION,
            "spans": 2,
        }
        assert [r["name"] for r in spans] == ["root", "child"]
        assert spans[0]["attributes"] == {"stage": "x"}
        assert spans[0]["counters"] == {"n": 7}
        assert spans[0]["events"] == [{"event": "E", "k": "v"}]
        assert spans[1]["parent"] == spans[0]["id"]
        assert trailer == {
            "kind": "counters",
            "schema": TRACE_SCHEMA_VERSION,
            "counters": {"loose": 2},
        }

    def test_pinned_span_record_fields(self, tmp_path):
        """The span record schema is a public contract — do not drift."""
        tracer = Tracer()
        with tracer.span("only"):
            pass
        path = tracer.export_jsonl(tmp_path / "trace.jsonl")
        (record,) = [r for r in read_trace(path) if r["kind"] == "span"]
        assert sorted(record) == [
            "attributes",
            "counters",
            "cpu_ms",
            "events",
            "id",
            "kind",
            "name",
            "parent",
            "schema",
            "start",
            "wall_ms",
        ]
        assert record["schema"] == TRACE_SCHEMA_VERSION == 1

    def test_no_trailer_without_loose_counters(self, tmp_path):
        tracer = Tracer()
        with tracer.span("s"):
            pass
        records = read_trace(tracer.export_jsonl(tmp_path / "t.jsonl"))
        assert [r["kind"] for r in records] == ["trace", "span"]
