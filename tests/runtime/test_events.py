"""Event bus: dispatch order, MRO fan-out, unsubscribe, payloads."""

from __future__ import annotations

import json

import pytest

from repro.runtime.events import (
    BatchIngested,
    CleaningTriggered,
    Event,
    EventBus,
    LogEvent,
    event_payload,
)


class TestEventBus:
    def test_publish_without_subscribers_is_silent(self):
        bus = EventBus()
        assert not bus.has_subscribers
        bus.publish(LogEvent("nothing listens"))  # must not raise

    def test_handlers_run_in_subscribe_order(self):
        bus = EventBus()
        seen: list[str] = []
        bus.subscribe(LogEvent, lambda e: seen.append("first"))
        bus.subscribe(LogEvent, lambda e: seen.append("second"))
        bus.subscribe(LogEvent, lambda e: seen.append("third"))
        bus.publish(LogEvent("go"))
        assert seen == ["first", "second", "third"]

    def test_events_delivered_in_publish_order(self):
        bus = EventBus()
        seen: list[str] = []
        bus.subscribe(LogEvent, lambda e: seen.append(e.message))
        for i in range(5):
            bus.publish(LogEvent(f"m{i}"))
        assert seen == [f"m{i}" for i in range(5)]

    def test_base_class_subscription_sees_subclasses(self):
        bus = EventBus()
        seen: list[Event] = []
        bus.subscribe(Event, seen.append)
        log = LogEvent("hello")
        trigger = CleaningTriggered(reason="drift", staleness=3, drift=0.2)
        bus.publish(log)
        bus.publish(trigger)
        assert seen == [log, trigger]

    def test_specific_subscription_ignores_other_types(self):
        bus = EventBus()
        seen: list[Event] = []
        bus.subscribe(LogEvent, seen.append)
        bus.publish(CleaningTriggered(reason="drift", staleness=1, drift=0.5))
        assert seen == []

    def test_specific_handler_runs_before_base_handler(self):
        bus = EventBus()
        seen: list[str] = []
        bus.subscribe(Event, lambda e: seen.append("base"))
        bus.subscribe(LogEvent, lambda e: seen.append("specific"))
        bus.publish(LogEvent("x"))
        # MRO dispatch: the concrete class's handlers fire first.
        assert seen == ["specific", "base"]

    def test_unsubscribe_stops_delivery(self):
        bus = EventBus()
        seen: list[Event] = []
        unsubscribe = bus.subscribe(LogEvent, seen.append)
        bus.publish(LogEvent("one"))
        unsubscribe()
        assert not bus.has_subscribers
        bus.publish(LogEvent("two"))
        assert len(seen) == 1

    def test_unsubscribe_is_idempotent(self):
        bus = EventBus()
        unsubscribe = bus.subscribe(LogEvent, lambda e: None)
        unsubscribe()
        unsubscribe()
        assert not bus.has_subscribers


class TestEventPayloads:
    def test_payload_is_field_dict(self):
        event = CleaningTriggered(reason="staleness", staleness=7, drift=0.1)
        assert event_payload(event) == {
            "reason": "staleness",
            "staleness": 7,
            "drift": 0.1,
        }

    def test_taxonomy_payloads_are_json_serialisable(self):
        events = [
            LogEvent("msg"),
            BatchIngested(
                seq=1, index=0, sentences_seen=10, sentences_new=8,
                new_pairs=5, total_pairs=5, drift_fraction=0.0,
                cleaned=True, clean_reason="forced", removed_pairs=2,
            ),
        ]
        for event in events:
            json.dumps(event_payload(event))  # must not raise

    def test_events_are_immutable(self):
        event = LogEvent("fixed")
        with pytest.raises(AttributeError):
            event.message = "changed"
