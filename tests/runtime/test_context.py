"""RunContext: null-context statelessness, resources, emit/trace wiring."""

from __future__ import annotations

import gc

import pytest

from repro.runtime.context import NULL_CONTEXT, RunContext, SharedResources
from repro.runtime.events import LogEvent


class Owner:
    """Weak-referenceable stand-in for a knowledge base."""


class TestSharedResources:
    def test_get_or_create_registers_once(self):
        resources = SharedResources()
        owner = Owner()
        first = resources.get_or_create("exclusion", owner, list)
        second = resources.get_or_create("exclusion", owner, list)
        assert first is second
        assert resources.get("exclusion", owner) is first

    def test_keys_are_kind_and_owner(self):
        resources = SharedResources()
        a, b = Owner(), Owner()
        resources.put("exclusion", a, "ra")
        resources.put("exclusion", b, "rb")
        resources.put("other", a, "oa")
        assert resources.get("exclusion", a) == "ra"
        assert resources.get("exclusion", b) == "rb"
        assert resources.get("other", a) == "oa"
        assert resources.get("other", b) is None

    def test_owner_is_held_weakly(self):
        resources = SharedResources()
        owner = Owner()
        resources.put("exclusion", owner, "resource")
        del owner
        gc.collect()
        assert resources.get("exclusion", Owner()) is None


class TestRunContext:
    def test_untraced_span_is_inert(self):
        ctx = RunContext()
        assert not ctx.tracing
        with ctx.span("anything", key="value") as span:
            span.set(more=1)
            span.add("counter", 3)
        ctx.count("loose")  # no tracer: must be a silent no-op

    def test_ensure_tracer_turns_tracing_on(self):
        ctx = RunContext()
        tracer = ctx.ensure_tracer()
        assert ctx.ensure_tracer() is tracer
        with ctx.span("s") as span:
            span.add("n", 2)
        assert tracer.find("s").counters == {"n": 2}

    def test_emit_publishes_and_records(self):
        ctx = RunContext()
        seen = []
        ctx.bus.subscribe(LogEvent, seen.append)
        ctx.ensure_tracer()
        with ctx.span("stage"):
            ctx.emit(LogEvent("working"))
        assert [e.message for e in seen] == ["working"]
        assert ctx.tracer.find("stage").events == [
            {"event": "LogEvent", "message": "working", "level": "info"}
        ]

    def test_export_requires_a_tracer(self, tmp_path):
        with pytest.raises(ValueError):
            RunContext().export_trace(tmp_path / "t.jsonl")


class TestNullContext:
    def test_is_completely_stateless(self):
        owner = Owner()
        NULL_CONTEXT.resources.put("exclusion", owner, "leaked?")
        assert NULL_CONTEXT.resources.get("exclusion", owner) is None
        made = NULL_CONTEXT.resources.get_or_create(
            "exclusion", owner, lambda: "fresh"
        )
        assert made == "fresh"
        assert NULL_CONTEXT.resources.get("exclusion", owner) is None

    def test_span_count_emit_are_noops(self):
        with NULL_CONTEXT.span("s", a=1) as span:
            span.set(b=2)
            span.add("c")
            # Reentrant: nesting through the same shared object is fine.
            with NULL_CONTEXT.span("inner"):
                pass
        NULL_CONTEXT.count("n", 5)
        NULL_CONTEXT.emit(LogEvent("dropped"))
        assert not NULL_CONTEXT.tracing

    def test_cannot_attach_a_tracer(self):
        with pytest.raises(ValueError):
            NULL_CONTEXT.ensure_tracer()
