"""Tracing is observation-only: traced and untraced runs are bit-identical.

One small end-to-end run (corpus → extraction → analysis → detector →
DP cleaning) executed twice — once with a tracer attached, once without —
must serialise to byte-identical knowledge bases.  The traced run's span
tree must also cover every stage with nonzero counters, which is the
acceptance shape for ``repro run --trace``.
"""

from __future__ import annotations

import pytest

from repro.cleaning.dp_cleaner import DPCleaner
from repro.experiments.pipeline import Pipeline, experiment_config
from repro.kb.serialize import save_kb
from repro.runtime.tracing import read_trace
from repro.world.presets import paper_world

SCALE = 0.5
SENTENCES = 1500
SEED = 20140324


def make_pipeline() -> Pipeline:
    preset = paper_world(seed=SEED, scale=SCALE)
    config = experiment_config(
        num_sentences=SENTENCES, seed=SEED, profiles=preset.profiles
    )
    return Pipeline(preset=preset, config=config)


def run_and_clean(pipeline: Pipeline, trace=None):
    """Full pipeline run plus one DP-cleaning pass."""
    artifacts = pipeline.run(trace=None if trace is None else str(trace))
    cleaner = DPCleaner(pipeline.detect_fn(), pipeline.config.cleaning)
    result = cleaner.clean(artifacts.kb, artifacts.corpus)
    # Export again so the trace includes the cleaning spans too.
    if trace is not None:
        pipeline.context.export_trace(trace)
    return artifacts, result


@pytest.fixture(scope="module")
def traced_run(tmp_path_factory):
    trace_path = tmp_path_factory.mktemp("trace") / "trace.jsonl"
    artifacts, result = run_and_clean(make_pipeline(), trace=trace_path)
    return artifacts, result, trace_path


@pytest.fixture(scope="module")
def untraced_run():
    return run_and_clean(make_pipeline())


class TestBitIdentity:
    def test_traced_and_untraced_kbs_are_byte_identical(
        self, traced_run, untraced_run, tmp_path
    ):
        traced_artifacts = traced_run[0]
        untraced_artifacts = untraced_run[0]
        a, b = tmp_path / "traced.json", tmp_path / "untraced.json"
        save_kb(traced_artifacts.kb, a)
        save_kb(untraced_artifacts.kb, b)
        assert a.read_bytes() == b.read_bytes()

    def test_cleaning_results_match(self, traced_run, untraced_run):
        traced_result = traced_run[1]
        untraced_result = untraced_run[1]
        assert traced_result.removed_pairs == untraced_result.removed_pairs
        assert traced_result.rounds == untraced_result.rounds


class TestTraceCoverage:
    """The exported span tree covers every stage (acceptance shape)."""

    @pytest.fixture(scope="class")
    def records(self, traced_run):
        return read_trace(traced_run[2])

    @pytest.fixture(scope="class")
    def spans(self, records):
        return [r for r in records if r["kind"] == "span"]

    def test_header_counts_spans(self, records, spans):
        assert records[0]["kind"] == "trace"
        assert records[0]["spans"] == len(spans)

    def test_every_stage_has_a_span(self, spans):
        names = {span["name"] for span in spans}
        assert {
            "corpus.generate",
            "extract",
            "extract.iteration",
            "analysis.build",
            "analysis.refresh",
            "rank.batch",
            "detector.fit",
            "detector.embed",
            "detector.train",
            "clean",
            "clean.round",
        } <= names

    def test_extraction_iterations_have_nonzero_counters(self, spans):
        iterations = [s for s in spans if s["name"] == "extract.iteration"]
        assert len(iterations) >= 2
        assert sum(
            s["counters"].get("sentences_scanned", 0) for s in iterations
        ) > 0
        assert sum(
            s["counters"].get("pairs_committed", 0) for s in iterations
        ) > 0

    def test_detector_fits_report_concepts(self, spans):
        fits = [s for s in spans if s["name"] == "detector.fit"]
        assert fits and all(s["attributes"]["concepts"] > 0 for s in fits)
        embeds = [s for s in spans if s["name"] == "detector.embed"]
        assert sum(
            s["counters"].get("transforms_computed", 0)
            + s["counters"].get("transforms_reused", 0)
            for s in embeds
        ) > 0

    def test_cleaning_rounds_have_activity(self, spans):
        rounds = [s for s in spans if s["name"] == "clean.round"]
        assert rounds
        assert sum(
            s["counters"].get("pairs_removed", 0) for s in rounds
        ) > 0

    def test_cleaning_spans_nest_under_clean(self, spans):
        by_id = {s["id"]: s for s in spans}
        for span in spans:
            if span["name"] == "clean.round":
                assert by_id[span["parent"]]["name"] == "clean"

    def test_detector_fit_emits_event(self, spans):
        events = [e for s in spans for e in s["events"]]
        assert any(e["event"] == "DetectorFitted" for e in events)
        assert any(e["event"] == "CleaningRound" for e in events)
        assert any(e["event"] == "ExtractionIteration" for e in events)
