"""Tests for the four DP features."""

from __future__ import annotations

import pytest

from repro.concepts import MutualExclusionIndex
from repro.config import SimilarityConfig
from repro.features import FeatureExtractor, build_concept_matrix
from repro.kb import IsAPair, KnowledgeBase


def _setup():
    kb = KnowledgeBase()
    # animal core: dog (3x), cat (2x), chicken (2x)
    for sid in range(3):
        kb.add_extraction(sid, "animal", ("dog",), iteration=1)
    kb.add_extraction(3, "animal", ("cat", "chicken"), iteration=1)
    kb.add_extraction(4, "animal", ("cat", "chicken"), iteration=1)
    # food core including chicken (the polysemous bridge)
    kb.add_extraction(5, "food", ("pork", "beef", "chicken"), iteration=1)
    # dog triggers a benign sentence listing core animals
    dog = IsAPair("animal", "dog")
    kb.add_extraction(6, "animal", ("cat", "dog"), triggers=(dog,), iteration=2)
    # chicken triggers drift: pork and beef land under animal
    chicken = IsAPair("animal", "chicken")
    kb.add_extraction(
        7, "animal", ("pork", "beef", "chicken"), triggers=(chicken,),
        iteration=2,
    )
    # chicken sits in both cores, giving sim(animal, food) = 1/3; the
    # exclusive threshold must sit above that for the pair to register as
    # mutually exclusive despite the shared bridge.
    exclusion = MutualExclusionIndex(
        kb,
        SimilarityConfig(
            exclusive_threshold=0.4, similar_threshold=0.5, min_core_size=1
        ),
    )
    scores = {
        "animal": {"dog": 0.3, "cat": 0.25, "chicken": 0.2, "pork": 0.01,
                   "beef": 0.01},
        "food": {"pork": 0.3, "beef": 0.3, "chicken": 0.3},
    }
    return kb, exclusion, scores


class TestFeatureExtractor:
    def test_f1_non_dp_triggers_core(self):
        kb, exclusion, scores = _setup()
        extractor = FeatureExtractor(kb, exclusion, scores)
        dog = extractor.extract("animal", "dog")
        chicken = extractor.extract("animal", "chicken")
        assert dog.f1 == pytest.approx(1.0)  # all sub-mass on core (cat)
        assert chicken.f1 < dog.f1  # drift mass leaks off-core

    def test_f1_cosine_mode(self):
        kb, exclusion, scores = _setup()
        extractor = FeatureExtractor(kb, exclusion, scores, f1_mode="cosine")
        dog = extractor.extract("animal", "dog")
        assert 0 < dog.f1 <= 1.0

    def test_f1_mode_validation(self):
        kb, exclusion, scores = _setup()
        with pytest.raises(ValueError):
            FeatureExtractor(kb, exclusion, scores, f1_mode="bogus")

    def test_f2_counts_exclusive_memberships(self):
        kb, exclusion, scores = _setup()
        extractor = FeatureExtractor(kb, exclusion, scores)
        # chicken and pork live under both animal and food (exclusive)
        assert extractor.extract("animal", "chicken").f2 == 1.0
        assert extractor.extract("animal", "pork").f2 == 1.0
        assert extractor.extract("animal", "dog").f2 == 0.0

    def test_f3_is_walk_score(self):
        kb, exclusion, scores = _setup()
        extractor = FeatureExtractor(kb, exclusion, scores)
        assert extractor.extract("animal", "dog").f3 == 0.3

    def test_f4_mean_sub_score(self):
        kb, exclusion, scores = _setup()
        extractor = FeatureExtractor(kb, exclusion, scores)
        chicken = extractor.extract("animal", "chicken")
        assert chicken.f4 == pytest.approx(0.01)  # mean of pork, beef
        dog = extractor.extract("animal", "dog")
        assert dog.f4 == pytest.approx(0.25)  # cat only

    def test_no_subs_gives_zero_f1_f4(self):
        kb, exclusion, scores = _setup()
        extractor = FeatureExtractor(kb, exclusion, scores)
        cat = extractor.extract("animal", "cat")
        assert cat.f1 == 0.0
        assert cat.f4 == 0.0

    def test_extract_concept_sorted(self):
        kb, exclusion, scores = _setup()
        extractor = FeatureExtractor(kb, exclusion, scores)
        vectors = extractor.extract_concept("animal")
        names = [v.instance for v in vectors]
        assert names == sorted(names)


class TestConceptMatrix:
    def test_build(self):
        kb, exclusion, scores = _setup()
        extractor = FeatureExtractor(kb, exclusion, scores)
        matrix = build_concept_matrix(extractor, "animal")
        assert matrix.x.shape == (len(matrix.instances), 4)
        assert matrix.size == 5

    def test_row_of(self):
        kb, exclusion, scores = _setup()
        extractor = FeatureExtractor(kb, exclusion, scores)
        matrix = build_concept_matrix(extractor, "animal")
        row = matrix.row_of("dog")
        assert matrix.instances[row] == "dog"
        with pytest.raises(KeyError):
            matrix.row_of("ghost")

    def test_empty_concept(self):
        kb, exclusion, scores = _setup()
        extractor = FeatureExtractor(kb, exclusion, scores)
        matrix = build_concept_matrix(extractor, "ghost")
        assert matrix.size == 0
        assert matrix.x.shape == (0, 4)
