"""Tests for distribution helpers (feature f1)."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.features import cosine_counts, normalize_counts

_count_dicts = st.dictionaries(
    st.text(alphabet="abcdef", min_size=1, max_size=3),
    st.floats(min_value=0.01, max_value=100, allow_nan=False),
    max_size=8,
)


class TestCosineCounts:
    def test_identical_vectors(self):
        counts = {"a": 2.0, "b": 1.0}
        assert cosine_counts(counts, counts) == pytest.approx(1.0)

    def test_disjoint_vectors(self):
        assert cosine_counts({"a": 1.0}, {"b": 1.0}) == 0.0

    def test_scale_invariant(self):
        a = {"a": 1.0, "b": 3.0}
        b = {"a": 10.0, "b": 30.0}
        assert cosine_counts(a, b) == pytest.approx(1.0)

    def test_empty_inputs(self):
        assert cosine_counts({}, {"a": 1.0}) == 0.0
        assert cosine_counts({"a": 1.0}, {}) == 0.0

    def test_known_value(self):
        value = cosine_counts({"a": 1.0, "b": 1.0}, {"a": 1.0})
        assert value == pytest.approx(1.0 / math.sqrt(2))

    @given(_count_dicts, _count_dicts)
    @settings(max_examples=80)
    def test_bounded_and_symmetric(self, a, b):
        forward = cosine_counts(a, b)
        backward = cosine_counts(b, a)
        assert 0.0 <= forward <= 1.0 + 1e-9
        assert forward == pytest.approx(backward)


class TestNormalizeCounts:
    def test_sums_to_one(self):
        normalized = normalize_counts({"a": 2, "b": 2})
        assert sum(normalized.values()) == pytest.approx(1.0)
        assert normalized["a"] == pytest.approx(0.5)

    def test_empty(self):
        assert normalize_counts({}) == {}

    @given(_count_dicts)
    @settings(max_examples=50)
    def test_property(self, counts):
        normalized = normalize_counts(counts)
        if counts:
            assert sum(normalized.values()) == pytest.approx(1.0)
