"""The layered-module boundaries are enforced (scripts/check_layering.py).

Two halves: the real source tree must be clean, and the checker must
actually catch violations — a checker that always passes enforces
nothing, so we seed an upward import into a scratch tree and require a
nonzero exit.
"""

from __future__ import annotations

import importlib.util
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent
PACKAGE_ROOT = REPO_ROOT / "src" / "repro"


@pytest.fixture(scope="module")
def checker():
    spec = importlib.util.spec_from_file_location(
        "check_layering", REPO_ROOT / "scripts" / "check_layering.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestRealTree:
    def test_no_violations(self, checker):
        assert checker.check_layering(PACKAGE_ROOT) == []

    def test_every_member_is_registered(self, checker):
        members = set()
        for path in PACKAGE_ROOT.iterdir():
            if path.is_dir() and (path / "__init__.py").exists():
                members.add(path.name)
            elif path.suffix == ".py":
                members.add(path.stem)
        assert members <= set(checker.LAYERS)

    def test_cli_exit_code_zero(self, checker):
        assert checker.main(["--root", str(PACKAGE_ROOT)]) == 0


class TestSeededViolation:
    def _make_tree(self, tmp_path: Path, source: str, member: str) -> Path:
        root = tmp_path / "repro"
        root.mkdir()
        (root / f"{member}.py").write_text(source, encoding="utf-8")
        return root

    def test_upward_relative_import_is_caught(self, checker, tmp_path):
        # errors (L0) importing cleaning (L6) — clearly upward.
        root = self._make_tree(
            tmp_path, "from .cleaning import DPCleaner\n", "errors"
        )
        violations = checker.check_layering(root)
        assert len(violations) == 1
        assert "upward import" in violations[0]
        assert "errors (L0) imports cleaning (L6)" in violations[0]

    def test_upward_absolute_import_is_caught(self, checker, tmp_path):
        root = self._make_tree(
            tmp_path, "import repro.service.session\n", "kb"
        )
        violations = checker.check_layering(root)
        assert len(violations) == 1
        assert "kb (L3) imports service (L7)" in violations[0]

    def test_nested_sibling_violation_is_caught(self, checker, tmp_path):
        # A module nested two levels down importing upward via '..'.
        root = tmp_path / "repro"
        (root / "extraction" / "inner").mkdir(parents=True)
        (root / "extraction" / "inner" / "mod.py").write_text(
            "from ...experiments import Pipeline\n", encoding="utf-8"
        )
        violations = checker.check_layering(root)
        assert len(violations) == 1
        assert "extraction (L4) imports experiments (L7)" in violations[0]

    def test_same_member_relative_import_is_allowed(self, checker, tmp_path):
        root = tmp_path / "repro"
        (root / "cleaning" / "baselines").mkdir(parents=True)
        (root / "cleaning" / "baselines" / "one.py").write_text(
            "from ..base import BaseCleaner\nfrom .shared import X\n",
            encoding="utf-8",
        )
        assert checker.check_layering(root) == []

    def test_downward_import_is_allowed(self, checker, tmp_path):
        root = self._make_tree(
            tmp_path, "from .kb import KnowledgeBase\n", "cleaning"
        )
        assert checker.check_layering(root) == []

    def test_unregistered_member_is_reported(self, checker, tmp_path):
        root = self._make_tree(tmp_path, "x = 1\n", "mystery")
        violations = checker.check_layering(root)
        assert len(violations) == 1
        assert "not registered" in violations[0]

    def test_cli_exit_code_nonzero(self, checker, tmp_path, capsys):
        root = self._make_tree(
            tmp_path, "from .cleaning import DPCleaner\n", "errors"
        )
        assert checker.main(["--root", str(root)]) == 1
        assert "layering violation" in capsys.readouterr().err
